//! Network cost of multistage designs — §3.4 and Table 2.
//!
//! Crosspoints are summed module by module. A `a×b` `k`-wavelength module
//! costs `k·a·b` crosspoints under MSW and `k²·a·b` under MSDW/MAW
//! (§2.3.1 applied to rectangular modules). Converters follow the Fig. 3
//! placements: an MSDW module converts on its *input* wavelengths, an MAW
//! module on its *output* wavelengths.

use crate::awg::ConverterPlacement;
use crate::{bounds, Construction, ThreeStageParams};
use serde::{Deserialize, Serialize};
use wdm_core::MulticastModel;

/// Cost summary of one design point.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct NetworkCost {
    /// Total SOA-gate crosspoints.
    pub crosspoints: u64,
    /// Total wavelength converters.
    pub converters: u64,
}

/// Cost summary across all three architectures: the switching designs
/// count crosspoints and converters; the AWG-based Clos additionally
/// counts passive AWG ports (its middle stage has zero crosspoints but
/// is not free hardware).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ArchitectureCost {
    /// Total SOA-gate crosspoints.
    pub crosspoints: u64,
    /// Total (tunable) wavelength converters.
    pub converters: u64,
    /// Total AWG ports (`2·m·r` for `m` `r×r` gratings; 0 for the
    /// switching architectures).
    pub awg_ports: u64,
}

impl From<NetworkCost> for ArchitectureCost {
    fn from(c: NetworkCost) -> Self {
        ArchitectureCost {
            crosspoints: c.crosspoints,
            converters: c.converters,
            awg_ports: 0,
        }
    }
}

/// Total cost of an AWG-based wavelength-routed Clos with geometry `p`
/// and converter banks at `placement`.
///
/// * **Crosspoints** — only the edge stages switch: `r` input modules
///   of `k·n·m` each plus `r` output modules of `k·m·n` each
///   (`2·k·n·m·r` total); the passive middle stage contributes zero.
/// * **Converters** — ingress TWCs set each leg's channel: one per
///   concurrently usable channel per input module,
///   `r·min(n·r, m·k)` (a module's legs are capped both by demand,
///   `n` sources × `r` legs, and by fiber capacity, `m` fibers × `k`
///   channels). `IngressEgress` adds `r·n·k` egress TWCs (one per
///   output endpoint) so any channel reaches any destination
///   wavelength.
/// * **AWG ports** — `2·m·r`: `m` gratings, `r` ports per side.
pub fn awg_clos_cost(p: ThreeStageParams, placement: ConverterPlacement) -> ArchitectureCost {
    let (n, m, r, k) = (p.n as u64, p.m as u64, p.r as u64, p.k as u64);
    let crosspoints = r * module_crosspoints(n, m, k, MulticastModel::Msw)
        + r * module_crosspoints(m, n, k, MulticastModel::Msw);
    let ingress = r * (n * r).min(m * k);
    let egress = match placement {
        ConverterPlacement::Ingress => 0,
        ConverterPlacement::IngressEgress => r * n * k,
    };
    ArchitectureCost {
        crosspoints,
        converters: ingress + egress,
        awg_ports: 2 * m * r,
    }
}

/// Crosspoints of one `a×b` `k`-wavelength module under `model`.
pub fn module_crosspoints(a: u64, b: u64, k: u64, model: MulticastModel) -> u64 {
    match model {
        MulticastModel::Msw => k * a * b,
        MulticastModel::Msdw | MulticastModel::Maw => k * k * a * b,
    }
}

/// Converters of one `a×b` `k`-wavelength module under `model`
/// (input-side for MSDW, output-side for MAW — Fig. 3).
pub fn module_converters(a: u64, b: u64, k: u64, model: MulticastModel) -> u64 {
    match model {
        MulticastModel::Msw => 0,
        MulticastModel::Msdw => k * a,
        MulticastModel::Maw => k * b,
    }
}

/// Total cost of a three-stage network built with `construction` in the
/// first two stages and `output_model` modules in the output stage.
///
/// §3.4 (MSW-dominant):
/// * MSW output stage: `r·knm + m·kr² + r·kmn = kmr(2n + r)` crosspoints,
///   0 converters;
/// * MSDW output stage: `kmr[(k+1)n + r]` crosspoints and `r·mk`
///   converters (the `m` input links of each output module);
/// * MAW output stage: same crosspoints, `r·nk = kN` converters.
pub fn three_stage_cost(
    p: ThreeStageParams,
    construction: Construction,
    output_model: MulticastModel,
) -> NetworkCost {
    let (n, m, r, k) = (p.n as u64, p.m as u64, p.r as u64, p.k as u64);
    let first_two = match construction {
        Construction::MswDominant => MulticastModel::Msw,
        Construction::MawDominant => MulticastModel::Maw,
    };
    let crosspoints = r * module_crosspoints(n, m, k, first_two)      // input stage
        + m * module_crosspoints(r, r, k, first_two)                  // middle stage
        + r * module_crosspoints(m, n, k, output_model); // output stage
    let converters = r * module_converters(n, m, k, first_two)
        + m * module_converters(r, r, k, first_two)
        + r * module_converters(m, n, k, output_model);
    NetworkCost {
        crosspoints,
        converters,
    }
}

/// Cost of the single-stage crossbar baseline (Table 1 rows of Table 2).
pub fn crossbar_cost(ports: u64, k: u64, model: MulticastModel) -> NetworkCost {
    NetworkCost {
        crosspoints: module_crosspoints(ports, ports, k, model),
        converters: match model {
            MulticastModel::Msw => 0,
            MulticastModel::Msdw | MulticastModel::Maw => ports * k,
        },
    }
}

/// The §3.4 recommended design for `N` ports (perfect square): square
/// decomposition `n = r = √N`, `m` from Theorem 1, MSW-dominant.
pub fn recommended_design(
    ports: u32,
    k: u32,
    output_model: MulticastModel,
) -> (ThreeStageParams, NetworkCost) {
    let p = ThreeStageParams::square(ports, k);
    let cost = three_stage_cost(p, Construction::MswDominant, output_model);
    (p, cost)
}

/// Recursively decompose: a 5-stage (or deeper) network replaces each
/// middle module of the three-stage design with a three-stage network of
/// size `r×r`, as the paper sketches ("built in a recursive fashion").
/// Returns the crosspoint total for the given recursion `depth`
/// (`depth = 1` is the plain three-stage network; `depth = 0` a
/// crossbar).
///
/// Only perfect-square sizes are decomposed; recursion stops early when
/// `r` is not a perfect square or too small to profit.
pub fn recursive_crosspoints(ports: u64, k: u64, output_model: MulticastModel, depth: u32) -> u64 {
    if depth == 0 || ports < 16 {
        return crossbar_cost(ports, k, output_model).crosspoints;
    }
    let side = (ports as f64).sqrt().round() as u64;
    if side * side != ports {
        return crossbar_cost(ports, k, output_model).crosspoints;
    }
    let (n, r) = (side as u32, side as u32);
    let m = bounds::theorem1_min_m(n, r).m as u64;
    // Input stage (MSW) + r output-stage modules + m recursive middles.
    let input = r as u64 * module_crosspoints(n as u64, m, k, MulticastModel::Msw);
    let output = r as u64 * module_crosspoints(m, n as u64, k, output_model);
    let middles = m * recursive_crosspoints(r as u64, k, MulticastModel::Msw, depth - 1);
    input + output + middles
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn module_cost_matches_section231() {
        assert_eq!(module_crosspoints(3, 3, 2, MulticastModel::Msw), 18);
        assert_eq!(module_crosspoints(3, 3, 2, MulticastModel::Maw), 36);
        assert_eq!(module_converters(3, 5, 2, MulticastModel::Msw), 0);
        assert_eq!(module_converters(3, 5, 2, MulticastModel::Msdw), 6); // input side
        assert_eq!(module_converters(3, 5, 2, MulticastModel::Maw), 10); // output side
    }

    #[test]
    fn msw_dominant_msw_output_formula() {
        // §3.4: crosspoints = kmr(2n + r), converters = 0.
        let p = ThreeStageParams::new(4, 13, 4, 2);
        let c = three_stage_cost(p, Construction::MswDominant, MulticastModel::Msw);
        assert_eq!(c.crosspoints, 2 * 13 * 4 * (2 * 4 + 4));
        assert_eq!(c.converters, 0);
    }

    #[test]
    fn msw_dominant_msdw_maw_output_formula() {
        // §3.4: crosspoints = kmr[(k+1)n + r].
        let p = ThreeStageParams::new(4, 13, 4, 2);
        for model in [MulticastModel::Msdw, MulticastModel::Maw] {
            let c = three_stage_cost(p, Construction::MswDominant, model);
            assert_eq!(c.crosspoints, 2 * 13 * 4 * ((2 + 1) * 4 + 4), "{model}");
        }
        // Converters: MSDW: r·mk (input links of output modules);
        //             MAW:  r·nk = kN.
        let msdw = three_stage_cost(p, Construction::MswDominant, MulticastModel::Msdw);
        assert_eq!(msdw.converters, 4 * 13 * 2);
        let maw = three_stage_cost(p, Construction::MswDominant, MulticastModel::Maw);
        assert_eq!(maw.converters, 4 * 4 * 2);
        // The paper's §3.4 observation: MSDW needs *more* converters.
        assert!(msdw.converters > maw.converters);
    }

    #[test]
    fn maw_dominant_costs_more() {
        // §3.4: MAW-dominant has more crosspoints and converters than
        // MSW-dominant under every output model.
        let p = ThreeStageParams::new(4, 16, 4, 2);
        for model in MulticastModel::ALL {
            let msw_dom = three_stage_cost(p, Construction::MswDominant, model);
            let maw_dom = three_stage_cost(p, Construction::MawDominant, model);
            assert!(maw_dom.crosspoints > msw_dom.crosspoints, "{model}");
            assert!(maw_dom.converters >= msw_dom.converters, "{model}");
        }
    }

    #[test]
    fn multistage_beats_crossbar_at_scale() {
        // Table 2's whole point: O(kN^1.5·log/loglog) < kN² for large N.
        for ports in [256u32, 1024, 4096] {
            let k = 2;
            let (_, ms) = recommended_design(ports, k, MulticastModel::Msw);
            let cb = crossbar_cost(ports as u64, k as u64, MulticastModel::Msw);
            assert!(
                ms.crosspoints < cb.crosspoints,
                "N={ports}: {} !< {}",
                ms.crosspoints,
                cb.crosspoints
            );
        }
    }

    #[test]
    fn crossover_exists_at_small_sizes() {
        // At tiny N the three-stage overhead loses to the crossbar.
        let (_, ms) = recommended_design(16, 2, MulticastModel::Msw);
        let cb = crossbar_cost(16, 2, MulticastModel::Msw);
        assert!(ms.crosspoints > cb.crosspoints);
    }

    #[test]
    fn recursion_reduces_cost_for_huge_networks() {
        let n = 65536; // 2^16, so r = 256 is also a perfect square
        let flat3 = recursive_crosspoints(n, 2, MulticastModel::Msw, 1);
        let five = recursive_crosspoints(n, 2, MulticastModel::Msw, 2);
        let xbar = recursive_crosspoints(n, 2, MulticastModel::Msw, 0);
        assert!(flat3 < xbar);
        assert!(five < flat3);
    }

    #[test]
    fn awg_clos_cost_formulas() {
        // n=2, r=4, k=4, m=2 — small m picked to keep the arithmetic
        // legible; the formulas are per-device and independent of the
        // nonblocking bound (which is m=8 at this geometry).
        let p = ThreeStageParams::new(2, 2, 4, 4);
        let c = awg_clos_cost(p, ConverterPlacement::IngressEgress);
        // Edge stages only: 2·k·n·m·r = 2·4·2·2·4.
        assert_eq!(c.crosspoints, 2 * 4 * 2 * 2 * 4);
        // Ingress r·min(n·r, m·k) = 4·min(8,8) = 32; egress r·n·k = 32.
        assert_eq!(c.converters, 32 + 32);
        assert_eq!(c.awg_ports, 2 * 2 * 4);
        // Ingress-only placement drops the egress banks.
        let cheap = awg_clos_cost(p, ConverterPlacement::Ingress);
        assert_eq!(cheap.converters, 32);
        assert_eq!(cheap.crosspoints, c.crosspoints);
    }

    #[test]
    fn awg_middle_stage_beats_switched_middles_on_crosspoints() {
        // Same geometry: the AWG design strips the middle stage's
        // m·k·r² crosspoints (paying in converters and AWG ports).
        let p = ThreeStageParams::new(4, 13, 4, 2);
        let awg = awg_clos_cost(p, ConverterPlacement::IngressEgress);
        let sw = three_stage_cost(p, Construction::MswDominant, MulticastModel::Msw);
        assert!(awg.crosspoints < sw.crosspoints);
        assert_eq!(sw.crosspoints - awg.crosspoints, 13 * 2 * 4 * 4);
        assert!(awg.converters > sw.converters);
        assert_eq!(ArchitectureCost::from(sw).awg_ports, 0);
    }

    #[test]
    fn depth_zero_is_crossbar() {
        assert_eq!(
            recursive_crosspoints(64, 2, MulticastModel::Maw, 0),
            crossbar_cost(64, 2, MulticastModel::Maw).crosspoints
        );
    }
}
