//! Routing decisions shared by the serial and concurrent three-stage
//! backends.
//!
//! [`ThreeStageNetwork`](crate::ThreeStageNetwork) and
//! [`ConcurrentThreeStage`](crate::ConcurrentThreeStage) must make
//! *identical* wavelength and availability decisions — the concurrent
//! conformance sweep asserts per-index equality of their outcomes under
//! a serial schedule — so the decision logic lives here once, as pure
//! functions of a [`RoutingCtx`] (geometry, construction, models,
//! converter reach, fault set) plus the busy masks the caller reads
//! from its own occupancy representation.

use crate::{Construction, ThreeStageParams};
use wdm_core::{Endpoint, Fault, FaultSet, MulticastConnection, MulticastModel};

/// The immutable routing context: everything a wavelength decision
/// depends on apart from the link occupancy words themselves.
#[derive(Debug, Clone, Copy)]
pub(crate) struct RoutingCtx<'a> {
    pub params: ThreeStageParams,
    pub construction: Construction,
    pub output_model: MulticastModel,
    pub conversion_range: Option<u32>,
    pub faults: &'a FaultSet,
}

impl RoutingCtx<'_> {
    /// `true` iff a converter may move wavelength `a` to wavelength `b`.
    pub(crate) fn convertible(&self, a: u32, b: u32) -> bool {
        self.conversion_range.is_none_or(|d| a.abs_diff(b) <= d)
    }

    /// The wavelength a branch from input module `module` to a middle
    /// switch would occupy against the busy mask `mask`, or `None` if no
    /// free wavelength is reachable from the source wavelength.
    pub(crate) fn branch_wavelength_masked(
        &self,
        module: u32,
        mask: u64,
        src_wl: u32,
    ) -> Option<u32> {
        match self.construction {
            Construction::MswDominant => (mask & (1 << src_wl) == 0).then_some(src_wl),
            // The stage-1 MAW module converts src_wl → wi within reach —
            // unless its converter bank is dark, in which case the signal
            // passes through on its own wavelength only.
            Construction::MawDominant if self.faults.input_converters_down(module) => {
                (mask & (1 << src_wl) == 0).then_some(src_wl)
            }
            Construction::MawDominant => {
                (0..self.params.k).find(|&w| mask & (1 << w) == 0 && self.convertible(src_wl, w))
            }
        }
    }

    /// The wavelength a leg from middle `j` to output module `om` would
    /// occupy for a branch arriving at `j` on `wi` against the busy mask
    /// `mask`, or `None` if the link cannot carry it — considering the
    /// middle converter's reach (`wi → wl`) and the output module's
    /// converters (`wl → dest λ`).
    pub(crate) fn leg_wavelength_masked(
        &self,
        j: u32,
        om: u32,
        mask: u64,
        wi: u32,
        dests: &[Endpoint],
    ) -> Option<u32> {
        if self.faults.middle_link_down(j, om) {
            return None;
        }
        let out_conv_down = self.faults.output_converters_down(om);
        let reaches_dests = |wl: u32| match self.output_model {
            // An MSW output module cannot convert — but then the dests
            // equal wl by construction of `candidates` below.
            MulticastModel::Msw => true,
            // One conversion to the (uniform) destination wavelength —
            // identity only if the output converter bank is dark.
            MulticastModel::Msdw if out_conv_down => wl == dests[0].wavelength.0,
            MulticastModel::Msdw => self.convertible(wl, dests[0].wavelength.0),
            // One conversion per destination endpoint.
            MulticastModel::Maw if out_conv_down => dests.iter().all(|d| d.wavelength.0 == wl),
            MulticastModel::Maw => dests.iter().all(|d| self.convertible(wl, d.wavelength.0)),
        };
        // A dark middle converter bank pins the leg to the arrival λ.
        let mid_conv_ok = |wl: u32| {
            if self.faults.middle_converters_down(j) {
                wl == wi
            } else {
                self.convertible(wi, wl)
            }
        };
        let candidates: Vec<u32> = match (self.construction, self.output_model) {
            // MSW middles emit the arriving wavelength only.
            (Construction::MswDominant, _) => vec![wi],
            // MAW middles convert, but an MSW output module pins the
            // arrival to the destination wavelength.
            (Construction::MawDominant, MulticastModel::Msw) => {
                vec![dests[0].wavelength.0]
            }
            (Construction::MawDominant, _) => (0..self.params.k).collect(),
        };
        candidates
            .into_iter()
            .find(|&wl| mask & (1 << wl) == 0 && mid_conv_ok(wl) && reaches_dests(wl))
    }

    /// `true` iff the realized route `rc` (sourced at `src`) traverses
    /// the faulted component — the traffic a runtime must heal when the
    /// component dies.
    pub(crate) fn route_uses(
        &self,
        src: &Endpoint,
        rc: &crate::RoutedConnection,
        fault: &Fault,
    ) -> bool {
        let (in_module, _) = self.params.input_module_of(src.port.0);
        match *fault {
            Fault::MiddleSwitch(j) => rc.branches.iter().any(|b| b.middle == j),
            Fault::InputLink { module, middle } => {
                in_module == module && rc.branches.iter().any(|b| b.middle == middle)
            }
            Fault::MiddleLink { middle, module } => rc
                .branches
                .iter()
                .any(|b| b.middle == middle && b.legs.iter().any(|l| l.out_module == module)),
            // Stage-1 converters matter only in the MAW-dominant
            // construction, and only for branches that actually shifted
            // the source wavelength.
            Fault::InputConverters(a) => {
                self.construction == Construction::MawDominant
                    && in_module == a
                    && rc
                        .branches
                        .iter()
                        .any(|b| b.input_wavelength != src.wavelength.0)
            }
            Fault::MiddleConverters(j) => rc.branches.iter().any(|b| {
                b.middle == j && b.legs.iter().any(|l| l.wavelength != b.input_wavelength)
            }),
            Fault::OutputConverters(om) => rc.branches.iter().any(|b| {
                b.legs.iter().any(|l| {
                    l.out_module == om && l.dests.iter().any(|d| d.wavelength.0 != l.wavelength)
                })
            }),
            Fault::Port(p) => {
                src.port.0 == p
                    || rc
                        .branches
                        .iter()
                        .any(|b| b.legs.iter().any(|l| l.dests.iter().any(|d| d.port.0 == p)))
            }
        }
    }

    /// A fault that makes `conn` categorically unroutable (as opposed to
    /// merely blocked): a dead endpoint port, or a module structurally
    /// cut off from the middle stage.
    pub(crate) fn component_down(&self, conn: &MulticastConnection) -> Option<Fault> {
        let src = conn.source();
        if self.faults.port_down(src.port.0) {
            return Some(Fault::Port(src.port.0));
        }
        for d in conn.destinations() {
            if self.faults.port_down(d.port.0) {
                return Some(Fault::Port(d.port.0));
            }
        }
        if self.faults.is_empty() {
            return None;
        }
        // Source module cut off: every middle is dead or unreachable.
        let (in_module, _) = self.params.input_module_of(src.port.0);
        let cut = |j: u32| self.faults.middle_down(j) || self.faults.input_link_down(in_module, j);
        if (0..self.params.m).all(cut) {
            let j = (0..self.params.m)
                .find(|&j| self.faults.middle_down(j))
                .unwrap_or(0);
            return Some(if self.faults.middle_down(j) {
                Fault::MiddleSwitch(j)
            } else {
                Fault::InputLink {
                    module: in_module,
                    middle: j,
                }
            });
        }
        // A requested output module cut off from every middle.
        for d in conn.destinations() {
            let (om, _) = self.params.output_module_of(d.port.0);
            let cut = |j: u32| self.faults.middle_down(j) || self.faults.middle_link_down(j, om);
            if (0..self.params.m).all(cut) {
                let j = (0..self.params.m)
                    .find(|&j| self.faults.middle_down(j))
                    .unwrap_or(0);
                return Some(if self.faults.middle_down(j) {
                    Fault::MiddleSwitch(j)
                } else {
                    Fault::MiddleLink {
                        middle: j,
                        module: om,
                    }
                });
            }
        }
        None
    }
}

/// Find at most `x` switches from `available` whose service sets jointly
/// cover `modules`, and assign each module to one chosen switch.
///
/// Greedy max-coverage first; on failure an exact depth-first search
/// (with a simple remaining-coverage prune) — greedy set cover can miss
/// feasible covers, and the nonblocking theorems promise existence, not
/// greedy-findability.
pub(crate) fn find_cover(
    modules: &[u32],
    available: &[u32],
    serv: &[Vec<u32>],
    x: usize,
) -> Option<Vec<(u32, Vec<u32>)>> {
    if modules.is_empty() {
        return Some(Vec::new());
    }
    // Greedy pass.
    let mut uncovered: std::collections::BTreeSet<u32> = modules.iter().copied().collect();
    let mut picks: Vec<usize> = Vec::new();
    while !uncovered.is_empty() && picks.len() < x {
        // First maximal gain wins, so the caller's ordering of
        // `available` (the selection strategy) breaks ties.
        let mut best: Option<(usize, usize)> = None;
        for (i, served) in serv.iter().enumerate().take(available.len()) {
            if picks.contains(&i) {
                continue;
            }
            let gain = served.iter().filter(|m| uncovered.contains(m)).count();
            if best.is_none_or(|(_, g)| gain > g) {
                best = Some((i, gain));
            }
        }
        let best = best?.0;
        let gain: Vec<u32> = serv[best]
            .iter()
            .copied()
            .filter(|m| uncovered.contains(m))
            .collect();
        if gain.is_empty() {
            break;
        }
        for m in &gain {
            uncovered.remove(m);
        }
        picks.push(best);
    }
    if uncovered.is_empty() {
        return Some(assign(modules, available, serv, &picks));
    }

    // Exact DFS.
    let mut order: Vec<usize> = (0..available.len()).collect();
    order.sort_by_key(|&i| std::cmp::Reverse(serv[i].len()));
    let all: std::collections::BTreeSet<u32> = modules.iter().copied().collect();
    let mut chosen: Vec<usize> = Vec::new();
    fn dfs(
        order: &[usize],
        serv: &[Vec<u32>],
        uncovered: &std::collections::BTreeSet<u32>,
        start: usize,
        x: usize,
        chosen: &mut Vec<usize>,
    ) -> bool {
        if uncovered.is_empty() {
            return true;
        }
        if chosen.len() == x || start == order.len() {
            return false;
        }
        // Prune: even taking the largest remaining service sets cannot
        // finish in the budget.
        let budget = x - chosen.len();
        let optimistic: usize = order[start..]
            .iter()
            .take(budget)
            .map(|&i| serv[i].len())
            .sum();
        if optimistic < uncovered.len() {
            return false;
        }
        for idx in start..order.len() {
            let i = order[idx];
            let gain: Vec<u32> = serv[i]
                .iter()
                .copied()
                .filter(|m| uncovered.contains(m))
                .collect();
            if gain.is_empty() {
                continue;
            }
            let mut next = uncovered.clone();
            for m in &gain {
                next.remove(m);
            }
            chosen.push(i);
            if dfs(order, serv, &next, idx + 1, x, chosen) {
                return true;
            }
            chosen.pop();
        }
        false
    }
    if dfs(&order, serv, &all, 0, x, &mut chosen) {
        Some(assign(modules, available, serv, &chosen))
    } else {
        None
    }
}

/// Distribute each module to the first chosen switch that can serve it.
fn assign(
    modules: &[u32],
    available: &[u32],
    serv: &[Vec<u32>],
    picks: &[usize],
) -> Vec<(u32, Vec<u32>)> {
    let mut out: Vec<(u32, Vec<u32>)> = picks.iter().map(|&i| (available[i], Vec::new())).collect();
    for &m in modules {
        let slot = picks
            .iter()
            .position(|&i| serv[i].contains(&m))
            .expect("cover serves every module");
        out[slot].1.push(m);
    }
    out.retain(|(_, legs)| !legs.is_empty());
    out
}
