//! Blocking-witness search — the empirical face of the *necessity* side
//! of the nonblocking bounds.
//!
//! Theorems 1–2 are sufficient conditions; the paper notes (citing its
//! ref. [16]) that matching necessary bounds exist, meaning that for `m`
//! below the bound some request sequence blocks. This module *finds* such
//! sequences: a randomized adversary with restarts that fills the network
//! with hostile traffic (same input module, maximal module spread, one
//! wavelength) and reports the first sequence ending in a blocked
//! request.
//!
//! A found witness is a concrete, replayable refutation that a given `m`
//! is too small; failure to find one (at the theorem bound) is consistent
//! with — though of course no proof of — the sufficiency result.

use crate::{Construction, RouteError, ThreeStageNetwork, ThreeStageParams};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use wdm_core::{Endpoint, FaultSet, MulticastConnection, MulticastModel};

/// A replayable blocking sequence.
#[derive(Debug, Clone)]
pub struct BlockingWitness {
    /// Geometry the witness applies to.
    pub params: ThreeStageParams,
    /// Construction method used.
    pub construction: Construction,
    /// Fan-out limit in force.
    pub x_limit: u32,
    /// Faults in force while the witness was found (usually empty; the
    /// degraded-fabric search fills this in).
    pub faults: FaultSet,
    /// Connections established before the block (in order).
    pub established: Vec<MulticastConnection>,
    /// The request that blocked.
    pub blocked_request: MulticastConnection,
}

impl BlockingWitness {
    /// Re-run the witness from scratch, returning `true` iff it still
    /// blocks (used by tests and by skeptical readers).
    pub fn replay(&self, output_model: MulticastModel) -> bool {
        let mut net = ThreeStageNetwork::new(self.params, self.construction, output_model);
        net.set_fanout_limit(self.x_limit);
        for &fault in self.faults.iter() {
            net.inject_fault(fault);
        }
        for conn in &self.established {
            if net.connect(conn).is_err() {
                return false;
            }
        }
        matches!(
            net.connect(&self.blocked_request),
            Err(RouteError::Blocked { .. })
        )
    }
}

/// Search for a blocking witness with `attempts` randomized episodes.
///
/// Each episode fills a fresh network with hostile requests (sources
/// drawn from one input module on one wavelength where the construction
/// is MSW-dominant, spread over many output modules) until something
/// blocks or the episode exhausts its request budget.
pub fn find_blocking_witness(
    params: ThreeStageParams,
    construction: Construction,
    output_model: MulticastModel,
    x_limit: u32,
    attempts: usize,
    seed: u64,
) -> Option<BlockingWitness> {
    find_blocking_witness_faulted(
        params,
        construction,
        output_model,
        x_limit,
        attempts,
        seed,
        &FaultSet::new(),
    )
}

/// [`find_blocking_witness`] on a degraded fabric: the search runs with
/// `faults` in force, so a found witness proves the *surviving* capacity
/// is blockable. Used by the spare-margin tests to show that killing
/// middles at `m = bound` produces honest blocking.
#[allow(clippy::too_many_arguments)]
pub fn find_blocking_witness_faulted(
    params: ThreeStageParams,
    construction: Construction,
    output_model: MulticastModel,
    x_limit: u32,
    attempts: usize,
    seed: u64,
    faults: &FaultSet,
) -> Option<BlockingWitness> {
    let mut rng = StdRng::seed_from_u64(seed);
    for _ in 0..attempts {
        if let Some(w) = episode(
            params,
            construction,
            output_model,
            x_limit,
            faults,
            &mut rng,
        ) {
            debug_assert!(w.replay(output_model), "witness must replay");
            return Some(w);
        }
    }
    None
}

fn episode(
    params: ThreeStageParams,
    construction: Construction,
    output_model: MulticastModel,
    x_limit: u32,
    faults: &FaultSet,
    rng: &mut StdRng,
) -> Option<BlockingWitness> {
    let mut net = ThreeStageNetwork::new(params, construction, output_model);
    net.set_fanout_limit(x_limit);
    for &fault in faults.iter() {
        net.inject_fault(fault);
    }
    let mut established = Vec::new();
    // Concentrate on one input module and (for the MSW-pinning effect)
    // one wavelength.
    let module = rng.gen_range(0..params.r);
    let wl = rng.gen_range(0..params.k);
    let budget = (params.n * params.k * 2) as usize;
    for _ in 0..budget {
        let req = hostile_request(&net, module, wl, rng)?;
        match net.connect(&req) {
            Ok(_) => established.push(req),
            Err(RouteError::Blocked { .. }) => {
                return Some(BlockingWitness {
                    params,
                    construction,
                    x_limit,
                    faults: faults.clone(),
                    established,
                    blocked_request: req,
                });
            }
            // Assignment errors cannot happen (the generator checks), and
            // a fault-cut-off request is not a *blocking* witness — give
            // up on this episode either way.
            Err(_) => return None,
        }
    }
    None
}

/// A hostile request: next free source in the target module on the target
/// wavelength (falling back to any), destinations spread over a random
/// subset of output modules on the same wavelength.
fn hostile_request(
    net: &ThreeStageNetwork,
    module: u32,
    wl: u32,
    rng: &mut StdRng,
) -> Option<MulticastConnection> {
    let p = net.params();
    let asg = net.assignment();
    let src = (module * p.n..(module + 1) * p.n)
        .map(|port| Endpoint::new(port, wl))
        .find(|&e| !asg.input_busy(e))
        .or_else(|| p.network().endpoints().find(|&e| !asg.input_busy(e)))?;
    let mut dests = Vec::new();
    for b in 0..p.r {
        if rng.gen_bool(0.8) {
            // One free same-wavelength endpoint in output module b.
            if let Some(d) = (b * p.n..(b + 1) * p.n)
                .map(|port| Endpoint::new(port, src.wavelength.0))
                .find(|&d| asg.output_user(d).is_none())
            {
                dests.push(d);
            }
        }
    }
    if dests.is_empty() {
        return None;
    }
    Some(MulticastConnection::new(src, dests).expect("one port per module"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bounds;

    #[test]
    fn finds_witness_below_the_bound() {
        // n=r=4, k=1: Theorem 1 bound is 13; m=3 must be blockable.
        let p = ThreeStageParams::new(4, 3, 4, 1);
        let w = find_blocking_witness(p, Construction::MswDominant, MulticastModel::Msw, 1, 50, 7)
            .expect("starved network must yield a witness");
        assert!(w.replay(MulticastModel::Msw));
        assert!(!w.established.is_empty());
    }

    #[test]
    fn witness_replay_detects_tampering() {
        let p = ThreeStageParams::new(4, 3, 4, 1);
        let mut w =
            find_blocking_witness(p, Construction::MswDominant, MulticastModel::Msw, 1, 50, 7)
                .unwrap();
        // Removing the load makes the final request routable again.
        w.established.clear();
        assert!(!w.replay(MulticastModel::Msw));
    }

    #[test]
    fn no_witness_at_the_theorem_bound() {
        for (n, r, k) in [(2u32, 2u32, 1u32), (3, 3, 2)] {
            let b = bounds::theorem1_min_m(n, r);
            let p = ThreeStageParams::new(n, b.m, r, k);
            let w = find_blocking_witness(
                p,
                Construction::MswDominant,
                MulticastModel::Msw,
                b.x,
                30,
                11,
            );
            assert!(w.is_none(), "found a witness at the bound: {w:?}");
        }
    }

    #[test]
    fn maw_dominant_witness_below_theorem2() {
        let p = ThreeStageParams::new(4, 2, 4, 2); // bound is 14
        let w = find_blocking_witness(p, Construction::MawDominant, MulticastModel::Maw, 1, 50, 3);
        assert!(w.is_some(), "m=2 should block under adversarial load");
    }
}
