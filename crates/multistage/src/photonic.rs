//! Photonic realization of the three-stage network — Fig. 8 built out of
//! real [`WdmModule`]s and driven by the routing decisions of
//! [`ThreeStageNetwork`].
//!
//! This closes the loop between the paper's two levels of abstraction:
//!
//! * the **combinatorial** level, where Theorems 1–2 argue about middle
//!   switches and destination multisets, is `ThreeStageNetwork`;
//! * the **hardware** level, where Table 2 counts SOA gates and
//!   converters, is this module — one big netlist of `2r + m` rectangular
//!   modules wired mux→demux, whose census must equal the §3.4 closed
//!   forms and through which every routed connection must actually carry
//!   light to exactly its destinations.
//!
//! ```
//! use wdm_core::MulticastModel;
//! use wdm_multistage::{Construction, PhotonicThreeStage, ThreeStageParams};
//!
//! let p = ThreeStageParams::new(2, 4, 2, 2);
//! let photonic = PhotonicThreeStage::build(p, Construction::MswDominant,
//!                                          MulticastModel::Msw);
//! // Census equals the §3.4 cost formula: kmr(2n + r).
//! assert_eq!(photonic.census().gates, 2 * 4 * 2 * (2 * 2 + 2));
//! ```

use crate::{Construction, RoutedConnection, ThreeStageNetwork, ThreeStageParams};
use std::collections::BTreeMap;
use wdm_core::{Endpoint, MulticastConnection, MulticastModel};
use wdm_fabric::{
    propagate, Census, Component, FabricError, ModuleSpec, Netlist, PowerBudget, PowerParams,
    PropagationOutcome, Signal, WdmModule,
};

/// The Fig. 8 network as a photonic netlist.
#[derive(Debug, Clone)]
pub struct PhotonicThreeStage {
    params: ThreeStageParams,
    output_model: MulticastModel,
    netlist: Netlist,
    /// `r` input modules of size `n×m`.
    input_modules: Vec<WdmModule>,
    /// `m` middle modules of size `r×r`.
    middle_modules: Vec<WdmModule>,
    /// `r` output modules of size `m×n`.
    output_modules: Vec<WdmModule>,
}

impl PhotonicThreeStage {
    /// Build the network: `r` input modules, `m` middle modules, `r`
    /// output modules, every inter-stage link one fiber (Fig. 8), module
    /// models per the construction method (Fig. 9).
    pub fn build(
        params: ThreeStageParams,
        construction: Construction,
        output_model: MulticastModel,
    ) -> Self {
        let first_two = match construction {
            Construction::MswDominant => MulticastModel::Msw,
            Construction::MawDominant => MulticastModel::Maw,
        };
        let (n, m, r, k) = (params.n, params.m, params.r, params.k);
        let mut netlist = Netlist::new();

        let input_modules: Vec<WdmModule> = (0..r)
            .map(|_| {
                WdmModule::build_into(
                    &mut netlist,
                    ModuleSpec {
                        in_ports: n,
                        out_ports: m,
                        wavelengths: k,
                        model: first_two,
                    },
                )
            })
            .collect();
        let middle_modules: Vec<WdmModule> = (0..m)
            .map(|_| {
                WdmModule::build_into(
                    &mut netlist,
                    ModuleSpec {
                        in_ports: r,
                        out_ports: r,
                        wavelengths: k,
                        model: first_two,
                    },
                )
            })
            .collect();
        let output_modules: Vec<WdmModule> = (0..r)
            .map(|_| {
                WdmModule::build_into(
                    &mut netlist,
                    ModuleSpec {
                        in_ports: m,
                        out_ports: n,
                        wavelengths: k,
                        model: output_model,
                    },
                )
            })
            .collect();

        // External frame.
        for p in 0..n * r {
            let inp = netlist.add(Component::InputPort(wdm_core::PortId(p)));
            let (a, local) = params.input_module_of(p);
            netlist.connect_simple(inp, input_modules[a as usize].input_taps[local as usize]);
        }
        // Inter-stage fibers: input a → middle j on (a's output j, j's input a),
        // middle j → output p on (j's output p, p's input j).
        for (a, im) in input_modules.iter().enumerate().take(r as usize) {
            for (j, mm) in middle_modules.iter().enumerate().take(m as usize) {
                netlist.connect_simple(im.output_muxes[j], mm.input_taps[a]);
            }
        }
        for (j, mm) in middle_modules.iter().enumerate().take(m as usize) {
            for (p, om) in output_modules.iter().enumerate().take(r as usize) {
                netlist.connect_simple(mm.output_muxes[p], om.input_taps[j]);
            }
        }
        for p in 0..n * r {
            let out = netlist.add(Component::OutputPort(wdm_core::PortId(p)));
            let (b, local) = params.output_module_of(p);
            netlist.connect_simple(output_modules[b as usize].output_muxes[local as usize], out);
        }

        let net = PhotonicThreeStage {
            params,
            output_model,
            netlist,
            input_modules,
            middle_modules,
            output_modules,
        };
        debug_assert!(
            net.netlist.validate().is_empty(),
            "{:?}",
            net.netlist.validate()
        );
        net
    }

    /// The geometry.
    pub fn params(&self) -> ThreeStageParams {
        self.params
    }

    /// The composed device graph.
    pub fn netlist(&self) -> &Netlist {
        &self.netlist
    }

    /// Component census of the whole network — must equal the §3.4 cost
    /// formulas (checked in tests).
    pub fn census(&self) -> Census {
        Census::of(&self.netlist)
    }

    /// Worst-case optical power budget end to end.
    pub fn power_budget(&self, params: &PowerParams) -> PowerBudget {
        PowerBudget::analyze(&self.netlist, params)
    }

    /// Fault injection: permanently break the component at `node` if it
    /// is an SOA gate or converter. Returns `false` otherwise.
    pub fn break_node(&mut self, node: wdm_fabric::NodeId) -> bool {
        match self.netlist.component_mut(node) {
            Component::SoaGate { broken, .. } | Component::Converter { broken, .. } => {
                *broken = true;
                true
            }
            _ => false,
        }
    }

    /// Program every gate and converter for the live connections of
    /// `logical`, shine light, and verify gate-level delivery against its
    /// assignment.
    ///
    /// `logical` must have been built with the same geometry,
    /// construction, and output model.
    pub fn realize(
        &mut self,
        logical: &ThreeStageNetwork,
    ) -> Result<PropagationOutcome, FabricError> {
        assert_eq!(logical.params(), self.params, "geometry mismatch");
        assert_eq!(logical.output_model(), self.output_model, "model mismatch");

        for module in self
            .input_modules
            .iter()
            .chain(&self.middle_modules)
            .chain(&self.output_modules)
        {
            module.reset(&mut self.netlist);
        }

        let mut injections: BTreeMap<u32, Vec<Signal>> = BTreeMap::new();
        for conn in logical.assignment().connections() {
            let routed = logical
                .route_of(conn.source())
                .expect("every live connection has a recorded route");
            self.program_connection(conn, routed);
            injections
                .entry(conn.source().port.0)
                .or_default()
                .push(Signal {
                    origin: conn.source(),
                    wavelength: conn.source().wavelength,
                });
        }

        let outcome = propagate(&self.netlist, &injections);
        if !outcome.is_clean() {
            return Err(FabricError::Propagation(outcome.errors));
        }
        if !outcome.delivered_exactly(logical.assignment()) {
            let missing = logical
                .assignment()
                .connections()
                .flat_map(|c| c.destinations().iter().copied())
                .find(|&d| outcome.received_at(d).len() != 1)
                .or_else(|| {
                    outcome
                        .lit_outputs()
                        .find(|ep| logical.assignment().output_user(*ep).is_none())
                })
                .expect("some endpoint deviates");
            return Err(FabricError::DeliveryFailure { endpoint: missing });
        }
        Ok(outcome)
    }

    /// Set the gates/converters of all three stages along one routed
    /// connection.
    fn program_connection(&mut self, conn: &MulticastConnection, routed: &RoutedConnection) {
        let k = self.params.k;
        let src = conn.source();
        let (a, local_in) = self.params.input_module_of(src.port.0);

        for branch in &routed.branches {
            let j = branch.middle as usize;
            // Stage 1: (local_in, src λ) → output (j, branch λ).
            let in_flat = Endpoint::new(local_in, src.wavelength.0).flat_index(k);
            let out_flat = Endpoint::new(branch.middle, branch.input_wavelength).flat_index(k);
            self.input_modules[a as usize].set_gate(&mut self.netlist, in_flat, out_flat, true);

            for leg in &branch.legs {
                // Stage 2: middle j, (a, branch λ) → (leg module, leg λ).
                let in_flat = Endpoint::new(a, branch.input_wavelength).flat_index(k);
                let out_flat = Endpoint::new(leg.out_module, leg.wavelength).flat_index(k);
                self.middle_modules[j].set_gate(&mut self.netlist, in_flat, out_flat, true);

                // Stage 3: output module p, (j, leg λ) → each destination.
                let p = leg.out_module as usize;
                let in_flat = Endpoint::new(branch.middle, leg.wavelength).flat_index(k);
                if self.output_model == MulticastModel::Msdw {
                    let target = leg.dests[0].wavelength;
                    self.output_modules[p].program_input_converter(
                        &mut self.netlist,
                        in_flat,
                        Some(target),
                    );
                }
                for &dest in &leg.dests {
                    let (_, local_out) = self.params.output_module_of(dest.port.0);
                    let out_flat = Endpoint::new(local_out, dest.wavelength.0).flat_index(k);
                    self.output_modules[p].set_gate(&mut self.netlist, in_flat, out_flat, true);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{bounds, cost};
    use wdm_core::MulticastConnection;

    fn conn(src: (u32, u32), dests: &[(u32, u32)]) -> MulticastConnection {
        MulticastConnection::new(
            Endpoint::new(src.0, src.1),
            dests.iter().map(|&(p, w)| Endpoint::new(p, w)),
        )
        .unwrap()
    }

    #[test]
    fn census_equals_section34_cost_formulas() {
        for (n, m, r, k) in [(2u32, 4u32, 2u32, 2u32), (3, 7, 3, 2), (2, 5, 4, 3)] {
            let p = ThreeStageParams::new(n, m, r, k);
            for construction in [Construction::MswDominant, Construction::MawDominant] {
                for model in MulticastModel::ALL {
                    let photonic = PhotonicThreeStage::build(p, construction, model);
                    let census = photonic.census();
                    let expect = cost::three_stage_cost(p, construction, model);
                    assert_eq!(census.gates, expect.crosspoints, "{construction} {model}");
                    assert_eq!(
                        census.converters, expect.converters,
                        "{construction} {model}"
                    );
                    assert!(photonic.netlist().validate().is_empty());
                }
            }
        }
    }

    #[test]
    fn light_follows_the_logical_route() {
        let p = ThreeStageParams::new(2, 4, 2, 2);
        let mut logical = ThreeStageNetwork::new(p, Construction::MswDominant, MulticastModel::Msw);
        logical
            .connect(&conn((0, 0), &[(0, 0), (1, 0), (2, 0), (3, 0)]))
            .unwrap();
        logical.connect(&conn((1, 1), &[(2, 1)])).unwrap();
        let mut photonic =
            PhotonicThreeStage::build(p, Construction::MswDominant, MulticastModel::Msw);
        let outcome = photonic
            .realize(&logical)
            .expect("light must follow the route");
        assert!(outcome.delivered_exactly(logical.assignment()));
    }

    #[test]
    fn maw_dominant_conversion_happens_in_hardware() {
        // Fig. 10's routable half: MAW-dominant converts λ1→λ2→λ1 across
        // the first two stages; verify the actual light does that.
        let p = crate::scenarios::fig10_params();
        let mut logical = ThreeStageNetwork::new(p, Construction::MawDominant, MulticastModel::Maw);
        logical.set_fanout_limit(1);
        for req in crate::scenarios::fig10_requests() {
            logical.connect(&req).unwrap();
        }
        let mut photonic =
            PhotonicThreeStage::build(p, Construction::MawDominant, MulticastModel::Maw);
        let outcome = photonic.realize(&logical).unwrap();
        assert!(outcome.delivered_exactly(logical.assignment()));
    }

    #[test]
    fn msdw_output_stage_converts_in_hardware() {
        let p = ThreeStageParams::new(2, 4, 2, 2);
        let mut logical =
            ThreeStageNetwork::new(p, Construction::MswDominant, MulticastModel::Msdw);
        // Source λ1, destinations uniformly λ2 — the output stage must
        // convert.
        logical
            .connect(&conn((0, 0), &[(1, 1), (2, 1), (3, 1)]))
            .unwrap();
        let mut photonic =
            PhotonicThreeStage::build(p, Construction::MswDominant, MulticastModel::Msdw);
        let outcome = photonic.realize(&logical).unwrap();
        assert!(outcome.delivered_exactly(logical.assignment()));
    }

    #[test]
    fn churn_stays_physically_consistent() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let (n, r, k) = (2u32, 2u32, 2u32);
        let m = bounds::theorem1_min_m(n, r).m;
        let p = ThreeStageParams::new(n, m, r, k);
        let mut logical = ThreeStageNetwork::new(p, Construction::MswDominant, MulticastModel::Msw);
        let mut photonic =
            PhotonicThreeStage::build(p, Construction::MswDominant, MulticastModel::Msw);
        let mut rng = StdRng::seed_from_u64(5);
        let mut live: Vec<Endpoint> = Vec::new();
        for step in 0..60 {
            if !live.is_empty() && rng.gen_bool(0.4) {
                let i = rng.gen_range(0..live.len());
                logical.disconnect(live.swap_remove(i)).unwrap();
            } else {
                // A random same-wavelength unicast or small multicast.
                let src = Endpoint::new(rng.gen_range(0..n * r), rng.gen_range(0..k));
                if logical.assignment().input_busy(src) {
                    continue;
                }
                let dests: Vec<Endpoint> = (0..n * r)
                    .filter(|_| rng.gen_bool(0.5))
                    .map(|pt| Endpoint::new(pt, src.wavelength.0))
                    .filter(|&d| logical.assignment().output_user(d).is_none())
                    .collect();
                if dests.is_empty() {
                    continue;
                }
                let c = MulticastConnection::new(src, dests).unwrap();
                if logical.connect(&c).is_ok() {
                    live.push(src);
                }
            }
            let outcome = photonic
                .realize(&logical)
                .unwrap_or_else(|e| panic!("photonic divergence at step {step}: {e}"));
            assert!(
                outcome.delivered_exactly(logical.assignment()),
                "step {step}"
            );
        }
    }

    #[test]
    fn power_budget_reflects_three_passive_stages() {
        let p = ThreeStageParams::new(4, 13, 4, 2);
        let photonic = PhotonicThreeStage::build(p, Construction::MswDominant, MulticastModel::Msw);
        let flat = wdm_fabric::WdmCrossbar::build(p.network(), MulticastModel::Msw);
        let params = PowerParams::default();
        let three = photonic.power_budget(&params);
        let one = flat.power_budget(&params);
        // Three cascaded modules traverse more devices than one crossbar.
        assert!(three.worst_path_hops > one.worst_path_hops);
    }
}
