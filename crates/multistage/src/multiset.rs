//! Destination multisets — Eqs. (2)–(5) of the paper.
//!
//! For middle-stage switch `j`, the multiset `M_j` over the output-switch
//! set `O = {0, …, r−1}` records how many multicast connections currently
//! go from `j` to each output switch `p` — equivalently, how many of the
//! `k` wavelengths on the link `j → p` are busy. The paper's analysis of
//! the MAW-dominant construction (Lemma 5) rests on three operations:
//!
//! * **intersection** (Eq. 3): element-wise *minimum* of multiplicities —
//!   an output switch is jointly saturated for a set of middle switches
//!   iff it is saturated in each;
//! * **cardinality** (Eq. 4): the number of elements at full multiplicity
//!   `k` — exactly the output switches *unreachable* through the switch;
//! * **null** (Eq. 5): `M_j = ∅ ⇔ |M_j| = 0` — no output switch blocked.

use core::fmt;
use serde::{Deserialize, Serialize};

/// The multiset `M_j` of Eq. (2): multiplicities `0..=k` per output
/// switch.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct DestinationMultiset {
    k: u32,
    counts: Vec<u32>,
}

impl DestinationMultiset {
    /// The empty multiset over `r` output switches with wavelength bound
    /// `k`.
    pub fn new(r: u32, k: u32) -> Self {
        assert!(k > 0, "wavelength bound must be positive");
        DestinationMultiset {
            k,
            counts: vec![0; r as usize],
        }
    }

    /// Build from explicit multiplicities (each must be ≤ k).
    pub fn from_counts(k: u32, counts: Vec<u32>) -> Self {
        assert!(counts.iter().all(|&c| c <= k), "multiplicity exceeds k");
        DestinationMultiset { k, counts }
    }

    /// Number of output switches `r`.
    pub fn len(&self) -> usize {
        self.counts.len()
    }

    /// `true` iff `r == 0` (no output switches tracked).
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    /// `true` iff `r == 0` (no output switches tracked).
    pub fn is_empty_domain(&self) -> bool {
        self.counts.is_empty()
    }

    /// The wavelength bound `k`.
    pub fn k(&self) -> u32 {
        self.k
    }

    /// Multiplicity of output switch `p`.
    pub fn multiplicity(&self, p: u32) -> u32 {
        self.counts[p as usize]
    }

    /// Add one connection toward output switch `p`.
    ///
    /// Panics when `p` is already saturated — the caller must check
    /// [`is_saturated`](Self::is_saturated) first (links have only `k`
    /// wavelengths).
    pub fn add(&mut self, p: u32) {
        assert!(
            self.counts[p as usize] < self.k,
            "output switch {p} already saturated"
        );
        self.counts[p as usize] += 1;
    }

    /// Remove one connection toward output switch `p`.
    pub fn remove(&mut self, p: u32) {
        assert!(
            self.counts[p as usize] > 0,
            "output switch {p} has no connections"
        );
        self.counts[p as usize] -= 1;
    }

    /// `true` iff all `k` wavelengths toward `p` are busy.
    pub fn is_saturated(&self, p: u32) -> bool {
        self.counts[p as usize] == self.k
    }

    /// Eq. (4): the number of saturated elements.
    pub fn cardinality(&self) -> usize {
        self.counts.iter().filter(|&&c| c == self.k).count()
    }

    /// Eq. (5): a multiset is *null* iff it has no saturated element —
    /// i.e. the middle switch can still reach every output switch.
    pub fn is_null(&self) -> bool {
        self.cardinality() == 0
    }

    /// Eq. (3): element-wise minimum.
    ///
    /// Panics if the domains or wavelength bounds differ.
    pub fn intersection(&self, other: &DestinationMultiset) -> DestinationMultiset {
        assert_eq!(self.k, other.k, "wavelength bounds differ");
        assert_eq!(self.counts.len(), other.counts.len(), "domains differ");
        DestinationMultiset {
            k: self.k,
            counts: self
                .counts
                .iter()
                .zip(&other.counts)
                .map(|(&a, &b)| a.min(b))
                .collect(),
        }
    }

    /// Total number of connections through the middle switch
    /// (`Σ_p multiplicity(p)`).
    pub fn total_connections(&self) -> u64 {
        self.counts.iter().map(|&c| c as u64).sum()
    }

    /// Output switches *not* saturated — those a new connection could
    /// still be routed toward.
    pub fn reachable(&self) -> impl Iterator<Item = u32> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c < self.k)
            .map(|(p, _)| p as u32)
    }
}

impl fmt::Display for DestinationMultiset {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        let mut first = true;
        for (p, &c) in self.counts.iter().enumerate() {
            if c > 0 {
                if !first {
                    write!(f, ", ")?;
                }
                write!(f, "{p}^{c}")?;
                first = false;
            }
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_remove_multiplicity() {
        let mut m = DestinationMultiset::new(4, 2);
        m.add(1);
        m.add(1);
        assert_eq!(m.multiplicity(1), 2);
        assert!(m.is_saturated(1));
        m.remove(1);
        assert!(!m.is_saturated(1));
        assert_eq!(m.total_connections(), 1);
    }

    #[test]
    #[should_panic(expected = "saturated")]
    fn add_beyond_k_panics() {
        let mut m = DestinationMultiset::new(2, 1);
        m.add(0);
        m.add(0);
    }

    #[test]
    #[should_panic(expected = "no connections")]
    fn remove_below_zero_panics() {
        let mut m = DestinationMultiset::new(2, 1);
        m.remove(0);
    }

    #[test]
    fn cardinality_counts_only_saturated() {
        // Eq. (4): elements below multiplicity k contribute nothing.
        let m = DestinationMultiset::from_counts(2, vec![2, 1, 0, 2]);
        assert_eq!(m.cardinality(), 2);
        assert!(!m.is_null());
        let m = DestinationMultiset::from_counts(2, vec![1, 1, 1]);
        assert_eq!(m.cardinality(), 0);
        assert!(m.is_null());
    }

    #[test]
    fn intersection_is_elementwise_min() {
        let a = DestinationMultiset::from_counts(3, vec![3, 1, 2, 0]);
        let b = DestinationMultiset::from_counts(3, vec![2, 3, 3, 1]);
        let i = a.intersection(&b);
        assert_eq!(i.multiplicity(0), 2);
        assert_eq!(i.multiplicity(1), 1);
        assert_eq!(i.multiplicity(2), 2);
        assert_eq!(i.multiplicity(3), 0);
        // Saturated in the intersection ⇔ saturated in both.
        assert_eq!(i.cardinality(), 0);
        let j = a.intersection(&a);
        assert_eq!(j.cardinality(), 1);
    }

    #[test]
    fn intersection_laws() {
        let a = DestinationMultiset::from_counts(2, vec![2, 0, 1]);
        let b = DestinationMultiset::from_counts(2, vec![1, 2, 2]);
        let c = DestinationMultiset::from_counts(2, vec![2, 2, 0]);
        // Commutative, associative, idempotent.
        assert_eq!(a.intersection(&b), b.intersection(&a));
        assert_eq!(
            a.intersection(&b).intersection(&c),
            a.intersection(&b.intersection(&c))
        );
        assert_eq!(a.intersection(&a), a);
    }

    #[test]
    fn lemma4_emptiness_analogue() {
        // A connection to all of {0,1,2} can pass through middle switches
        // {j1, j2} iff no output switch is saturated in both. k = 1 makes
        // multiplicities boolean, recovering the classic set statement.
        let j1 = DestinationMultiset::from_counts(1, vec![1, 0, 1]);
        let j2 = DestinationMultiset::from_counts(1, vec![0, 1, 0]);
        assert!(j1.intersection(&j2).is_null()); // jointly cover everything
        let j3 = DestinationMultiset::from_counts(1, vec![1, 1, 0]);
        assert!(!j1.intersection(&j3).is_null()); // 0 blocked in both
    }

    #[test]
    fn reachable_iterates_unsaturated() {
        let m = DestinationMultiset::from_counts(2, vec![2, 1, 0]);
        let r: Vec<u32> = m.reachable().collect();
        assert_eq!(r, vec![1, 2]);
    }

    #[test]
    fn display_shows_multiplicities() {
        let m = DestinationMultiset::from_counts(3, vec![0, 2, 0, 3]);
        assert_eq!(m.to_string(), "{1^2, 3^3}");
    }

    #[test]
    #[should_panic(expected = "exceeds k")]
    fn from_counts_validates() {
        DestinationMultiset::from_counts(1, vec![2]);
    }
}
