//! Property-based tests for the three-stage simulator.

use proptest::prelude::*;
use wdm_core::{Endpoint, MulticastConnection, MulticastModel};
use wdm_multistage::{
    bounds, Construction, DestinationMultiset, SelectionStrategy, ThreeStageNetwork,
    ThreeStageParams,
};

fn arb_geometry() -> impl Strategy<Value = (u32, u32, u32)> {
    (2u32..=4, 2u32..=4, 1u32..=3)
}

/// Requests drawn directly from proptest: a source endpoint plus a set of
/// same-wavelength destinations (legal under every model).
fn arb_requests(n: u32, r: u32, k: u32) -> impl Strategy<Value = Vec<(u32, u32, Vec<u32>)>> {
    let ports = n * r;
    proptest::collection::vec(
        (
            0..ports,
            0..k,
            proptest::collection::btree_set(0..ports, 1..=(ports as usize)),
        )
            .prop_map(|(src, wl, dests)| (src, wl, dests.into_iter().collect::<Vec<u32>>())),
        1..25,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn state_stays_consistent_under_arbitrary_requests(
        reqs in arb_geometry().prop_flat_map(|(n, r, k)| arb_requests(n, r, k)),
        seed_geometry in arb_geometry(),
    ) {
        // Use an independent geometry for request generation robustness:
        // requests outside the frame are rejected by the assignment layer.
        let (n, r, k) = seed_geometry;
        let m = bounds::theorem1_min_m(n, r).m;
        let p = ThreeStageParams::new(n, m, r, k);
        let mut net = ThreeStageNetwork::new(p, Construction::MswDominant, MulticastModel::Msw);
        let ports = n * r;
        let mut live = Vec::new();
        for (src, wl, dests) in reqs {
            let src = Endpoint::new(src % ports, wl % k);
            let dests: Vec<Endpoint> =
                dests.iter().map(|&d| Endpoint::new(d % ports, src.wavelength.0)).collect();
            let Ok(conn) = MulticastConnection::new(src, dests) else { continue };
            if net.connect(&conn).is_ok() {
                live.push(src);
            }
        }
        prop_assert!(net.check_consistency().is_empty());
        // Tear everything down; the network must return to pristine state.
        for src in live {
            net.disconnect(src).unwrap();
        }
        prop_assert_eq!(net.active_connections(), 0);
        for j in 0..m {
            prop_assert_eq!(net.multiset(j).total_connections(), 0);
        }
    }

    #[test]
    fn all_strategies_nonblocking_at_bound(
        (n, r, k) in arb_geometry(),
        strategy in prop::sample::select(&[
            SelectionStrategy::FirstFit,
            SelectionStrategy::Pack,
            SelectionStrategy::Spread,
        ]),
        seed in any::<u64>(),
    ) {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let m = bounds::theorem1_min_m(n, r).m;
        let p = ThreeStageParams::new(n, m, r, k);
        let mut net = ThreeStageNetwork::new(p, Construction::MswDominant, MulticastModel::Msw);
        net.set_strategy(strategy);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut gen = wdm_workload::AssignmentGen::new(p.network(), MulticastModel::Msw, seed);
        let mut live: Vec<Endpoint> = Vec::new();
        for _ in 0..120 {
            if !live.is_empty() && rng.gen_bool(0.35) {
                let i = rng.gen_range(0..live.len());
                net.disconnect(live.swap_remove(i)).unwrap();
            } else if let Some(req) = gen.next_request(net.assignment(), 0) {
                let src = req.source();
                let result = net.connect(&req);
                prop_assert!(result.is_ok(), "{:?} blocked at bound: {:?}", strategy, result.err());
                live.push(src);
            }
        }
        prop_assert!(net.check_consistency().is_empty());
    }

    #[test]
    fn multiset_intersection_cardinality_bounds(
        counts_a in proptest::collection::vec(0u32..=3, 1..8),
        counts_b in proptest::collection::vec(0u32..=3, 1..8),
    ) {
        let len = counts_a.len().min(counts_b.len());
        let a = DestinationMultiset::from_counts(3, counts_a[..len].to_vec());
        let b = DestinationMultiset::from_counts(3, counts_b[..len].to_vec());
        let i = a.intersection(&b);
        // |A ∩ B| ≤ min(|A|, |B|) under the paper's Eq. (4) cardinality.
        prop_assert!(i.cardinality() <= a.cardinality().min(b.cardinality()));
        // Intersection total never exceeds either operand's total.
        prop_assert!(i.total_connections() <= a.total_connections());
        prop_assert!(i.total_connections() <= b.total_connections());
    }

    #[test]
    fn routed_connections_respect_x_limit(
        (n, r, k) in arb_geometry(),
        x in 1u32..4,
        seed in any::<u64>(),
    ) {
        let m = bounds::theorem1_min_m(n, r).m + 4; // headroom so x can bind
        let p = ThreeStageParams::new(n, m, r, k);
        let mut net = ThreeStageNetwork::new(p, Construction::MswDominant, MulticastModel::Msw);
        net.set_fanout_limit(x);
        let mut gen = wdm_workload::AssignmentGen::new(p.network(), MulticastModel::Msw, seed);
        for _ in 0..30 {
            let Some(req) = gen.next_request(net.assignment(), 0) else { break };
            let src = req.source();
            if net.connect(&req).is_ok() {
                prop_assert!(net.route_of(src).unwrap().middle_count() <= x as usize);
            }
        }
    }
}
