//! Empirical validation of Theorems 1 and 2: a three-stage network sized
//! at the theorem's bound never blocks a legal request, under sustained
//! random churn (connects and disconnects) designed to fragment the
//! middle stage.

use rand::{rngs::StdRng, Rng, SeedableRng};
use wdm_core::{Endpoint, MulticastAssignment, MulticastConnection, MulticastModel};
use wdm_multistage::{bounds, Construction, RouteError, ThreeStageNetwork, ThreeStageParams};

/// Generate a random legal request against the network's current
/// assignment, or `None` if the assignment is full.
fn random_request(
    asg: &MulticastAssignment,
    rng: &mut StdRng,
    model: MulticastModel,
) -> Option<MulticastConnection> {
    let net = asg.network();
    // A free source endpoint.
    let free_sources: Vec<Endpoint> = net.endpoints().filter(|&e| !asg.input_busy(e)).collect();
    let src = *pick(&free_sources, rng)?;
    // Free destination endpoints compatible with the model.
    let dest_wl = rng.gen_range(0..net.wavelengths);
    let mut dests: Vec<Endpoint> = Vec::new();
    let mut used_ports = std::collections::BTreeSet::new();
    let mut ports: Vec<u32> = (0..net.ports).collect();
    shuffle(&mut ports, rng);
    let want = rng.gen_range(1..=net.ports as usize);
    for &p in &ports {
        if dests.len() >= want {
            break;
        }
        if used_ports.contains(&p) {
            continue;
        }
        let wl_choices: Vec<u32> = match model {
            MulticastModel::Msw => vec![src.wavelength.0],
            MulticastModel::Msdw => vec![dest_wl],
            MulticastModel::Maw => {
                let mut w: Vec<u32> = (0..net.wavelengths).collect();
                shuffle(&mut w, rng);
                w
            }
        };
        for w in wl_choices {
            let ep = Endpoint::new(p, w);
            if asg.output_user(ep).is_none() {
                dests.push(ep);
                used_ports.insert(p);
                break;
            }
        }
    }
    if dests.is_empty() {
        return None;
    }
    Some(MulticastConnection::new(src, dests).expect("ports unique"))
}

fn pick<'a, T>(v: &'a [T], rng: &mut StdRng) -> Option<&'a T> {
    if v.is_empty() {
        None
    } else {
        Some(&v[rng.gen_range(0..v.len())])
    }
}

fn shuffle<T>(v: &mut [T], rng: &mut StdRng) {
    for i in (1..v.len()).rev() {
        v.swap(i, rng.gen_range(0..=i));
    }
}

/// Churn `steps` random operations; panic on any Blocked error.
fn churn_never_blocks(mut net: ThreeStageNetwork, model: MulticastModel, steps: usize, seed: u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut live: Vec<Endpoint> = Vec::new();
    for step in 0..steps {
        let disconnect = !live.is_empty() && rng.gen_bool(0.35);
        if disconnect {
            let i = rng.gen_range(0..live.len());
            let src = live.swap_remove(i);
            net.disconnect(src).unwrap();
        } else if let Some(req) = random_request(net.assignment(), &mut rng, model) {
            let src = req.source();
            match net.connect(&req) {
                Ok(_) => live.push(src),
                Err(RouteError::Blocked {
                    available_middles,
                    x_limit,
                }) => panic!(
                    "step {step}: blocked with m={} (bound satisfied!), \
                     {available_middles} available, x={x_limit}",
                    net.params().m
                ),
                Err(e) => panic!("unexpected routing failure: {e}"),
            }
        }
        if step % 97 == 0 {
            assert!(
                net.check_consistency().is_empty(),
                "state diverged at step {step}"
            );
        }
    }
}

#[test]
fn theorem1_msw_dominant_never_blocks_at_bound() {
    for (n, r, k) in [(2u32, 2u32, 2u32), (3, 3, 2), (4, 4, 1), (2, 4, 3)] {
        let m = bounds::theorem1_min_m(n, r).m;
        let p = ThreeStageParams::new(n, m, r, k);
        for model in MulticastModel::ALL {
            let net = ThreeStageNetwork::new(p, Construction::MswDominant, model);
            churn_never_blocks(net, model, 400, 0xC0FFEE + n as u64 * 31 + k as u64);
        }
    }
}

#[test]
fn theorem2_maw_dominant_never_blocks_at_bound() {
    for (n, r, k) in [(2u32, 2u32, 2u32), (3, 3, 2), (2, 4, 3), (4, 4, 2)] {
        let m = bounds::theorem2_min_m(n, r, k).m;
        let p = ThreeStageParams::new(n, m, r, k);
        for model in MulticastModel::ALL {
            let net = ThreeStageNetwork::new(p, Construction::MawDominant, model);
            churn_never_blocks(net, model, 400, 0xBEEF + n as u64 * 37 + k as u64);
        }
    }
}

#[test]
fn heavier_churn_on_one_geometry() {
    // A longer soak on a single mid-size geometry.
    let (n, r, k) = (4u32, 4u32, 2u32);
    let m = bounds::theorem1_min_m(n, r).m;
    let p = ThreeStageParams::new(n, m, r, k);
    let net = ThreeStageNetwork::new(p, Construction::MswDominant, MulticastModel::Msw);
    churn_never_blocks(net, MulticastModel::Msw, 3000, 42);
}

#[test]
fn starved_network_does_block() {
    // Control experiment: with m far below the bound, blocking must be
    // reachable — otherwise the nonblocking assertions above prove
    // nothing. m=2, k=1: an input module's two middle links carry at most
    // two connections, so a third same-module source is stranded.
    let p = ThreeStageParams::new(4, 2, 4, 1); // Theorem 1 bound would be 13
    let mut net = ThreeStageNetwork::new(p, Construction::MswDominant, MulticastModel::Msw);
    net.connect(&MulticastConnection::unicast(
        Endpoint::new(0, 0),
        Endpoint::new(0, 0),
    ))
    .unwrap();
    net.connect(&MulticastConnection::unicast(
        Endpoint::new(1, 0),
        Endpoint::new(1, 0),
    ))
    .unwrap();
    let err = net
        .connect(&MulticastConnection::unicast(
            Endpoint::new(2, 0),
            Endpoint::new(2, 0),
        ))
        .unwrap_err();
    assert!(
        matches!(
            err,
            RouteError::Blocked {
                available_middles: 0,
                ..
            }
        ),
        "expected middle starvation, got {err}"
    );
}

#[test]
fn unicast_only_traffic_needs_single_middle() {
    // With fanout-1 requests, every routed connection should use exactly
    // one middle switch regardless of the limit.
    let p = ThreeStageParams::new(3, 10, 3, 2);
    let mut net = ThreeStageNetwork::new(p, Construction::MswDominant, MulticastModel::Msw);
    let mut rng = StdRng::seed_from_u64(11);
    for _ in 0..40 {
        let Some(req) = random_request(net.assignment(), &mut rng, MulticastModel::Msw) else {
            break;
        };
        let src = req.source();
        let single =
            MulticastConnection::new(src, [req.destinations()[0]]).expect("one destination");
        if net.connect(&single).is_ok() {
            assert_eq!(net.route_of(src).unwrap().middle_count(), 1);
        }
    }
}
