//! Fabric error types.

use crate::NodeId;
use core::fmt;
use wdm_core::Endpoint;

/// Physical conflicts detected while propagating light through a netlist.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PropagationError {
    /// Two signals on the same wavelength share one fiber segment.
    WavelengthCollision {
        /// Downstream component of the colliding fiber.
        at: NodeId,
        /// The colliding wavelength (raw index).
        wavelength: u32,
    },
    /// A combiner has more than one lit input (§2.1: combiners admit only
    /// one active input at a time).
    CombinerConflict {
        /// The combiner.
        at: NodeId,
        /// Number of simultaneously lit inputs.
        lit_inputs: usize,
    },
    /// A converter is traversed by more than one signal at once.
    ConverterOverload {
        /// The converter.
        at: NodeId,
        /// Number of signals.
        signals: usize,
    },
}

impl fmt::Display for PropagationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PropagationError::WavelengthCollision { at, wavelength } => {
                write!(f, "wavelength λ{} collision entering {at}", wavelength + 1)
            }
            PropagationError::CombinerConflict { at, lit_inputs } => {
                write!(f, "combiner {at} has {lit_inputs} lit inputs (max 1)")
            }
            PropagationError::ConverterOverload { at, signals } => {
                write!(f, "converter {at} traversed by {signals} signals (max 1)")
            }
        }
    }
}

impl std::error::Error for PropagationError {}

/// Errors raised by crossbar routing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FabricError {
    /// The assignment's model does not match the fabric's model.
    ModelMismatch {
        /// Model the fabric was built for.
        fabric: wdm_core::MulticastModel,
        /// Model of the assignment.
        assignment: wdm_core::MulticastModel,
    },
    /// The assignment's network size does not match the fabric's.
    SizeMismatch,
    /// Light propagation produced physical conflicts.
    Propagation(Vec<PropagationError>),
    /// A destination endpoint did not receive its signal (e.g. a broken
    /// gate or converter on the path).
    DeliveryFailure {
        /// The endpoint that missed its signal.
        endpoint: Endpoint,
    },
}

impl fmt::Display for FabricError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FabricError::ModelMismatch { fabric, assignment } => {
                write!(f, "fabric is {fabric} but assignment is {assignment}")
            }
            FabricError::SizeMismatch => write!(f, "assignment network size differs from fabric"),
            FabricError::Propagation(errs) => {
                write!(f, "{} physical conflicts during propagation", errs.len())
            }
            FabricError::DeliveryFailure { endpoint } => {
                write!(f, "no signal delivered to {endpoint}")
            }
        }
    }
}

impl std::error::Error for FabricError {}

/// Every fabric error is structural — a mismatch between assignment and
/// hardware or physically conflicting light — so all of them classify as
/// [`wdm_core::RejectClass::Fatal`] in the canonical taxonomy.
impl From<FabricError> for wdm_core::Reject {
    fn from(e: FabricError) -> Self {
        wdm_core::Reject::Fatal(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_details() {
        let e = PropagationError::WavelengthCollision {
            at: NodeId(7),
            wavelength: 0,
        };
        assert!(e.to_string().contains("λ1"));
        assert!(e.to_string().contains("n7"));
        let e = FabricError::DeliveryFailure {
            endpoint: Endpoint::new(2, 1),
        };
        assert!(e.to_string().contains("(p2, λ2)"));
    }

    #[test]
    fn fabric_errors_classify_as_fatal() {
        let r = wdm_core::Reject::from(FabricError::SizeMismatch);
        assert_eq!(r.class(), wdm_core::RejectClass::Fatal);
        assert!(r.to_string().contains("size differs"));
    }
}
