//! Per-destination optical path tracing.
//!
//! The worst-case budget of [`crate::PowerBudget`] bounds every possible
//! path; this module recovers the *actual* path one delivered signal
//! took — the component chain from its input port to one destination —
//! and the loss accumulated along it. Paths are reconstructed backwards
//! from the destination using the per-edge signal sets recorded during
//! propagation, keyed by signal *origin* (origins are unique per
//! injection, and converters preserve them).

use crate::{Component, Netlist, NodeId, PowerBudget, PowerParams, PropagationOutcome};
use wdm_core::Endpoint;

/// A reconstructed signal path.
#[derive(Debug, Clone, PartialEq)]
pub struct SignalPath {
    /// Components traversed, input port first.
    pub nodes: Vec<NodeId>,
    /// Total loss along the path in dB (negative = net gain).
    pub loss_db: f64,
}

impl SignalPath {
    /// Number of components traversed.
    pub fn hops(&self) -> usize {
        self.nodes.len()
    }
}

/// Reconstruct the path of the signal delivered to `dest`, or `None` if
/// nothing (or something ambiguous) arrived there.
pub fn trace_signal(
    netlist: &Netlist,
    outcome: &PropagationOutcome,
    dest: Endpoint,
    params: &PowerParams,
) -> Option<SignalPath> {
    let &[signal] = &outcome.received_at(dest) else {
        return None; // zero or multiple signals
    };
    let origin = signal.origin;

    // Locate the destination's output port node.
    let out_node = netlist
        .iter()
        .find(|(_, c)| matches!(c, Component::OutputPort(p) if p.0 == dest.port.0))
        .map(|(id, _)| id)?;

    // Walk upstream following edges that carried our origin.
    let mut rev = vec![out_node];
    let mut node = out_node;
    loop {
        let prev = netlist
            .in_edges(node)
            .iter()
            .find(|&&e| outcome.edge_signals[e.0].iter().any(|s| s.origin == origin))?;
        node = netlist.edge(*prev).from;
        rev.push(node);
        if netlist.component(node).is_source() {
            break;
        }
        if rev.len() > netlist.node_count() {
            return None; // defensive: malformed graph
        }
    }
    rev.reverse();
    let loss_db = rev
        .iter()
        .map(|&id| PowerBudget::device_loss(netlist, id, params))
        .sum();
    Some(SignalPath {
        nodes: rev,
        loss_db,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::WdmCrossbar;
    use wdm_core::{MulticastAssignment, MulticastConnection, MulticastModel, NetworkConfig};

    fn routed(model: MulticastModel) -> (WdmCrossbar, PropagationOutcome, MulticastAssignment) {
        let net = NetworkConfig::new(4, 2);
        let mut xbar = WdmCrossbar::build(net, model);
        let mut asg = MulticastAssignment::new(net, model);
        asg.add(
            MulticastConnection::new(
                Endpoint::new(0, 0),
                [Endpoint::new(1, 0), Endpoint::new(3, 0)],
            )
            .unwrap(),
        )
        .unwrap();
        let outcome = xbar.route_verified(&asg).unwrap();
        (xbar, outcome, asg)
    }

    #[test]
    fn traces_input_to_output() {
        let (xbar, outcome, _) = routed(MulticastModel::Msw);
        let p = trace_signal(
            xbar.netlist(),
            &outcome,
            Endpoint::new(1, 0),
            &PowerParams::default(),
        )
        .expect("delivered signal has a path");
        // input → demux → splitter → gate → combiner → mux → output.
        assert_eq!(p.hops(), 7);
        assert!(xbar.netlist().component(p.nodes[0]).is_source());
        assert!(xbar.netlist().component(*p.nodes.last().unwrap()).is_sink());
        // The path loss is bounded by the fabric's worst case.
        let worst = xbar.power_budget(&PowerParams::default());
        assert!(p.loss_db <= worst.worst_path_loss_db + 1e-9);
    }

    #[test]
    fn maw_path_passes_a_converter() {
        let (xbar, outcome, _) = routed(MulticastModel::Maw);
        let p = trace_signal(
            xbar.netlist(),
            &outcome,
            Endpoint::new(3, 0),
            &PowerParams::default(),
        )
        .unwrap();
        let has_converter = p
            .nodes
            .iter()
            .any(|&id| matches!(xbar.netlist().component(id), Component::Converter { .. }));
        assert!(has_converter, "MAW output path must include its converter");
        // 8 hops: the converter adds one stage over MSW.
        assert_eq!(p.hops(), 8);
    }

    #[test]
    fn undelivered_endpoint_has_no_path() {
        let (xbar, outcome, _) = routed(MulticastModel::Msw);
        assert!(trace_signal(
            xbar.netlist(),
            &outcome,
            Endpoint::new(2, 0),
            &PowerParams::default()
        )
        .is_none());
    }

    #[test]
    fn multicast_branches_share_the_splitter() {
        let (xbar, outcome, _) = routed(MulticastModel::Msw);
        let params = PowerParams::default();
        let p1 = trace_signal(xbar.netlist(), &outcome, Endpoint::new(1, 0), &params).unwrap();
        let p3 = trace_signal(xbar.netlist(), &outcome, Endpoint::new(3, 0), &params).unwrap();
        // Same first three components (input, demux, splitter), then fork.
        assert_eq!(&p1.nodes[..3], &p3.nodes[..3]);
        assert_ne!(p1.nodes[3], p3.nodes[3]);
    }
}
