//! The device graph: components wired by directed fiber segments.

use crate::{Component, ComponentKind, NodeId};
use serde::{Deserialize, Serialize};

/// Index of a fiber segment in a [`Netlist`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct EdgeId(pub usize);

/// One directed fiber segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Edge {
    /// Upstream component.
    pub from: NodeId,
    /// Output slot on the upstream component. Slots are meaningful for
    /// [`Component::Demux`] (slot `w` carries wavelength `λ_w`); other
    /// components treat all output slots alike.
    pub from_slot: u32,
    /// Downstream component.
    pub to: NodeId,
}

/// A directed acyclic graph of photonic components.
///
/// Built once by a crossbar constructor, then queried and mutated (gate
/// enables, converter programs) by the routing controller.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Netlist {
    nodes: Vec<Component>,
    edges: Vec<Edge>,
    /// Outgoing edge ids per node, in insertion order.
    out_edges: Vec<Vec<EdgeId>>,
    /// Incoming edge ids per node, in insertion order.
    in_edges: Vec<Vec<EdgeId>>,
}

impl Netlist {
    /// An empty netlist.
    pub fn new() -> Self {
        Netlist::default()
    }

    /// Add a component, returning its id.
    pub fn add(&mut self, component: Component) -> NodeId {
        let id = NodeId(self.nodes.len());
        self.nodes.push(component);
        self.out_edges.push(Vec::new());
        self.in_edges.push(Vec::new());
        id
    }

    /// Wire `from`'s output slot `from_slot` to `to`.
    pub fn connect(&mut self, from: NodeId, from_slot: u32, to: NodeId) -> EdgeId {
        assert!(
            from.0 < self.nodes.len() && to.0 < self.nodes.len(),
            "unknown node"
        );
        let id = EdgeId(self.edges.len());
        self.edges.push(Edge {
            from,
            from_slot,
            to,
        });
        self.out_edges[from.0].push(id);
        self.in_edges[to.0].push(id);
        id
    }

    /// Wire with slot 0 (for single-output components).
    pub fn connect_simple(&mut self, from: NodeId, to: NodeId) -> EdgeId {
        self.connect(from, 0, to)
    }

    /// Number of components.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of fiber segments.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// The component at `id`.
    pub fn component(&self, id: NodeId) -> &Component {
        &self.nodes[id.0]
    }

    /// Mutable access to the component at `id` (gate toggles, converter
    /// programming, fault injection).
    pub fn component_mut(&mut self, id: NodeId) -> &mut Component {
        &mut self.nodes[id.0]
    }

    /// The edge record at `id`.
    pub fn edge(&self, id: EdgeId) -> Edge {
        self.edges[id.0]
    }

    /// Outgoing edges of `id`, in insertion order.
    pub fn out_edges(&self, id: NodeId) -> &[EdgeId] {
        &self.out_edges[id.0]
    }

    /// Incoming edges of `id`, in insertion order.
    pub fn in_edges(&self, id: NodeId) -> &[EdgeId] {
        &self.in_edges[id.0]
    }

    /// Iterate `(id, component)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, &Component)> {
        self.nodes.iter().enumerate().map(|(i, c)| (NodeId(i), c))
    }

    /// Ids of all components of the given kind.
    pub fn nodes_of_kind(&self, kind: ComponentKind) -> impl Iterator<Item = NodeId> + '_ {
        self.iter()
            .filter(move |(_, c)| c.kind() == kind)
            .map(|(id, _)| id)
    }

    /// Topological order of the DAG.
    ///
    /// Panics if the graph has a cycle — crossbar constructors only build
    /// feed-forward structures, so a cycle is a construction bug.
    pub fn topological_order(&self) -> Vec<NodeId> {
        let mut indegree: Vec<usize> = self.in_edges.iter().map(|e| e.len()).collect();
        let mut queue: Vec<NodeId> = indegree
            .iter()
            .enumerate()
            .filter(|(_, &d)| d == 0)
            .map(|(i, _)| NodeId(i))
            .collect();
        let mut order = Vec::with_capacity(self.nodes.len());
        while let Some(id) = queue.pop() {
            order.push(id);
            for &eid in &self.out_edges[id.0] {
                let to = self.edges[eid.0].to;
                indegree[to.0] -= 1;
                if indegree[to.0] == 0 {
                    queue.push(to);
                }
            }
        }
        assert_eq!(order.len(), self.nodes.len(), "netlist contains a cycle");
        order
    }

    /// Export as Graphviz DOT for visualization (`dot -Tsvg`).
    ///
    /// Components are shaped by kind (gates are squares, converters
    /// diamonds, passive devices ellipses) and enabled gates are filled.
    pub fn to_dot(&self, title: &str) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        writeln!(out, "digraph \"{title}\" {{").unwrap();
        writeln!(out, "  rankdir=LR;").unwrap();
        writeln!(out, "  node [fontsize=10];").unwrap();
        for (id, comp) in self.iter() {
            let (label, attrs) = match comp {
                Component::InputPort(p) => (
                    format!("in {p}"),
                    "shape=cds, style=filled, fillcolor=lightblue",
                ),
                Component::OutputPort(p) => (
                    format!("out {p}"),
                    "shape=cds, style=filled, fillcolor=lightgreen",
                ),
                Component::Demux => ("demux".to_string(), "shape=trapezium"),
                Component::Mux => ("mux".to_string(), "shape=invtrapezium"),
                Component::Splitter => ("split".to_string(), "shape=triangle"),
                Component::Combiner => ("comb".to_string(), "shape=invtriangle"),
                Component::SoaGate {
                    enabled: true,
                    broken: false,
                } => (
                    "gate".to_string(),
                    "shape=square, style=filled, fillcolor=gold",
                ),
                Component::SoaGate { broken: true, .. } => (
                    "gate ✗".to_string(),
                    "shape=square, style=filled, fillcolor=red",
                ),
                Component::SoaGate { .. } => ("gate".to_string(), "shape=square"),
                Component::Converter {
                    target: Some(t), ..
                } => (format!("conv→{t}"), "shape=diamond"),
                Component::Converter { .. } => ("conv".to_string(), "shape=diamond"),
            };
            writeln!(out, "  n{} [label=\"{label}\", {attrs}];", id.0).unwrap();
        }
        for i in 0..self.edges.len() {
            let e = self.edges[i];
            writeln!(out, "  n{} -> n{};", e.from.0, e.to.0).unwrap();
        }
        writeln!(out, "}}").unwrap();
        out
    }

    /// Structural sanity checks: gates and converters are 1-in/1-out,
    /// sources have no in-edges, sinks no out-edges. Returns a list of
    /// violations (empty = sound).
    pub fn validate(&self) -> Vec<String> {
        let mut problems = Vec::new();
        for (id, c) in self.iter() {
            let ins = self.in_edges(id).len();
            let outs = self.out_edges(id).len();
            match c.kind() {
                ComponentKind::SoaGate | ComponentKind::Converter => {
                    if ins != 1 || outs != 1 {
                        problems.push(format!(
                            "{id}: {} must be 1-in/1-out, has {ins}/{outs}",
                            c.kind()
                        ));
                    }
                }
                ComponentKind::InputPort => {
                    if ins != 0 {
                        problems.push(format!("{id}: input port has {ins} in-edges"));
                    }
                }
                ComponentKind::OutputPort => {
                    if outs != 0 {
                        problems.push(format!("{id}: output port has {outs} out-edges"));
                    }
                }
                ComponentKind::Combiner | ComponentKind::Mux => {
                    if outs != 1 {
                        problems.push(format!(
                            "{id}: {} must have exactly 1 output, has {outs}",
                            c.kind()
                        ));
                    }
                    if ins < 1 {
                        problems.push(format!("{id}: {} has no inputs", c.kind()));
                    }
                }
                ComponentKind::Splitter | ComponentKind::Demux => {
                    if ins != 1 {
                        problems.push(format!(
                            "{id}: {} must have exactly 1 input, has {ins}",
                            c.kind()
                        ));
                    }
                    if outs < 1 {
                        problems.push(format!("{id}: {} has no outputs", c.kind()));
                    }
                }
            }
        }
        problems
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wdm_core::PortId;

    fn tiny() -> (Netlist, NodeId, NodeId, NodeId, NodeId) {
        // input -> splitter -> gate -> output
        let mut nl = Netlist::new();
        let inp = nl.add(Component::InputPort(PortId(0)));
        let spl = nl.add(Component::Splitter);
        let gate = nl.add(Component::gate());
        let out = nl.add(Component::OutputPort(PortId(0)));
        nl.connect_simple(inp, spl);
        nl.connect_simple(spl, gate);
        nl.connect_simple(gate, out);
        (nl, inp, spl, gate, out)
    }

    #[test]
    fn adjacency_bookkeeping() {
        let (nl, inp, spl, gate, out) = tiny();
        assert_eq!(nl.node_count(), 4);
        assert_eq!(nl.edge_count(), 3);
        assert_eq!(nl.out_edges(inp).len(), 1);
        assert_eq!(nl.in_edges(out).len(), 1);
        let e = nl.edge(nl.out_edges(spl)[0]);
        assert_eq!(e.to, gate);
    }

    #[test]
    fn topological_order_respects_edges() {
        let (nl, ..) = tiny();
        let order = nl.topological_order();
        let pos: std::collections::HashMap<NodeId, usize> =
            order.iter().enumerate().map(|(i, &n)| (n, i)).collect();
        for i in 0..nl.edge_count() {
            let e = nl.edge(EdgeId(i));
            assert!(pos[&e.from] < pos[&e.to]);
        }
    }

    #[test]
    #[should_panic(expected = "cycle")]
    fn cycle_detected() {
        let mut nl = Netlist::new();
        let a = nl.add(Component::Splitter);
        let b = nl.add(Component::Combiner);
        nl.connect_simple(a, b);
        nl.connect_simple(b, a);
        nl.topological_order();
    }

    #[test]
    fn validate_passes_on_sound_graph() {
        let (nl, ..) = tiny();
        assert!(nl.validate().is_empty(), "{:?}", nl.validate());
    }

    #[test]
    fn validate_flags_malformed_gate() {
        let mut nl = Netlist::new();
        let inp = nl.add(Component::InputPort(PortId(0)));
        let gate = nl.add(Component::gate());
        nl.connect_simple(inp, gate);
        // gate has no output
        let problems = nl.validate();
        assert!(problems.iter().any(|p| p.contains("gate")), "{problems:?}");
    }

    #[test]
    fn dot_export_has_all_nodes_and_edges() {
        let (nl, ..) = tiny();
        let dot = nl.to_dot("tiny");
        assert!(dot.starts_with("digraph \"tiny\""));
        for i in 0..nl.node_count() {
            assert!(dot.contains(&format!("n{i} [")), "node {i} missing");
        }
        assert_eq!(dot.matches(" -> ").count(), nl.edge_count());
        assert!(dot.contains("shape=square")); // the gate
        assert!(dot.trim_end().ends_with('}'));
    }

    #[test]
    fn component_mut_toggles_gate() {
        let (mut nl, _, _, gate, _) = tiny();
        if let Component::SoaGate { enabled, .. } = nl.component_mut(gate) {
            *enabled = true;
        }
        assert_eq!(
            nl.component(gate),
            &Component::SoaGate {
                enabled: true,
                broken: false
            }
        );
    }

    #[test]
    fn nodes_of_kind_filter() {
        let (nl, ..) = tiny();
        assert_eq!(nl.nodes_of_kind(ComponentKind::SoaGate).count(), 1);
        assert_eq!(nl.nodes_of_kind(ComponentKind::Mux).count(), 0);
    }
}
