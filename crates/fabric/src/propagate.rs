//! Light propagation through a netlist.
//!
//! Signals are injected at input ports and pushed through the DAG in
//! topological order. Each component transforms the signal sets on its
//! incoming fibers into signal sets on its outgoing fibers; physical
//! conflicts (wavelength collisions, multi-lit combiners, overloaded
//! converters) are collected rather than short-circuited, so a single run
//! reports every problem in the configuration.

use crate::{Component, EdgeId, Netlist, PropagationError};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use wdm_core::{Endpoint, WavelengthId};

/// A light signal: where it entered the network and the wavelength it is
/// currently carried on (converters rewrite the latter, never the former).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Signal {
    /// The input endpoint that injected this signal.
    pub origin: Endpoint,
    /// Current wavelength.
    pub wavelength: WavelengthId,
}

/// Result of one propagation run.
#[derive(Debug, Clone)]
pub struct PropagationOutcome {
    /// Signals observed at each output endpoint `(port, λ)`.
    received: BTreeMap<Endpoint, Vec<Signal>>,
    /// All physical conflicts encountered.
    pub errors: Vec<PropagationError>,
    /// Edge occupancy: how many signals each fiber carried (for power /
    /// crosstalk analysis).
    pub edge_load: Vec<u8>,
    /// First-order crosstalk exposure per output port: the number of
    /// *off* SOA gates that had light on their input and whose output
    /// chain reaches the port. Each is a leakage path contributing
    /// `ε`-level crosstalk in a real device — the concrete form of the
    /// paper's remark (§2.3) that the crosspoint count "may also be used
    /// to project the crosstalk … inside a WDM switch".
    pub crosstalk_exposure: BTreeMap<u32, u32>,
    /// Signals carried by every fiber segment (indexed by edge id) — the
    /// raw data behind [`crate::path::trace_signal`].
    pub edge_signals: Vec<Vec<Signal>>,
}

impl PropagationOutcome {
    /// Signals observed at output endpoint `ep`.
    pub fn received_at(&self, ep: Endpoint) -> &[Signal] {
        self.received.get(&ep).map_or(&[], Vec::as_slice)
    }

    /// Endpoints that received at least one signal.
    pub fn lit_outputs(&self) -> impl Iterator<Item = Endpoint> + '_ {
        self.received.keys().copied()
    }

    /// `true` iff propagation raised no physical conflicts.
    pub fn is_clean(&self) -> bool {
        self.errors.is_empty()
    }

    /// Total first-order crosstalk leakage paths across all output ports.
    pub fn total_crosstalk_exposure(&self) -> u64 {
        self.crosstalk_exposure.values().map(|&c| c as u64).sum()
    }

    /// Exact-delivery check against an assignment: every destination
    /// endpoint of every connection received exactly the signal injected
    /// by its source (on the destination's own wavelength), no other
    /// output endpoint received anything, and there were no conflicts.
    pub fn delivered_exactly(&self, asg: &wdm_core::MulticastAssignment) -> bool {
        if !self.is_clean() {
            return false;
        }
        let mut expected: BTreeMap<Endpoint, Signal> = BTreeMap::new();
        for conn in asg.connections() {
            for &d in conn.destinations() {
                expected.insert(
                    d,
                    Signal {
                        origin: conn.source(),
                        wavelength: d.wavelength,
                    },
                );
            }
        }
        if self.received.len() != expected.len() {
            return false;
        }
        expected
            .iter()
            .all(|(ep, want)| self.received_at(*ep) == std::slice::from_ref(want))
    }
}

/// Propagate the injected signals through `netlist`.
///
/// `injections` maps each input port id to the signals entering on its
/// fiber. Returns the full outcome; callers decide whether conflicts are
/// fatal.
pub fn propagate(netlist: &Netlist, injections: &BTreeMap<u32, Vec<Signal>>) -> PropagationOutcome {
    let mut edge_signals: Vec<Vec<Signal>> = vec![Vec::new(); netlist.edge_count()];
    let mut errors = Vec::new();
    let mut received: BTreeMap<Endpoint, Vec<Signal>> = BTreeMap::new();

    for node in netlist.topological_order() {
        let incoming: Vec<(EdgeId, &[Signal])> = netlist
            .in_edges(node)
            .iter()
            .map(|&e| (e, edge_signals[e.0].as_slice()))
            .collect();
        let gathered: Vec<Signal> = incoming
            .iter()
            .flat_map(|(_, s)| s.iter().copied())
            .collect();

        // Per-component transfer function; produces the signal set for
        // each outgoing edge (by slot).
        let outputs: Vec<(EdgeId, Vec<Signal>)> = match netlist.component(node) {
            Component::InputPort(port) => {
                let sigs = injections.get(&port.0).cloned().unwrap_or_default();
                netlist
                    .out_edges(node)
                    .iter()
                    .map(|&e| (e, sigs.clone()))
                    .collect()
            }
            Component::Demux => netlist
                .out_edges(node)
                .iter()
                .map(|&e| {
                    let slot = netlist.edge(e).from_slot;
                    let filtered: Vec<Signal> = gathered
                        .iter()
                        .copied()
                        .filter(|s| s.wavelength.0 == slot)
                        .collect();
                    (e, filtered)
                })
                .collect(),
            Component::Splitter => netlist
                .out_edges(node)
                .iter()
                .map(|&e| (e, gathered.clone()))
                .collect(),
            Component::SoaGate { enabled, broken } => {
                let passes = *enabled && !*broken;
                netlist
                    .out_edges(node)
                    .iter()
                    .map(|&e| (e, if passes { gathered.clone() } else { Vec::new() }))
                    .collect()
            }
            Component::Converter { target, broken } => {
                if gathered.len() > 1 {
                    errors.push(PropagationError::ConverterOverload {
                        at: node,
                        signals: gathered.len(),
                    });
                }
                let converted: Vec<Signal> = gathered
                    .iter()
                    .map(|s| match (target, broken) {
                        (Some(t), false) => Signal {
                            origin: s.origin,
                            wavelength: *t,
                        },
                        _ => *s,
                    })
                    .collect();
                netlist
                    .out_edges(node)
                    .iter()
                    .map(|&e| (e, converted.clone()))
                    .collect()
            }
            Component::Combiner => {
                let lit = incoming.iter().filter(|(_, s)| !s.is_empty()).count();
                if lit > 1 {
                    errors.push(PropagationError::CombinerConflict {
                        at: node,
                        lit_inputs: lit,
                    });
                }
                netlist
                    .out_edges(node)
                    .iter()
                    .map(|&e| (e, gathered.clone()))
                    .collect()
            }
            Component::Mux => netlist
                .out_edges(node)
                .iter()
                .map(|&e| (e, gathered.clone()))
                .collect(),
            Component::OutputPort(port) => {
                for s in &gathered {
                    received
                        .entry(Endpoint {
                            port: *port,
                            wavelength: s.wavelength,
                        })
                        .or_default()
                        .push(*s);
                }
                Vec::new()
            }
        };

        for (e, sigs) in outputs {
            // Same-wavelength signals sharing a fiber interfere.
            let mut seen = std::collections::BTreeSet::new();
            for s in &sigs {
                if !seen.insert(s.wavelength) {
                    errors.push(PropagationError::WavelengthCollision {
                        at: netlist.edge(e).to,
                        wavelength: s.wavelength.0,
                    });
                }
            }
            edge_signals[e.0] = sigs;
        }
    }

    // Crosstalk pass: every off/broken gate whose input fiber is lit is a
    // leakage source; follow its (single-output) downstream chain to the
    // output port it would contaminate.
    let mut crosstalk_exposure: BTreeMap<u32, u32> = BTreeMap::new();
    for (node, comp) in netlist.iter() {
        let leaking = match comp {
            Component::SoaGate { enabled, broken } => {
                (!*enabled || *broken)
                    && netlist
                        .in_edges(node)
                        .iter()
                        .any(|&e| !edge_signals[e.0].is_empty())
            }
            _ => false,
        };
        if leaking {
            if let Some(port) = downstream_output_port(netlist, node) {
                *crosstalk_exposure.entry(port).or_insert(0) += 1;
            }
        }
    }

    let edge_load = edge_signals
        .iter()
        .map(|s| s.len().min(u8::MAX as usize) as u8)
        .collect();
    PropagationOutcome {
        received,
        errors,
        edge_load,
        crosstalk_exposure,
        edge_signals,
    }
}

/// Follow the unique downstream chain from `node` (gate → combiner →
/// converter? → mux → output port). Returns `None` if the chain forks or
/// dead-ends before an output port (possible in hand-built test graphs).
fn downstream_output_port(netlist: &Netlist, mut node: crate::NodeId) -> Option<u32> {
    for _ in 0..netlist.node_count() {
        let outs = netlist.out_edges(node);
        if outs.len() != 1 {
            return None;
        }
        node = netlist.edge(outs[0]).to;
        if let Component::OutputPort(p) = netlist.component(node) {
            return Some(p.0);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NodeId;
    use wdm_core::PortId;

    fn sig(p: u32, w: u32) -> Signal {
        Signal {
            origin: Endpoint::new(p, w),
            wavelength: WavelengthId(w),
        }
    }

    /// input ── splitter ──┬─ gate_a ── combiner ── output0
    ///                     └─ gate_b ── combiner2 ── output1
    fn two_way() -> (Netlist, NodeId, NodeId) {
        let mut nl = Netlist::new();
        let inp = nl.add(Component::InputPort(PortId(0)));
        let spl = nl.add(Component::Splitter);
        let ga = nl.add(Component::gate());
        let gb = nl.add(Component::gate());
        let ca = nl.add(Component::Combiner);
        let cb = nl.add(Component::Combiner);
        let oa = nl.add(Component::OutputPort(PortId(0)));
        let ob = nl.add(Component::OutputPort(PortId(1)));
        nl.connect_simple(inp, spl);
        nl.connect_simple(spl, ga);
        nl.connect_simple(spl, gb);
        nl.connect_simple(ga, ca);
        nl.connect_simple(gb, cb);
        nl.connect_simple(ca, oa);
        nl.connect_simple(cb, ob);
        (nl, ga, gb)
    }

    fn enable(nl: &mut Netlist, id: NodeId) {
        if let Component::SoaGate { enabled, .. } = nl.component_mut(id) {
            *enabled = true;
        }
    }

    #[test]
    fn disabled_gates_block_light() {
        let (nl, ..) = two_way();
        let mut inj = BTreeMap::new();
        inj.insert(0, vec![sig(0, 0)]);
        let out = propagate(&nl, &inj);
        assert!(out.is_clean());
        assert_eq!(out.lit_outputs().count(), 0);
    }

    #[test]
    fn splitter_multicasts_through_enabled_gates() {
        let (mut nl, ga, gb) = two_way();
        enable(&mut nl, ga);
        enable(&mut nl, gb);
        let mut inj = BTreeMap::new();
        inj.insert(0, vec![sig(0, 0)]);
        let out = propagate(&nl, &inj);
        assert!(out.is_clean());
        assert_eq!(out.received_at(Endpoint::new(0, 0)), &[sig(0, 0)]);
        assert_eq!(out.received_at(Endpoint::new(1, 0)), &[sig(0, 0)]);
    }

    #[test]
    fn broken_gate_drops_signal() {
        let (mut nl, ga, _) = two_way();
        enable(&mut nl, ga);
        if let Component::SoaGate { broken, .. } = nl.component_mut(ga) {
            *broken = true;
        }
        let mut inj = BTreeMap::new();
        inj.insert(0, vec![sig(0, 0)]);
        let out = propagate(&nl, &inj);
        assert_eq!(out.lit_outputs().count(), 0);
    }

    #[test]
    fn combiner_conflict_detected() {
        // Two inputs into one combiner, both lit.
        let mut nl = Netlist::new();
        let i0 = nl.add(Component::InputPort(PortId(0)));
        let i1 = nl.add(Component::InputPort(PortId(1)));
        let comb = nl.add(Component::Combiner);
        let out = nl.add(Component::OutputPort(PortId(0)));
        nl.connect_simple(i0, comb);
        nl.connect_simple(i1, comb);
        nl.connect_simple(comb, out);
        let mut inj = BTreeMap::new();
        inj.insert(0, vec![sig(0, 0)]);
        inj.insert(1, vec![sig(1, 1)]);
        let o = propagate(&nl, &inj);
        assert_eq!(o.errors.len(), 1);
        assert!(matches!(
            o.errors[0],
            PropagationError::CombinerConflict { lit_inputs: 2, .. }
        ));
    }

    #[test]
    fn wavelength_collision_detected() {
        // Two same-λ signals merged by a mux.
        let mut nl = Netlist::new();
        let i0 = nl.add(Component::InputPort(PortId(0)));
        let i1 = nl.add(Component::InputPort(PortId(1)));
        let mux = nl.add(Component::Mux);
        let out = nl.add(Component::OutputPort(PortId(0)));
        nl.connect_simple(i0, mux);
        nl.connect_simple(i1, mux);
        nl.connect_simple(mux, out);
        let mut inj = BTreeMap::new();
        inj.insert(0, vec![sig(0, 0)]);
        inj.insert(
            1,
            vec![Signal {
                origin: Endpoint::new(1, 0),
                wavelength: WavelengthId(0),
            }],
        );
        let o = propagate(&nl, &inj);
        assert!(o.errors.iter().any(|e| matches!(
            e,
            PropagationError::WavelengthCollision { wavelength: 0, .. }
        )));
    }

    #[test]
    fn demux_separates_wavelengths() {
        let mut nl = Netlist::new();
        let inp = nl.add(Component::InputPort(PortId(0)));
        let dmx = nl.add(Component::Demux);
        let o0 = nl.add(Component::OutputPort(PortId(0)));
        let o1 = nl.add(Component::OutputPort(PortId(1)));
        nl.connect_simple(inp, dmx);
        nl.connect(dmx, 0, o0);
        nl.connect(dmx, 1, o1);
        let mut inj = BTreeMap::new();
        inj.insert(0, vec![sig(0, 0), sig(0, 1)]);
        let o = propagate(&nl, &inj);
        assert!(o.is_clean());
        assert_eq!(o.received_at(Endpoint::new(0, 0)).len(), 1);
        assert_eq!(o.received_at(Endpoint::new(1, 1)).len(), 1);
        assert_eq!(o.received_at(Endpoint::new(0, 1)).len(), 0);
    }

    #[test]
    fn converter_rewrites_wavelength() {
        let mut nl = Netlist::new();
        let inp = nl.add(Component::InputPort(PortId(0)));
        let cvt = nl.add(Component::Converter {
            target: Some(WavelengthId(1)),
            broken: false,
        });
        let out = nl.add(Component::OutputPort(PortId(0)));
        nl.connect_simple(inp, cvt);
        nl.connect_simple(cvt, out);
        let mut inj = BTreeMap::new();
        inj.insert(0, vec![sig(0, 0)]);
        let o = propagate(&nl, &inj);
        let got = o.received_at(Endpoint::new(0, 1));
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].origin, Endpoint::new(0, 0)); // origin preserved
        assert_eq!(got[0].wavelength, WavelengthId(1));
    }

    #[test]
    fn broken_converter_is_transparent() {
        let mut nl = Netlist::new();
        let inp = nl.add(Component::InputPort(PortId(0)));
        let cvt = nl.add(Component::Converter {
            target: Some(WavelengthId(1)),
            broken: true,
        });
        let out = nl.add(Component::OutputPort(PortId(0)));
        nl.connect_simple(inp, cvt);
        nl.connect_simple(cvt, out);
        let mut inj = BTreeMap::new();
        inj.insert(0, vec![sig(0, 0)]);
        let o = propagate(&nl, &inj);
        assert_eq!(o.received_at(Endpoint::new(0, 0)).len(), 1);
        assert_eq!(o.received_at(Endpoint::new(0, 1)).len(), 0);
    }

    #[test]
    fn crosstalk_counts_lit_off_gates() {
        let (mut nl, ga, _gb) = two_way();
        enable(&mut nl, ga); // gb stays off but its input is lit
        let mut inj = BTreeMap::new();
        inj.insert(0, vec![sig(0, 0)]);
        let out = propagate(&nl, &inj);
        // gb leaks toward output port 1.
        assert_eq!(out.crosstalk_exposure.get(&1), Some(&1));
        assert_eq!(out.crosstalk_exposure.get(&0), None);
        assert_eq!(out.total_crosstalk_exposure(), 1);
    }

    #[test]
    fn no_crosstalk_without_light() {
        let (nl, ..) = two_way(); // both gates off, nothing injected
        let out = propagate(&nl, &BTreeMap::new());
        assert_eq!(out.total_crosstalk_exposure(), 0);
    }

    #[test]
    fn converter_overload_detected() {
        let mut nl = Netlist::new();
        let inp = nl.add(Component::InputPort(PortId(0)));
        let cvt = nl.add(Component::Converter {
            target: Some(WavelengthId(0)),
            broken: false,
        });
        let out = nl.add(Component::OutputPort(PortId(0)));
        nl.connect_simple(inp, cvt);
        nl.connect_simple(cvt, out);
        let mut inj = BTreeMap::new();
        inj.insert(0, vec![sig(0, 0), sig(0, 1)]); // two signals hit the converter
        let o = propagate(&nl, &inj);
        assert!(o
            .errors
            .iter()
            .any(|e| matches!(e, PropagationError::ConverterOverload { signals: 2, .. })));
    }
}
