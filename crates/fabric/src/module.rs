//! Rectangular WDM multicast switching modules — the building blocks of
//! both the flat crossbars (Figs. 4–7) and the multistage compositions
//! (Fig. 8, realized photonic­ally in `wdm-multistage`).
//!
//! A module is an `a×b` `k`-wavelength multicast switch *without* network
//! ingress/egress components: its inputs are demultiplexers waiting for
//! one fiber edge each, its outputs are multiplexers whose single output
//! slot the caller wires onward. A flat crossbar is a module framed by
//! `InputPort`/`OutputPort` components; a three-stage network is three
//! columns of modules wired mux→demux.

use crate::{Component, Netlist, NodeId};
use std::collections::HashMap;
use wdm_core::{Endpoint, MulticastModel, WavelengthId};

/// Size and model of a rectangular module.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ModuleSpec {
    /// Input ports (fibers).
    pub in_ports: u32,
    /// Output ports (fibers).
    pub out_ports: u32,
    /// Wavelengths per fiber.
    pub wavelengths: u32,
    /// Multicast model of the module (decides gate matrix shape and
    /// converter placement).
    pub model: MulticastModel,
}

impl ModuleSpec {
    /// Crosspoints this module will contain (§2.3.1 generalized to
    /// rectangles): `k·a·b` under MSW, `k²·a·b` otherwise.
    pub fn crosspoints(&self) -> u64 {
        let (a, b, k) = (
            self.in_ports as u64,
            self.out_ports as u64,
            self.wavelengths as u64,
        );
        match self.model {
            MulticastModel::Msw => k * a * b,
            MulticastModel::Msdw | MulticastModel::Maw => k * k * a * b,
        }
    }

    /// Converters this module will contain: `0` / `k·a` (input side,
    /// Fig. 3a) / `k·b` (output side, Fig. 3b).
    pub fn converters(&self) -> u64 {
        let (a, b, k) = (
            self.in_ports as u64,
            self.out_ports as u64,
            self.wavelengths as u64,
        );
        match self.model {
            MulticastModel::Msw => 0,
            MulticastModel::Msdw => k * a,
            MulticastModel::Maw => k * b,
        }
    }
}

/// A built module: node handles into the shared netlist.
#[derive(Debug, Clone)]
pub struct WdmModule {
    /// The spec it was built from.
    pub spec: ModuleSpec,
    /// One demux per input port; wire exactly one fiber edge into each.
    pub input_taps: Vec<NodeId>,
    /// One mux per output port; wire its single output onward.
    pub output_muxes: Vec<NodeId>,
    /// Gate per (input endpoint flat, output endpoint flat). Under MSW
    /// only same-wavelength pairs exist.
    gates: HashMap<(usize, usize), NodeId>,
    /// MSDW: programmable converter per input endpoint.
    input_converters: Vec<NodeId>,
    /// MAW: fixed-target converter per output endpoint.
    output_converters: Vec<NodeId>,
}

impl WdmModule {
    /// Build a module's internals into `netlist`.
    pub fn build_into(netlist: &mut Netlist, spec: ModuleSpec) -> WdmModule {
        let k = spec.wavelengths;
        let input_taps: Vec<NodeId> = (0..spec.in_ports)
            .map(|_| netlist.add(Component::Demux))
            .collect();
        let output_muxes: Vec<NodeId> = (0..spec.out_ports)
            .map(|_| netlist.add(Component::Mux))
            .collect();

        // Combiner per output endpoint, then (MAW) converter, into the mux.
        let mut out_combiners = Vec::with_capacity((spec.out_ports * k) as usize);
        let mut output_converters = Vec::new();
        for p in 0..spec.out_ports {
            for w in 0..k {
                let comb = netlist.add(Component::Combiner);
                match spec.model {
                    MulticastModel::Maw => {
                        let cvt = netlist.add(Component::Converter {
                            target: Some(WavelengthId(w)),
                            broken: false,
                        });
                        netlist.connect_simple(comb, cvt);
                        netlist.connect_simple(cvt, output_muxes[p as usize]);
                        output_converters.push(cvt);
                    }
                    _ => {
                        netlist.connect_simple(comb, output_muxes[p as usize]);
                    }
                }
                out_combiners.push(comb);
            }
        }

        let mut gates = HashMap::new();
        let mut input_converters = Vec::new();
        for in_flat in 0..(spec.in_ports * k) as usize {
            let ep = Endpoint::from_flat_index(in_flat, k);
            let tap = input_taps[ep.port.0 as usize];
            let slot = ep.wavelength.0;
            // Optional input converter (MSDW), then the splitter.
            let spl = netlist.add(Component::Splitter);
            if spec.model == MulticastModel::Msdw {
                let cvt = netlist.add(Component::converter());
                netlist.connect(tap, slot, cvt);
                netlist.connect_simple(cvt, spl);
                input_converters.push(cvt);
            } else {
                netlist.connect(tap, slot, spl);
            }
            // Gates to reachable output endpoints.
            match spec.model {
                MulticastModel::Msw => {
                    for p in 0..spec.out_ports {
                        let out_flat = Endpoint::new(p, ep.wavelength.0).flat_index(k);
                        let gate = netlist.add(Component::gate());
                        netlist.connect_simple(spl, gate);
                        netlist.connect_simple(gate, out_combiners[out_flat]);
                        gates.insert((in_flat, out_flat), gate);
                    }
                }
                MulticastModel::Msdw | MulticastModel::Maw => {
                    let reachable = (spec.out_ports * k) as usize;
                    for (out_flat, &comb) in out_combiners.iter().enumerate().take(reachable) {
                        let gate = netlist.add(Component::gate());
                        netlist.connect_simple(spl, gate);
                        netlist.connect_simple(gate, comb);
                        gates.insert((in_flat, out_flat), gate);
                    }
                }
            }
        }

        WdmModule {
            spec,
            input_taps,
            output_muxes,
            gates,
            input_converters,
            output_converters,
        }
    }

    /// The MSDW input converter of a local input endpoint, if any.
    pub fn input_converter(&self, in_flat: usize) -> Option<NodeId> {
        self.input_converters.get(in_flat).copied()
    }

    /// The MAW output converter of a local output endpoint, if any.
    pub fn output_converter(&self, out_flat: usize) -> Option<NodeId> {
        self.output_converters.get(out_flat).copied()
    }

    /// The gate wiring local input endpoint (flat) to local output
    /// endpoint (flat), if the model has one.
    pub fn gate(&self, in_flat: usize, out_flat: usize) -> Option<NodeId> {
        self.gates.get(&(in_flat, out_flat)).copied()
    }

    /// Enable/disable the gate between two local endpoints.
    ///
    /// Panics if no such gate exists (an MSW module has no cross-
    /// wavelength gates — asking for one is a controller bug).
    pub fn set_gate(&self, netlist: &mut Netlist, in_flat: usize, out_flat: usize, on: bool) {
        let id = self
            .gate(in_flat, out_flat)
            .unwrap_or_else(|| panic!("no gate between {in_flat} and {out_flat}"));
        if let Component::SoaGate { enabled, .. } = netlist.component_mut(id) {
            *enabled = on;
        }
    }

    /// Program (or clear) the MSDW input converter of a local input
    /// endpoint. No-op for other models.
    pub fn program_input_converter(
        &self,
        netlist: &mut Netlist,
        in_flat: usize,
        target: Option<WavelengthId>,
    ) {
        if let Some(&id) = self.input_converters.get(in_flat) {
            if let Component::Converter { target: t, .. } = netlist.component_mut(id) {
                *t = target;
            }
        }
    }

    /// Disable every gate and clear every programmable converter of this
    /// module.
    pub fn reset(&self, netlist: &mut Netlist) {
        for &id in self.gates.values() {
            if let Component::SoaGate { enabled, .. } = netlist.component_mut(id) {
                *enabled = false;
            }
        }
        for &id in &self.input_converters {
            if let Component::Converter { target, .. } = netlist.component_mut(id) {
                *target = None;
            }
        }
    }

    /// Number of gates (== `spec.crosspoints()`; handy in tests).
    pub fn gate_count(&self) -> usize {
        self.gates.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{propagate, Census, Signal};
    use std::collections::BTreeMap;
    use wdm_core::PortId;

    /// Frame a lone module with input/output ports for standalone tests.
    fn framed(spec: ModuleSpec) -> (Netlist, WdmModule) {
        let mut nl = Netlist::new();
        let module = WdmModule::build_into(&mut nl, spec);
        for (p, &tap) in module.input_taps.iter().enumerate() {
            let inp = nl.add(Component::InputPort(PortId(p as u32)));
            nl.connect_simple(inp, tap);
        }
        for (p, &mux) in module.output_muxes.iter().enumerate() {
            let out = nl.add(Component::OutputPort(PortId(p as u32)));
            nl.connect_simple(mux, out);
        }
        (nl, module)
    }

    #[test]
    fn rectangular_census_matches_spec() {
        for model in MulticastModel::ALL {
            let spec = ModuleSpec {
                in_ports: 3,
                out_ports: 5,
                wavelengths: 2,
                model,
            };
            let (nl, module) = framed(spec);
            let census = Census::of(&nl);
            assert_eq!(census.gates, spec.crosspoints(), "{model}");
            assert_eq!(census.converters, spec.converters(), "{model}");
            assert_eq!(module.gate_count() as u64, spec.crosspoints());
            assert!(nl.validate().is_empty(), "{model}: {:?}", nl.validate());
        }
    }

    #[test]
    fn msw_module_has_no_cross_wavelength_gates() {
        let spec = ModuleSpec {
            in_ports: 2,
            out_ports: 2,
            wavelengths: 2,
            model: MulticastModel::Msw,
        };
        let (_, module) = framed(spec);
        // in (p0,λ0)=0 → out (p1,λ1)=3 must not exist.
        assert!(module.gate(0, 3).is_none());
        assert!(module.gate(0, 2).is_some()); // same λ
    }

    #[test]
    fn multicast_through_rect_module() {
        let spec = ModuleSpec {
            in_ports: 2,
            out_ports: 4,
            wavelengths: 2,
            model: MulticastModel::Msw,
        };
        let (mut nl, module) = framed(spec);
        // (p0, λ1) multicast to output ports 0, 2, 3 on λ1.
        let in_flat = Endpoint::new(0, 1).flat_index(2);
        for p in [0u32, 2, 3] {
            let out_flat = Endpoint::new(p, 1).flat_index(2);
            module.set_gate(&mut nl, in_flat, out_flat, true);
        }
        let mut inj = BTreeMap::new();
        inj.insert(
            0u32,
            vec![Signal {
                origin: Endpoint::new(0, 1),
                wavelength: WavelengthId(1),
            }],
        );
        let out = propagate::propagate(&nl, &inj);
        assert!(out.is_clean());
        for p in [0u32, 2, 3] {
            assert_eq!(out.received_at(Endpoint::new(p, 1)).len(), 1, "port {p}");
        }
        assert!(out.received_at(Endpoint::new(1, 1)).is_empty());
    }

    #[test]
    fn msdw_module_converts_at_input() {
        let spec = ModuleSpec {
            in_ports: 1,
            out_ports: 2,
            wavelengths: 2,
            model: MulticastModel::Msdw,
        };
        let (mut nl, module) = framed(spec);
        let in_flat = Endpoint::new(0, 0).flat_index(2);
        module.program_input_converter(&mut nl, in_flat, Some(WavelengthId(1)));
        for p in 0..2u32 {
            module.set_gate(&mut nl, in_flat, Endpoint::new(p, 1).flat_index(2), true);
        }
        let mut inj = BTreeMap::new();
        inj.insert(
            0u32,
            vec![Signal {
                origin: Endpoint::new(0, 0),
                wavelength: WavelengthId(0),
            }],
        );
        let out = propagate::propagate(&nl, &inj);
        assert!(out.is_clean());
        assert_eq!(out.received_at(Endpoint::new(0, 1)).len(), 1);
        assert_eq!(out.received_at(Endpoint::new(1, 1)).len(), 1);
    }

    #[test]
    fn maw_module_converts_per_output() {
        let spec = ModuleSpec {
            in_ports: 1,
            out_ports: 2,
            wavelengths: 2,
            model: MulticastModel::Maw,
        };
        let (mut nl, module) = framed(spec);
        let in_flat = Endpoint::new(0, 0).flat_index(2);
        // Deliver to (p0, λ2) and (p1, λ1) from a λ1 source.
        module.set_gate(&mut nl, in_flat, Endpoint::new(0, 1).flat_index(2), true);
        module.set_gate(&mut nl, in_flat, Endpoint::new(1, 0).flat_index(2), true);
        let mut inj = BTreeMap::new();
        inj.insert(
            0u32,
            vec![Signal {
                origin: Endpoint::new(0, 0),
                wavelength: WavelengthId(0),
            }],
        );
        let out = propagate::propagate(&nl, &inj);
        assert!(out.is_clean());
        assert_eq!(out.received_at(Endpoint::new(0, 1)).len(), 1);
        assert_eq!(out.received_at(Endpoint::new(1, 0)).len(), 1);
    }

    #[test]
    fn reset_clears_state() {
        let spec = ModuleSpec {
            in_ports: 2,
            out_ports: 2,
            wavelengths: 1,
            model: MulticastModel::Msw,
        };
        let (mut nl, module) = framed(spec);
        module.set_gate(&mut nl, 0, 1, true);
        module.reset(&mut nl);
        let mut inj = BTreeMap::new();
        inj.insert(
            0u32,
            vec![Signal {
                origin: Endpoint::new(0, 0),
                wavelength: WavelengthId(0),
            }],
        );
        let out = propagate::propagate(&nl, &inj);
        assert_eq!(out.lit_outputs().count(), 0);
    }

    #[test]
    #[should_panic(expected = "no gate")]
    fn set_missing_gate_panics() {
        let spec = ModuleSpec {
            in_ports: 2,
            out_ports: 2,
            wavelengths: 2,
            model: MulticastModel::Msw,
        };
        let (mut nl, module) = framed(spec);
        module.set_gate(&mut nl, 0, 3, true); // cross-wavelength under MSW
    }
}
