//! Crossbar-based nonblocking WDM multicast switches — the constructions
//! of Figs. 4–7 — plus their routing controller.
//!
//! A crossbar is one square [`WdmModule`] framed by network
//! [`Component::InputPort`]/[`Component::OutputPort`] components.

use crate::{
    propagate, Census, Component, FabricError, ModuleSpec, Netlist, NodeId, PowerBudget,
    PowerParams, PropagationOutcome, Signal, WdmModule,
};
use std::collections::BTreeMap;
use wdm_core::{Endpoint, MulticastAssignment, MulticastModel, NetworkConfig};

/// A crossbar-based `N×N` `k`-wavelength WDM multicast switch under one of
/// the three multicast models.
///
/// * **MSW** (Figs. 4–5): `k` parallel `N×N` splitter/combiner space
///   planes behind wavelength demux/mux — `kN²` gates, no converters.
/// * **MSDW** (Fig. 6): a converter on each input wavelength (Fig. 3a),
///   then a full `Nk×Nk` gate matrix — `k²N²` gates, `Nk` converters.
/// * **MAW** (Fig. 7): a full `Nk×Nk` gate matrix with a converter on each
///   *output* wavelength (Fig. 3b) — `k²N²` gates, `Nk` converters.
#[derive(Debug, Clone)]
pub struct WdmCrossbar {
    net: NetworkConfig,
    netlist: Netlist,
    module: WdmModule,
}

impl WdmCrossbar {
    /// Build the crossbar for `net` under `model`.
    pub fn build(net: NetworkConfig, model: MulticastModel) -> Self {
        let mut netlist = Netlist::new();
        let module = WdmModule::build_into(
            &mut netlist,
            ModuleSpec {
                in_ports: net.ports,
                out_ports: net.ports,
                wavelengths: net.wavelengths,
                model,
            },
        );
        for p in net.port_ids() {
            let inp = netlist.add(Component::InputPort(p));
            netlist.connect_simple(inp, module.input_taps[p.0 as usize]);
            let out = netlist.add(Component::OutputPort(p));
            netlist.connect_simple(module.output_muxes[p.0 as usize], out);
        }
        let xbar = WdmCrossbar {
            net,
            netlist,
            module,
        };
        debug_assert!(
            xbar.netlist.validate().is_empty(),
            "{:?}",
            xbar.netlist.validate()
        );
        xbar
    }

    /// The network frame.
    pub fn network(&self) -> NetworkConfig {
        self.net
    }

    /// The multicast model the fabric was built for.
    pub fn model(&self) -> MulticastModel {
        self.module.spec.model
    }

    /// The underlying device graph.
    pub fn netlist(&self) -> &Netlist {
        &self.netlist
    }

    /// Mutable access for session-level incremental control.
    pub(crate) fn netlist_mut(&mut self) -> &mut Netlist {
        &mut self.netlist
    }

    /// Program one MSDW input converter by flat input-endpoint index.
    pub(crate) fn program_input_converter(
        &mut self,
        in_flat: usize,
        target: Option<wdm_core::WavelengthId>,
    ) {
        self.module
            .program_input_converter(&mut self.netlist, in_flat, target);
    }

    /// Shine the sources of `asg` through the fabric **as currently
    /// configured** — no gate or converter is touched. This is the
    /// read-only propagation used by incremental sessions.
    pub fn propagate_current(&self, asg: &MulticastAssignment) -> PropagationOutcome {
        let mut injections: BTreeMap<u32, Vec<Signal>> = BTreeMap::new();
        for conn in asg.connections() {
            let src = conn.source();
            injections.entry(src.port.0).or_default().push(Signal {
                origin: src,
                wavelength: src.wavelength,
            });
        }
        propagate::propagate(&self.netlist, &injections)
    }

    /// Component census — crosspoints and converters for Table 1.
    pub fn census(&self) -> Census {
        Census::of(&self.netlist)
    }

    /// Worst-case optical power budget of the fabric.
    pub fn power_budget(&self, params: &PowerParams) -> PowerBudget {
        PowerBudget::analyze(&self.netlist, params)
    }

    /// The gate wiring input endpoint `src` to output endpoint `dst`, if
    /// the fabric has one (under MSW only same-wavelength pairs do).
    pub fn gate_between(&self, src: Endpoint, dst: Endpoint) -> Option<NodeId> {
        let k = self.net.wavelengths;
        self.module.gate(src.flat_index(k), dst.flat_index(k))
    }

    /// Fault injection: permanently break the gate between `src` and
    /// `dst`. Returns `false` if no such gate exists.
    pub fn break_gate(&mut self, src: Endpoint, dst: Endpoint) -> bool {
        match self.gate_between(src, dst) {
            Some(id) => {
                if let Component::SoaGate { broken, .. } = self.netlist.component_mut(id) {
                    *broken = true;
                }
                true
            }
            None => false,
        }
    }

    /// Fault injection: break the converter serving input endpoint `ep`
    /// (MSDW) or output endpoint `ep` (MAW). Returns `false` if the model
    /// has no converter there.
    pub fn break_converter(&mut self, ep: Endpoint) -> bool {
        let k = self.net.wavelengths;
        let id = match self.model() {
            MulticastModel::Msw => None,
            MulticastModel::Msdw => self.module.input_converter(ep.flat_index(k)),
            MulticastModel::Maw => self.module.output_converter(ep.flat_index(k)),
        };
        match id {
            Some(id) => {
                if let Component::Converter { broken, .. } = self.netlist.component_mut(id) {
                    *broken = true;
                }
                true
            }
            None => false,
        }
    }

    /// Configure gates/converters for `asg`, propagate light, and return
    /// the outcome.
    ///
    /// Errors on model/size mismatch or physical conflicts; delivery
    /// completeness is the caller's check (see
    /// [`PropagationOutcome::delivered_exactly`]) so fault-injection
    /// experiments can observe partial delivery.
    pub fn route(&mut self, asg: &MulticastAssignment) -> Result<PropagationOutcome, FabricError> {
        if asg.network() != self.net {
            return Err(FabricError::SizeMismatch);
        }
        if !self.model().includes(asg.model()) {
            return Err(FabricError::ModelMismatch {
                fabric: self.model(),
                assignment: asg.model(),
            });
        }
        self.module.reset(&mut self.netlist);
        let k = self.net.wavelengths;

        for conn in asg.connections() {
            let src = conn.source();
            if self.model() == MulticastModel::Msdw {
                // All destinations share one wavelength under MSDW;
                // program the per-input converter to it (Fig. 3a).
                let target = conn.destinations()[0].wavelength;
                self.module.program_input_converter(
                    &mut self.netlist,
                    src.flat_index(k),
                    Some(target),
                );
            }
            for &dst in conn.destinations() {
                self.module.set_gate(
                    &mut self.netlist,
                    src.flat_index(k),
                    dst.flat_index(k),
                    true,
                );
            }
        }

        let mut injections: BTreeMap<u32, Vec<Signal>> = BTreeMap::new();
        for conn in asg.connections() {
            let src = conn.source();
            injections.entry(src.port.0).or_default().push(Signal {
                origin: src,
                wavelength: src.wavelength,
            });
        }

        let outcome = propagate::propagate(&self.netlist, &injections);
        if !outcome.is_clean() {
            return Err(FabricError::Propagation(outcome.errors));
        }
        Ok(outcome)
    }

    /// [`route`](Self::route) plus an exact-delivery check.
    pub fn route_verified(
        &mut self,
        asg: &MulticastAssignment,
    ) -> Result<PropagationOutcome, FabricError> {
        let outcome = self.route(asg)?;
        for conn in asg.connections() {
            for &d in conn.destinations() {
                let got = outcome.received_at(d);
                let want = Signal {
                    origin: conn.source(),
                    wavelength: d.wavelength,
                };
                if got != [want] {
                    return Err(FabricError::DeliveryFailure { endpoint: d });
                }
            }
        }
        if !outcome.delivered_exactly(asg) {
            // Spurious light on an endpoint no connection claims.
            let spurious = outcome
                .lit_outputs()
                .find(|ep| asg.output_user(*ep).is_none())
                .expect("delivered_exactly failed, so a spurious output exists");
            return Err(FabricError::DeliveryFailure { endpoint: spurious });
        }
        Ok(outcome)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wdm_core::{capacity, MulticastConnection};

    fn conn(src: (u32, u32), dests: &[(u32, u32)]) -> MulticastConnection {
        MulticastConnection::new(
            Endpoint::new(src.0, src.1),
            dests.iter().map(|&(p, w)| Endpoint::new(p, w)),
        )
        .unwrap()
    }

    #[test]
    fn census_matches_table1_closed_forms() {
        for (n, k) in [(2u32, 1u32), (2, 2), (3, 2), (4, 3)] {
            let net = NetworkConfig::new(n, k);
            for model in MulticastModel::ALL {
                let xbar = WdmCrossbar::build(net, model);
                let c = xbar.census();
                assert_eq!(
                    c.gates,
                    capacity::crossbar_crosspoints(net, model),
                    "gates {model} N={n} k={k}"
                );
                assert_eq!(
                    c.converters,
                    capacity::crossbar_converters(net, model),
                    "converters {model} N={n} k={k}"
                );
            }
        }
    }

    #[test]
    fn paper_example_n3_k2() {
        // Figs. 6–7 use N=3, k=2: 36 crosspoints and 6 converters.
        let net = NetworkConfig::new(3, 2);
        for model in [MulticastModel::Msdw, MulticastModel::Maw] {
            let c = WdmCrossbar::build(net, model).census();
            assert_eq!(c.gates, 36);
            assert_eq!(c.converters, 6);
        }
        let c = WdmCrossbar::build(net, MulticastModel::Msw).census();
        assert_eq!(c.gates, 18);
        assert_eq!(c.converters, 0);
    }

    #[test]
    fn netlists_are_structurally_valid() {
        let net = NetworkConfig::new(3, 2);
        for model in MulticastModel::ALL {
            let xbar = WdmCrossbar::build(net, model);
            assert!(xbar.netlist().validate().is_empty());
        }
    }

    #[test]
    fn msw_routes_same_wavelength_multicast() {
        let net = NetworkConfig::new(3, 2);
        let mut xbar = WdmCrossbar::build(net, MulticastModel::Msw);
        let mut asg = MulticastAssignment::new(net, MulticastModel::Msw);
        asg.add(conn((0, 1), &[(0, 1), (1, 1), (2, 1)])).unwrap();
        asg.add(conn((1, 0), &[(0, 0), (2, 0)])).unwrap();
        let out = xbar.route_verified(&asg).unwrap();
        assert!(out.delivered_exactly(&asg));
    }

    #[test]
    fn msdw_converts_source_wavelength() {
        let net = NetworkConfig::new(3, 2);
        let mut xbar = WdmCrossbar::build(net, MulticastModel::Msdw);
        let mut asg = MulticastAssignment::new(net, MulticastModel::Msdw);
        // Source on λ1, all destinations on λ2.
        asg.add(conn((0, 0), &[(0, 1), (1, 1), (2, 1)])).unwrap();
        let out = xbar.route_verified(&asg).unwrap();
        assert!(out.delivered_exactly(&asg));
    }

    #[test]
    fn maw_mixes_wavelengths_per_destination() {
        let net = NetworkConfig::new(3, 2);
        let mut xbar = WdmCrossbar::build(net, MulticastModel::Maw);
        let mut asg = MulticastAssignment::new(net, MulticastModel::Maw);
        asg.add(conn((0, 0), &[(0, 1), (1, 0), (2, 1)])).unwrap();
        asg.add(conn((0, 1), &[(1, 1), (2, 0)])).unwrap();
        let out = xbar.route_verified(&asg).unwrap();
        assert!(out.delivered_exactly(&asg));
    }

    #[test]
    fn stronger_fabric_routes_weaker_assignment() {
        let net = NetworkConfig::new(3, 2);
        let mut xbar = WdmCrossbar::build(net, MulticastModel::Maw);
        let mut asg = MulticastAssignment::new(net, MulticastModel::Msw);
        asg.add(conn((0, 0), &[(1, 0), (2, 0)])).unwrap();
        assert!(xbar.route_verified(&asg).is_ok());
    }

    #[test]
    fn weaker_fabric_rejects_stronger_assignment() {
        let net = NetworkConfig::new(3, 2);
        let mut xbar = WdmCrossbar::build(net, MulticastModel::Msw);
        let asg = MulticastAssignment::new(net, MulticastModel::Maw);
        let err = xbar.route(&asg).unwrap_err();
        assert!(matches!(err, FabricError::ModelMismatch { .. }));
    }

    #[test]
    fn size_mismatch_rejected() {
        let mut xbar = WdmCrossbar::build(NetworkConfig::new(3, 2), MulticastModel::Msw);
        let asg = MulticastAssignment::new(NetworkConfig::new(4, 2), MulticastModel::Msw);
        assert!(matches!(xbar.route(&asg), Err(FabricError::SizeMismatch)));
    }

    #[test]
    fn broken_gate_causes_delivery_failure() {
        let net = NetworkConfig::new(3, 2);
        let mut xbar = WdmCrossbar::build(net, MulticastModel::Msw);
        assert!(xbar.break_gate(Endpoint::new(0, 0), Endpoint::new(1, 0)));
        let mut asg = MulticastAssignment::new(net, MulticastModel::Msw);
        asg.add(conn((0, 0), &[(1, 0), (2, 0)])).unwrap();
        let err = xbar.route_verified(&asg).unwrap_err();
        assert_eq!(
            err,
            FabricError::DeliveryFailure {
                endpoint: Endpoint::new(1, 0)
            }
        );
    }

    #[test]
    fn broken_converter_causes_delivery_failure() {
        let net = NetworkConfig::new(3, 2);
        let mut xbar = WdmCrossbar::build(net, MulticastModel::Msdw);
        assert!(xbar.break_converter(Endpoint::new(0, 0)));
        let mut asg = MulticastAssignment::new(net, MulticastModel::Msdw);
        asg.add(conn((0, 0), &[(1, 1), (2, 1)])).unwrap();
        // The broken converter is transparent, so λ1 light arrives where λ2
        // was expected → delivery failure.
        assert!(matches!(
            xbar.route_verified(&asg),
            Err(FabricError::DeliveryFailure { .. })
        ));
    }

    #[test]
    fn broken_maw_output_converter_detected() {
        let net = NetworkConfig::new(3, 2);
        let mut xbar = WdmCrossbar::build(net, MulticastModel::Maw);
        assert!(xbar.break_converter(Endpoint::new(1, 1)));
        let mut asg = MulticastAssignment::new(net, MulticastModel::Maw);
        // Cross-wavelength delivery through the broken output converter.
        asg.add(conn((0, 0), &[(1, 1)])).unwrap();
        assert!(matches!(
            xbar.route_verified(&asg),
            Err(FabricError::DeliveryFailure { .. })
        ));
    }

    #[test]
    fn msw_fabric_has_no_converter_to_break() {
        let net = NetworkConfig::new(2, 2);
        let mut xbar = WdmCrossbar::build(net, MulticastModel::Msw);
        assert!(!xbar.break_converter(Endpoint::new(0, 0)));
    }

    #[test]
    fn route_is_idempotent_across_reconfigurations() {
        let net = NetworkConfig::new(3, 2);
        let mut xbar = WdmCrossbar::build(net, MulticastModel::Maw);
        let mut asg1 = MulticastAssignment::new(net, MulticastModel::Maw);
        asg1.add(conn((0, 0), &[(0, 0), (1, 0), (2, 0)])).unwrap();
        let mut asg2 = MulticastAssignment::new(net, MulticastModel::Maw);
        asg2.add(conn((2, 1), &[(0, 1)])).unwrap();
        // Route asg1, then asg2; stale gates from asg1 must not leak.
        xbar.route_verified(&asg1).unwrap();
        let out2 = xbar.route_verified(&asg2).unwrap();
        assert!(out2.delivered_exactly(&asg2));
        assert_eq!(out2.lit_outputs().count(), 1);
    }

    #[test]
    fn power_budget_scales_with_size() {
        let params = PowerParams::default();
        let small =
            WdmCrossbar::build(NetworkConfig::new(2, 2), MulticastModel::Maw).power_budget(&params);
        let large =
            WdmCrossbar::build(NetworkConfig::new(8, 2), MulticastModel::Maw).power_budget(&params);
        // Bigger splitters/combiners → more passive loss.
        assert!(large.worst_path_loss_db > small.worst_path_loss_db);
    }
}
