//! Photonic components — the node types of a fabric netlist.

use core::fmt;
use serde::{Deserialize, Serialize};
use wdm_core::{PortId, WavelengthId};

/// Index of a component in a [`crate::Netlist`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub usize);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// A photonic component instance.
///
/// The variants mirror the devices the paper builds its crossbars from
/// (§2.1, §2.3): passive splitters/combiners and mux/demux, active SOA
/// gates (the "crosspoints"), and wavelength converters.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Component {
    /// Network ingress for one input port's fiber (carries up to `k`
    /// wavelength signals).
    InputPort(PortId),
    /// Wavelength demultiplexer: output slot `w` carries only wavelength
    /// `λ_w`.
    Demux,
    /// Passive light splitter: every output carries a copy of the input.
    Splitter,
    /// Semiconductor-optical-amplifier gate: passes light when enabled,
    /// blocks it when disabled. One of these is one *crosspoint* in the
    /// paper's cost metric.
    SoaGate {
        /// Whether light may pass.
        enabled: bool,
        /// Fault injection: a broken gate never passes light regardless of
        /// `enabled`.
        broken: bool,
    },
    /// All-optical wavelength converter. When `target` is set, any signal
    /// passing through leaves on that wavelength; when unset, the device
    /// is transparent.
    Converter {
        /// Programmed output wavelength.
        target: Option<WavelengthId>,
        /// Fault injection: a broken converter is stuck transparent.
        broken: bool,
    },
    /// Passive combiner: merges its inputs onto one fiber. Physically
    /// valid only if at most one input is lit at a time (§2.1) — the
    /// propagation engine reports a conflict otherwise.
    Combiner,
    /// Wavelength multiplexer: merges inputs carrying *distinct*
    /// wavelengths onto one fiber.
    Mux,
    /// Network egress for one output port's fiber.
    OutputPort(PortId),
}

/// Discriminant-only view of [`Component`], used for the census.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ComponentKind {
    /// See [`Component::InputPort`].
    InputPort,
    /// See [`Component::Demux`].
    Demux,
    /// See [`Component::Splitter`].
    Splitter,
    /// See [`Component::SoaGate`].
    SoaGate,
    /// See [`Component::Converter`].
    Converter,
    /// See [`Component::Combiner`].
    Combiner,
    /// See [`Component::Mux`].
    Mux,
    /// See [`Component::OutputPort`].
    OutputPort,
}

impl Component {
    /// A fresh (disabled, healthy) SOA gate.
    pub fn gate() -> Self {
        Component::SoaGate {
            enabled: false,
            broken: false,
        }
    }

    /// A fresh (transparent, healthy) wavelength converter.
    pub fn converter() -> Self {
        Component::Converter {
            target: None,
            broken: false,
        }
    }

    /// The kind discriminant.
    pub fn kind(&self) -> ComponentKind {
        match self {
            Component::InputPort(_) => ComponentKind::InputPort,
            Component::Demux => ComponentKind::Demux,
            Component::Splitter => ComponentKind::Splitter,
            Component::SoaGate { .. } => ComponentKind::SoaGate,
            Component::Converter { .. } => ComponentKind::Converter,
            Component::Combiner => ComponentKind::Combiner,
            Component::Mux => ComponentKind::Mux,
            Component::OutputPort(_) => ComponentKind::OutputPort,
        }
    }

    /// `true` for devices that originate signals (no in-edges expected).
    pub fn is_source(&self) -> bool {
        matches!(self, Component::InputPort(_))
    }

    /// `true` for devices that terminate signals (no out-edges expected).
    pub fn is_sink(&self) -> bool {
        matches!(self, Component::OutputPort(_))
    }
}

impl fmt::Display for ComponentKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ComponentKind::InputPort => "input",
            ComponentKind::Demux => "demux",
            ComponentKind::Splitter => "splitter",
            ComponentKind::SoaGate => "gate",
            ComponentKind::Converter => "converter",
            ComponentKind::Combiner => "combiner",
            ComponentKind::Mux => "mux",
            ComponentKind::OutputPort => "output",
        };
        f.pad(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_start_safe() {
        assert_eq!(
            Component::gate(),
            Component::SoaGate {
                enabled: false,
                broken: false
            }
        );
        assert_eq!(
            Component::converter(),
            Component::Converter {
                target: None,
                broken: false
            }
        );
    }

    #[test]
    fn kinds_roundtrip() {
        let all = [
            Component::InputPort(PortId(0)),
            Component::Demux,
            Component::Splitter,
            Component::gate(),
            Component::converter(),
            Component::Combiner,
            Component::Mux,
            Component::OutputPort(PortId(0)),
        ];
        let kinds: Vec<ComponentKind> = all.iter().map(|c| c.kind()).collect();
        let unique: std::collections::HashSet<_> = kinds.iter().collect();
        assert_eq!(unique.len(), all.len());
    }

    #[test]
    fn source_sink_classification() {
        assert!(Component::InputPort(PortId(1)).is_source());
        assert!(!Component::InputPort(PortId(1)).is_sink());
        assert!(Component::OutputPort(PortId(1)).is_sink());
        assert!(!Component::Splitter.is_source());
        assert!(!Component::Splitter.is_sink());
    }
}
