//! Incremental crossbar control: connect and disconnect one multicast at
//! a time without reprogramming the whole fabric.
//!
//! [`WdmCrossbar::route`] reconfigures every gate for a complete
//! assignment — fine for experiments, wasteful for a live switch where
//! connections come and go. A [`CrossbarSession`] owns a crossbar plus a
//! live assignment and touches only the gates and converters of the
//! connection being added or removed, exactly like a real switch
//! controller. Batch and incremental configuration are equivalence-tested
//! against each other.

use crate::{Component, FabricError, PropagationOutcome, WdmCrossbar};
use wdm_core::{
    AssignmentError, Endpoint, Fault, FaultSet, MulticastAssignment, MulticastConnection,
    MulticastModel, NetworkConfig,
};

/// A crossbar with live, incrementally-managed connections.
#[derive(Debug, Clone)]
pub struct CrossbarSession {
    xbar: WdmCrossbar,
    live: MulticastAssignment,
    /// Control-plane faults the admission check consults. For a
    /// single-stage crossbar only port and converter-bank faults bite;
    /// middle/link faults are accepted (the [`FaultSet`] is shared
    /// vocabulary across stages) but match nothing here.
    faults: FaultSet,
}

impl CrossbarSession {
    /// Open a session on a freshly built crossbar.
    pub fn new(net: NetworkConfig, model: MulticastModel) -> Self {
        CrossbarSession {
            xbar: WdmCrossbar::build(net, model),
            live: MulticastAssignment::new(net, model),
            faults: FaultSet::new(),
        }
    }

    /// The failed components currently on record.
    pub fn faults(&self) -> &FaultSet {
        &self.faults
    }

    /// Mark `fault` failed (admission will refuse traffic that needs the
    /// component). Live connections are *not* torn down — use
    /// [`Self::connections_through`] to find the traffic to heal. Returns
    /// `true` if the component was healthy before.
    pub fn inject_fault(&mut self, fault: Fault) -> bool {
        self.faults.fail(fault)
    }

    /// Mark `fault` repaired. Returns `true` if it was failed before.
    pub fn repair_fault(&mut self, fault: Fault) -> bool {
        self.faults.repair(fault)
    }

    /// Live connections that depend on `fault`.
    pub fn connections_through(&self, fault: &Fault) -> Vec<Endpoint> {
        self.live
            .connections()
            .filter(|c| match *fault {
                Fault::Port(p) => {
                    c.source().port.0 == p || c.destinations().iter().any(|d| d.port.0 == p)
                }
                // MSDW programs the converter at the *input* of source
                // port p whenever the group wavelength differs.
                Fault::InputConverters(p) => {
                    self.xbar.model() == MulticastModel::Msdw
                        && c.source().port.0 == p
                        && c.destinations()[0].wavelength != c.source().wavelength
                }
                // MAW converts at each output whose λ differs from the
                // source's.
                Fault::OutputConverters(p) => {
                    self.xbar.model() == MulticastModel::Maw
                        && c.destinations()
                            .iter()
                            .any(|d| d.port.0 == p && d.wavelength != c.source().wavelength)
                }
                _ => false,
            })
            .map(|c| c.source())
            .collect()
    }

    /// A fault that makes `conn` inadmissible, if any.
    fn component_down(&self, conn: &MulticastConnection) -> Option<Fault> {
        if self.faults.is_empty() {
            return None;
        }
        let src = conn.source();
        if self.faults.port_down(src.port.0) {
            return Some(Fault::Port(src.port.0));
        }
        for &d in conn.destinations() {
            if self.faults.port_down(d.port.0) {
                return Some(Fault::Port(d.port.0));
            }
        }
        match self.xbar.model() {
            MulticastModel::Msw => None,
            MulticastModel::Msdw => {
                // Needs the source-side converter iff the group λ differs.
                (conn.destinations()[0].wavelength != src.wavelength
                    && self.faults.input_converters_down(src.port.0))
                .then_some(Fault::InputConverters(src.port.0))
            }
            MulticastModel::Maw => conn
                .destinations()
                .iter()
                .find(|d| {
                    d.wavelength != src.wavelength && self.faults.output_converters_down(d.port.0)
                })
                .map(|d| Fault::OutputConverters(d.port.0)),
        }
    }

    /// The network frame.
    pub fn network(&self) -> NetworkConfig {
        self.live.network()
    }

    /// The live assignment.
    pub fn assignment(&self) -> &MulticastAssignment {
        &self.live
    }

    /// Borrow the underlying crossbar (census, power, fault injection).
    pub fn crossbar(&self) -> &WdmCrossbar {
        &self.xbar
    }

    /// Add one connection: checks endpoint conflicts, then enables only
    /// this connection's gates (and programs its converter under MSDW).
    ///
    /// Borrows the request so rejected admissions (the hot path under
    /// contention) never copy the destination set; the single clone
    /// happens at the commit point.
    pub fn connect(&mut self, conn: &MulticastConnection) -> Result<(), AssignmentError> {
        self.live.check(conn)?;
        if let Some(fault) = self.component_down(conn) {
            return Err(AssignmentError::ComponentDown(fault));
        }
        let k = self.network().wavelengths;
        if self.xbar.model() == MulticastModel::Msdw {
            let target = conn.destinations()[0].wavelength;
            let src_flat = conn.source().flat_index(k);
            self.xbar.program_converter_raw(src_flat, Some(target));
        }
        for &dst in conn.destinations() {
            let gate = self
                .xbar
                .gate_between(conn.source(), dst)
                .expect("model-legal connection has a gate path");
            self.xbar.set_gate_raw(gate, true);
        }
        self.live.add(conn.clone()).expect("checked above");
        Ok(())
    }

    /// Remove the connection sourced at `src`, disabling only its gates.
    pub fn disconnect(&mut self, src: Endpoint) -> Result<MulticastConnection, AssignmentError> {
        let conn = self.live.remove(src)?;
        let k = self.network().wavelengths;
        for &dst in conn.destinations() {
            let gate = self
                .xbar
                .gate_between(src, dst)
                .expect("routed connection had a gate path");
            self.xbar.set_gate_raw(gate, false);
        }
        if self.xbar.model() == MulticastModel::Msdw {
            self.xbar.program_converter_raw(src.flat_index(k), None);
        }
        Ok(conn)
    }

    /// Shine light through the current configuration and verify exact
    /// delivery of the live assignment.
    pub fn verify(&self) -> Result<PropagationOutcome, FabricError> {
        let outcome = self.xbar.propagate_current(&self.live);
        if !outcome.is_clean() {
            return Err(FabricError::Propagation(outcome.errors.clone()));
        }
        if !outcome.delivered_exactly(&self.live) {
            let bad = self
                .live
                .connections()
                .flat_map(|c| c.destinations().iter().copied())
                .find(|&d| outcome.received_at(d).len() != 1)
                .or_else(|| {
                    outcome
                        .lit_outputs()
                        .find(|ep| self.live.output_user(*ep).is_none())
                })
                .expect("deviating endpoint exists");
            return Err(FabricError::DeliveryFailure { endpoint: bad });
        }
        Ok(outcome)
    }
}

impl WdmCrossbar {
    /// Toggle one gate by node id (session-internal; does not touch other
    /// state).
    pub(crate) fn set_gate_raw(&mut self, gate: crate::NodeId, on: bool) {
        if let Component::SoaGate { enabled, .. } = self.netlist_mut().component_mut(gate) {
            *enabled = on;
        }
    }

    /// Program one MSDW input converter by flat index (session-internal).
    pub(crate) fn program_converter_raw(
        &mut self,
        in_flat: usize,
        target: Option<wdm_core::WavelengthId>,
    ) {
        self.program_input_converter(in_flat, target);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn conn(src: (u32, u32), dests: &[(u32, u32)]) -> MulticastConnection {
        MulticastConnection::new(
            Endpoint::new(src.0, src.1),
            dests.iter().map(|&(p, w)| Endpoint::new(p, w)),
        )
        .unwrap()
    }

    #[test]
    fn incremental_connect_disconnect() {
        let net = NetworkConfig::new(4, 2);
        let mut s = CrossbarSession::new(net, MulticastModel::Msw);
        s.connect(&conn((0, 0), &[(1, 0), (2, 0)])).unwrap();
        s.verify().unwrap();
        s.connect(&conn((1, 1), &[(0, 1), (3, 1)])).unwrap();
        s.verify().unwrap();
        s.disconnect(Endpoint::new(0, 0)).unwrap();
        let outcome = s.verify().unwrap();
        assert_eq!(outcome.lit_outputs().count(), 2);
    }

    #[test]
    fn conflicts_rejected_without_touching_hardware() {
        let net = NetworkConfig::new(3, 1);
        let mut s = CrossbarSession::new(net, MulticastModel::Msw);
        s.connect(&conn((0, 0), &[(1, 0)])).unwrap();
        let err = s.connect(&conn((1, 0), &[(1, 0)])).unwrap_err();
        assert!(matches!(err, AssignmentError::DestinationBusy(_)));
        // Hardware still verifies the original connection only.
        s.verify().unwrap();
    }

    #[test]
    fn msdw_converter_is_programmed_and_cleared() {
        let net = NetworkConfig::new(3, 2);
        let mut s = CrossbarSession::new(net, MulticastModel::Msdw);
        s.connect(&conn((0, 0), &[(1, 1), (2, 1)])).unwrap();
        s.verify().unwrap();
        s.disconnect(Endpoint::new(0, 0)).unwrap();
        // The same source can now host a λ1-destination connection —
        // which would fail had the converter stayed programmed to λ2.
        s.connect(&conn((0, 0), &[(1, 0)])).unwrap();
        s.verify().unwrap();
    }

    #[test]
    fn dead_port_refused_until_repaired() {
        let net = NetworkConfig::new(4, 1);
        let mut s = CrossbarSession::new(net, MulticastModel::Msw);
        s.inject_fault(Fault::Port(2));
        let err = s.connect(&conn((0, 0), &[(2, 0)])).unwrap_err();
        assert!(matches!(
            err,
            AssignmentError::ComponentDown(Fault::Port(2))
        ));
        let err = s.connect(&conn((2, 0), &[(3, 0)])).unwrap_err();
        assert!(matches!(
            err,
            AssignmentError::ComponentDown(Fault::Port(2))
        ));
        // Unaffected traffic still admits and verifies.
        s.connect(&conn((0, 0), &[(1, 0)])).unwrap();
        s.verify().unwrap();
        assert!(s.repair_fault(Fault::Port(2)));
        s.connect(&conn((2, 0), &[(3, 0)])).unwrap();
        s.verify().unwrap();
    }

    #[test]
    fn msdw_dark_converter_pins_group_wavelength() {
        let net = NetworkConfig::new(3, 2);
        let mut s = CrossbarSession::new(net, MulticastModel::Msdw);
        s.inject_fault(Fault::InputConverters(0));
        // A converted group needs the dark bank — refused.
        let err = s.connect(&conn((0, 0), &[(1, 1), (2, 1)])).unwrap_err();
        assert!(matches!(
            err,
            AssignmentError::ComponentDown(Fault::InputConverters(0))
        ));
        // Same-wavelength group passes through without conversion.
        s.connect(&conn((0, 0), &[(1, 0), (2, 0)])).unwrap();
        s.verify().unwrap();
    }

    #[test]
    fn maw_dark_output_converter_blocks_converted_leg_only() {
        let net = NetworkConfig::new(3, 2);
        let mut s = CrossbarSession::new(net, MulticastModel::Maw);
        s.inject_fault(Fault::OutputConverters(1));
        let err = s.connect(&conn((0, 0), &[(1, 1)])).unwrap_err();
        assert!(matches!(
            err,
            AssignmentError::ComponentDown(Fault::OutputConverters(1))
        ));
        // Identity delivery to port 1 and conversion at port 2 still work.
        s.connect(&conn((0, 0), &[(1, 0), (2, 1)])).unwrap();
        s.verify().unwrap();
    }

    #[test]
    fn connections_through_tracks_dependent_traffic() {
        let net = NetworkConfig::new(4, 2);
        let mut s = CrossbarSession::new(net, MulticastModel::Msdw);
        s.connect(&conn((0, 0), &[(1, 1), (2, 1)])).unwrap(); // converted
        s.connect(&conn((1, 0), &[(3, 0)])).unwrap(); // identity
        assert_eq!(
            s.connections_through(&Fault::InputConverters(0)),
            vec![Endpoint::new(0, 0)]
        );
        assert!(
            s.connections_through(&Fault::InputConverters(1)).is_empty(),
            "identity group does not use its converter"
        );
        assert_eq!(
            s.connections_through(&Fault::Port(3)),
            vec![Endpoint::new(1, 0)]
        );
        // Middle-stage faults are foreign vocabulary to a crossbar.
        assert!(s.connections_through(&Fault::MiddleSwitch(0)).is_empty());
    }

    #[test]
    fn incremental_equals_batch_under_churn() {
        for model in MulticastModel::ALL {
            let net = NetworkConfig::new(5, 2);
            let mut session = CrossbarSession::new(net, model);
            let mut batch = WdmCrossbar::build(net, model);
            let mut gen = wdm_workload_stub::Gen::new(net, model, 11);
            let mut rng = StdRng::seed_from_u64(13);
            let mut live: Vec<Endpoint> = Vec::new();
            for _ in 0..120 {
                if !live.is_empty() && rng.gen_bool(0.4) {
                    let i = rng.gen_range(0..live.len());
                    session.disconnect(live.swap_remove(i)).unwrap();
                } else if let Some(c) = gen.next(&session.live) {
                    live.push(c.source());
                    session.connect(&c).unwrap();
                }
                // Same light, both ways.
                let inc = session.verify().expect("incremental config verifies");
                let bat = batch
                    .route_verified(session.assignment())
                    .expect("batch verifies");
                let a: Vec<_> = inc.lit_outputs().collect();
                let b: Vec<_> = bat.lit_outputs().collect();
                assert_eq!(a, b, "{model}");
            }
        }
    }

    /// Minimal in-crate request generator (wdm-workload depends on
    /// wdm-core only; the real generator lives there, but fabric cannot
    /// depend on it without a cycle in dev graphs).
    mod wdm_workload_stub {
        use super::*;

        pub struct Gen {
            rng: StdRng,
            net: NetworkConfig,
            model: MulticastModel,
        }

        impl Gen {
            pub fn new(net: NetworkConfig, model: MulticastModel, seed: u64) -> Self {
                Gen {
                    rng: StdRng::seed_from_u64(seed),
                    net,
                    model,
                }
            }

            pub fn next(&mut self, asg: &MulticastAssignment) -> Option<MulticastConnection> {
                let free: Vec<Endpoint> = self
                    .net
                    .endpoints()
                    .filter(|&e| !asg.input_busy(e))
                    .collect();
                if free.is_empty() {
                    return None;
                }
                let src = free[self.rng.gen_range(0..free.len())];
                let group_wl = self.rng.gen_range(0..self.net.wavelengths);
                let mut dests = Vec::new();
                for p in 0..self.net.ports {
                    if !self.rng.gen_bool(0.5) {
                        continue;
                    }
                    let w = match self.model {
                        MulticastModel::Msw => src.wavelength.0,
                        MulticastModel::Msdw => group_wl,
                        MulticastModel::Maw => self.rng.gen_range(0..self.net.wavelengths),
                    };
                    let ep = Endpoint::new(p, w);
                    if asg.output_user(ep).is_none() {
                        dests.push(ep);
                    }
                }
                if dests.is_empty() {
                    return None;
                }
                MulticastConnection::new(src, dests).ok()
            }
        }
    }
}
