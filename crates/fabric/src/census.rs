//! Component census — the paper's hardware-cost metric, observed rather
//! than asserted.

use crate::{ComponentKind, Netlist};
use core::fmt;
use serde::{Deserialize, Serialize};

/// Counts of each component kind in a netlist.
///
/// `gates` is the paper's *crosspoint* count (§2.3.1) and `converters`
/// its wavelength-converter count (§2.3.2); the passive-device counts
/// feed the power-loss model.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Census {
    /// SOA gates — crosspoints.
    pub gates: u64,
    /// Wavelength converters.
    pub converters: u64,
    /// Passive splitters.
    pub splitters: u64,
    /// Passive combiners.
    pub combiners: u64,
    /// Wavelength multiplexers.
    pub muxes: u64,
    /// Wavelength demultiplexers.
    pub demuxes: u64,
    /// Input ports.
    pub inputs: u64,
    /// Output ports.
    pub outputs: u64,
}

impl Census {
    /// Count the components of `netlist`.
    pub fn of(netlist: &Netlist) -> Self {
        let mut c = Census::default();
        for (_, comp) in netlist.iter() {
            match comp.kind() {
                ComponentKind::SoaGate => c.gates += 1,
                ComponentKind::Converter => c.converters += 1,
                ComponentKind::Splitter => c.splitters += 1,
                ComponentKind::Combiner => c.combiners += 1,
                ComponentKind::Mux => c.muxes += 1,
                ComponentKind::Demux => c.demuxes += 1,
                ComponentKind::InputPort => c.inputs += 1,
                ComponentKind::OutputPort => c.outputs += 1,
            }
        }
        c
    }

    /// Total active devices (gates + converters) — the expensive part of
    /// the bill of materials.
    pub fn active_devices(&self) -> u64 {
        self.gates + self.converters
    }

    /// Total component count.
    pub fn total(&self) -> u64 {
        self.gates
            + self.converters
            + self.splitters
            + self.combiners
            + self.muxes
            + self.demuxes
            + self.inputs
            + self.outputs
    }
}

impl fmt::Display for Census {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} gates, {} converters, {} splitters, {} combiners, {} mux, {} demux",
            self.gates, self.converters, self.splitters, self.combiners, self.muxes, self.demuxes
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Component;
    use wdm_core::PortId;

    #[test]
    fn counts_each_kind() {
        let mut nl = Netlist::new();
        nl.add(Component::InputPort(PortId(0)));
        nl.add(Component::Demux);
        nl.add(Component::Splitter);
        nl.add(Component::gate());
        nl.add(Component::gate());
        nl.add(Component::converter());
        nl.add(Component::Combiner);
        nl.add(Component::Mux);
        nl.add(Component::OutputPort(PortId(0)));
        let c = Census::of(&nl);
        assert_eq!(c.gates, 2);
        assert_eq!(c.converters, 1);
        assert_eq!(c.splitters, 1);
        assert_eq!(c.combiners, 1);
        assert_eq!(c.muxes, 1);
        assert_eq!(c.demuxes, 1);
        assert_eq!(c.inputs, 1);
        assert_eq!(c.outputs, 1);
        assert_eq!(c.active_devices(), 3);
        assert_eq!(c.total(), 9);
    }

    #[test]
    fn empty_netlist() {
        assert_eq!(Census::of(&Netlist::new()), Census::default());
    }

    #[test]
    fn display_mentions_gates() {
        let mut nl = Netlist::new();
        nl.add(Component::gate());
        assert!(Census::of(&nl).to_string().starts_with("1 gates"));
    }
}
