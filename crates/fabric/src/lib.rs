//! # wdm-fabric — photonic component-level crossbar simulator
//!
//! The paper's cost analysis (§2.3) is stated in terms of physical
//! components: SOA gates ("crosspoints"), light splitters, combiners,
//! wavelength mux/demux, and wavelength converters. This crate builds the
//! crossbar-based nonblocking designs of Figs. 4–7 as explicit *netlists*
//! of those components, routes multicast assignments through them by
//! turning gates on and programming converters, and propagates light
//! signals through the device graph to verify delivery.
//!
//! That gives the reproduction two things a formula alone cannot:
//!
//! 1. **Census validation** — counting the SOA gates and converters of the
//!    constructed netlist must reproduce the Table 1 columns
//!    (`kN²`/`k²N²` crosspoints; `0`/`Nk` converters);
//! 2. **Behavioural validation** — every multicast assignment legal under
//!    a model must route with no combiner conflicts and exact delivery
//!    (the crossbars are nonblocking), which we check exhaustively for
//!    tiny networks and randomly for larger ones.
//!
//! ```
//! use wdm_core::{NetworkConfig, MulticastModel, MulticastConnection, Endpoint,
//!                MulticastAssignment};
//! use wdm_fabric::WdmCrossbar;
//!
//! let net = NetworkConfig::new(3, 2);
//! let mut xbar = WdmCrossbar::build(net, MulticastModel::Msw);
//! assert_eq!(xbar.census().gates, 18); // kN² = 2·9
//!
//! let mut asg = MulticastAssignment::new(net, MulticastModel::Msw);
//! asg.add(MulticastConnection::new(
//!     Endpoint::new(0, 1),
//!     [Endpoint::new(1, 1), Endpoint::new(2, 1)],
//! ).unwrap()).unwrap();
//!
//! let outcome = xbar.route(&asg).unwrap();
//! assert!(outcome.delivered_exactly(&asg));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod census;
mod component;
mod crossbar;
mod error;
mod module;
mod netlist;
pub mod path;
mod power;
pub mod propagate;
mod session;

pub use census::Census;
pub use component::{Component, ComponentKind, NodeId};
pub use crossbar::WdmCrossbar;
pub use error::{FabricError, PropagationError};
pub use module::{ModuleSpec, WdmModule};
pub use netlist::{EdgeId, Netlist};
pub use path::{trace_signal, SignalPath};
pub use power::{PowerBudget, PowerParams};
pub use propagate::{propagate, PropagationOutcome, Signal};
pub use session::CrossbarSession;
