//! Optical power-budget estimation.
//!
//! The paper notes (§2.3) that the crosspoint count "may also be used to
//! project the crosstalk and power loss inside a WDM switch". This module
//! makes that projection concrete: each passive split/combine stage loses
//! `10·log₁₀(fanout)` dB, each device adds its insertion loss, and SOA
//! gates contribute gain. The worst-case input→output path loss of a
//! fabric is a first-order figure of merit for how much amplification a
//! real implementation would need.

use crate::{Component, Netlist, NodeId};
use serde::{Deserialize, Serialize};

/// Per-device optical parameters in dB. Defaults follow textbook values
/// for integrated photonic components.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerParams {
    /// Insertion loss of any device the light passes (dB).
    pub insertion_loss_db: f64,
    /// Gain of an enabled SOA gate (dB, applied as negative loss).
    pub soa_gain_db: f64,
    /// Loss of a wavelength converter (dB).
    pub converter_loss_db: f64,
    /// Extra loss per mux/demux stage (dB).
    pub mux_loss_db: f64,
}

impl Default for PowerParams {
    fn default() -> Self {
        PowerParams {
            insertion_loss_db: 0.5,
            soa_gain_db: 10.0,
            converter_loss_db: 2.0,
            mux_loss_db: 1.5,
        }
    }
}

/// Worst-case power analysis of a netlist.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerBudget {
    /// Largest end-to-end loss over all input→output paths (dB; negative
    /// values mean net gain).
    pub worst_path_loss_db: f64,
    /// Number of hops on that worst path.
    pub worst_path_hops: usize,
}

impl PowerBudget {
    /// Analyze `netlist` under `params`.
    ///
    /// Dynamic programming over the DAG: the loss at a node is the maximum
    /// over predecessors of (their loss + edge device loss). Splitting
    /// loss is charged at the splitter/demux according to its fanout;
    /// combining loss at the combiner/mux according to its fan-in. Gate
    /// state is ignored — this is a static worst-case budget of the
    /// fabric, not of one routed configuration.
    pub fn analyze(netlist: &Netlist, params: &PowerParams) -> PowerBudget {
        let order = netlist.topological_order();
        let n = netlist.node_count();
        // (loss, hops) accumulated on the worst path reaching the node.
        let mut loss = vec![f64::NEG_INFINITY; n];
        let mut hops = vec![0usize; n];
        for &id in &order {
            let comp = netlist.component(id);
            if comp.is_source() {
                loss[id.0] = 0.0;
            }
            if loss[id.0] == f64::NEG_INFINITY {
                continue; // unreachable
            }
            let own = Self::device_loss(netlist, id, params);
            let out_total = loss[id.0] + own;
            for &e in netlist.out_edges(id) {
                let to = netlist.edge(e).to;
                let cand = out_total;
                if cand > loss[to.0] {
                    loss[to.0] = cand;
                    hops[to.0] = hops[id.0] + 1;
                }
            }
        }
        let worst = netlist
            .iter()
            .filter(|(_, c)| c.is_sink())
            .map(|(id, _)| (loss[id.0], hops[id.0]))
            .filter(|(l, _)| *l != f64::NEG_INFINITY)
            .max_by(|a, b| a.0.total_cmp(&b.0));
        let (worst_loss, worst_hops) = worst.unwrap_or((0.0, 0));
        PowerBudget {
            worst_path_loss_db: worst_loss,
            worst_path_hops: worst_hops,
        }
    }

    /// Loss contributed by traversing `id` (dB; negative = gain).
    pub(crate) fn device_loss(netlist: &Netlist, id: NodeId, params: &PowerParams) -> f64 {
        let fanout = netlist.out_edges(id).len().max(1) as f64;
        let fanin = netlist.in_edges(id).len().max(1) as f64;
        match netlist.component(id) {
            Component::InputPort(_) | Component::OutputPort(_) => 0.0,
            Component::Splitter => params.insertion_loss_db + 10.0 * fanout.log10(),
            Component::Demux => params.mux_loss_db,
            Component::Mux => params.mux_loss_db,
            Component::Combiner => params.insertion_loss_db + 10.0 * fanin.log10(),
            Component::SoaGate { .. } => params.insertion_loss_db - params.soa_gain_db,
            Component::Converter { .. } => params.converter_loss_db,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wdm_core::PortId;

    #[test]
    fn splitter_loss_grows_with_fanout() {
        // input -> splitter(fanout f) -> output; loss = 0.5 + 10 log10 f.
        for f in [2usize, 4, 8] {
            let mut nl = Netlist::new();
            let inp = nl.add(Component::InputPort(PortId(0)));
            let spl = nl.add(Component::Splitter);
            nl.connect_simple(inp, spl);
            let mut sinks = Vec::new();
            for i in 0..f {
                let out = nl.add(Component::OutputPort(PortId(i as u32)));
                nl.connect_simple(spl, out);
                sinks.push(out);
            }
            let b = PowerBudget::analyze(&nl, &PowerParams::default());
            let expect = 0.5 + 10.0 * (f as f64).log10();
            assert!((b.worst_path_loss_db - expect).abs() < 1e-9, "f={f}");
        }
    }

    #[test]
    fn soa_gate_contributes_gain() {
        let mut nl = Netlist::new();
        let inp = nl.add(Component::InputPort(PortId(0)));
        let gate = nl.add(Component::gate());
        let out = nl.add(Component::OutputPort(PortId(0)));
        nl.connect_simple(inp, gate);
        nl.connect_simple(gate, out);
        let b = PowerBudget::analyze(&nl, &PowerParams::default());
        assert!((b.worst_path_loss_db - (0.5 - 10.0)).abs() < 1e-9);
        assert_eq!(b.worst_path_hops, 2);
    }

    #[test]
    fn empty_netlist_is_zero() {
        let b = PowerBudget::analyze(&Netlist::new(), &PowerParams::default());
        assert_eq!(b.worst_path_loss_db, 0.0);
        assert_eq!(b.worst_path_hops, 0);
    }

    #[test]
    fn worst_of_two_paths_selected() {
        // One path through a converter (lossy), one direct.
        let mut nl = Netlist::new();
        let inp = nl.add(Component::InputPort(PortId(0)));
        let spl = nl.add(Component::Splitter);
        let cvt = nl.add(Component::converter());
        let o1 = nl.add(Component::OutputPort(PortId(0)));
        let o2 = nl.add(Component::OutputPort(PortId(1)));
        nl.connect_simple(inp, spl);
        nl.connect_simple(spl, cvt);
        nl.connect_simple(cvt, o1);
        nl.connect_simple(spl, o2);
        let b = PowerBudget::analyze(&nl, &PowerParams::default());
        // splitter: 0.5 + 10log10(2); converter: +2.0
        let expect = 0.5 + 10.0 * 2f64.log10() + 2.0;
        assert!((b.worst_path_loss_db - expect).abs() < 1e-9);
    }
}
