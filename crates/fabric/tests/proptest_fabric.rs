//! Randomized nonblocking checks on larger crossbars, plus census and
//! power properties.

use proptest::prelude::*;
use rand::{rngs::StdRng, Rng, SeedableRng};
use wdm_core::{
    capacity, Endpoint, MulticastAssignment, MulticastConnection, MulticastModel, NetworkConfig,
};
use wdm_fabric::{PowerParams, WdmCrossbar};

/// Greedy random assignment under `model` (never fails: conflicting
/// candidates are skipped).
fn random_assignment(
    net: NetworkConfig,
    model: MulticastModel,
    rng: &mut StdRng,
    attempts: usize,
) -> MulticastAssignment {
    let mut asg = MulticastAssignment::new(net, model);
    for _ in 0..attempts {
        let src = Endpoint::new(
            rng.gen_range(0..net.ports),
            rng.gen_range(0..net.wavelengths),
        );
        let fanout = rng.gen_range(1..=net.ports);
        let mut ports: Vec<u32> = (0..net.ports).collect();
        // partial Fisher–Yates for a random port subset
        for i in 0..fanout as usize {
            let j = rng.gen_range(i..ports.len());
            ports.swap(i, j);
        }
        let dest_wl = rng.gen_range(0..net.wavelengths);
        let dests = ports[..fanout as usize].iter().map(|&p| {
            let w = match model {
                MulticastModel::Msw => src.wavelength.0,
                MulticastModel::Msdw => dest_wl,
                MulticastModel::Maw => rng.gen_range(0..net.wavelengths),
            };
            Endpoint::new(p, w)
        });
        if let Ok(conn) = MulticastConnection::new(src, dests) {
            let _ = asg.add(conn);
        }
    }
    asg
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn random_assignments_always_route(
        n in 2u32..7,
        k in 1u32..4,
        model in prop::sample::select(&MulticastModel::ALL),
        seed in any::<u64>(),
    ) {
        let net = NetworkConfig::new(n, k);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut xbar = WdmCrossbar::build(net, model);
        for _ in 0..4 {
            let asg = random_assignment(net, model, &mut rng, 3 * (n * k) as usize);
            let outcome = xbar.route_verified(&asg);
            prop_assert!(outcome.is_ok(), "{} blocked: {:?}\n{}", model, outcome.err(), asg);
        }
    }

    #[test]
    fn census_is_size_polynomial(n in 1u32..9, k in 1u32..5) {
        let net = NetworkConfig::new(n, k);
        for model in MulticastModel::ALL {
            let c = WdmCrossbar::build(net, model).census();
            prop_assert_eq!(c.gates, capacity::crossbar_crosspoints(net, model));
            prop_assert_eq!(c.converters, capacity::crossbar_converters(net, model));
            prop_assert_eq!(c.inputs, n as u64);
            prop_assert_eq!(c.outputs, n as u64);
            prop_assert_eq!(c.demuxes, n as u64);
            prop_assert_eq!(c.muxes, n as u64);
            prop_assert_eq!(c.splitters, (n * k) as u64);
            prop_assert_eq!(c.combiners, (n * k) as u64);
        }
    }

    #[test]
    fn msw_has_cheapest_power_budget(n in 2u32..6, k in 2u32..4) {
        // MSW splitters fan out to N, MSDW/MAW to Nk — the passive loss
        // ordering must reflect it.
        let net = NetworkConfig::new(n, k);
        let params = PowerParams::default();
        let msw = WdmCrossbar::build(net, MulticastModel::Msw).power_budget(&params);
        let maw = WdmCrossbar::build(net, MulticastModel::Maw).power_budget(&params);
        prop_assert!(msw.worst_path_loss_db < maw.worst_path_loss_db);
    }

    #[test]
    fn crosstalk_exposure_tracks_crosspoints(n in 2u32..7, k in 2u32..4, seed in any::<u64>()) {
        // §2.3: more crosspoints → more first-order leakage paths, for
        // the identical (MSW-legal) load.
        let net = NetworkConfig::new(n, k);
        let mut rng = StdRng::seed_from_u64(seed);
        let asg = random_assignment(net, MulticastModel::Msw, &mut rng, 3 * (n * k) as usize);
        prop_assume!(!asg.is_empty());
        let mut msw = WdmCrossbar::build(net, MulticastModel::Msw);
        let mut maw = WdmCrossbar::build(net, MulticastModel::Maw);
        let e_msw = msw.route_verified(&asg).unwrap().total_crosstalk_exposure();
        let e_maw = maw.route_verified(&asg).unwrap().total_crosstalk_exposure();
        prop_assert!(e_msw <= e_maw, "MSW {e_msw} > MAW {e_maw}");
        // Exposure is bounded by the crosspoint count.
        prop_assert!(e_msw <= capacity::crossbar_crosspoints(net, MulticastModel::Msw));
        prop_assert!(e_maw <= capacity::crossbar_crosspoints(net, MulticastModel::Maw));
    }

    #[test]
    fn breaking_an_unused_gate_is_harmless(
        seed in any::<u64>(),
        model in prop::sample::select(&MulticastModel::ALL),
    ) {
        let net = NetworkConfig::new(4, 2);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut xbar = WdmCrossbar::build(net, model);
        let asg = random_assignment(net, model, &mut rng, 6);
        // Find a crosspoint no connection uses.
        let used: std::collections::HashSet<(Endpoint, Endpoint)> = asg
            .connections()
            .flat_map(|c| c.destinations().iter().map(move |&d| (c.source(), d)))
            .collect();
        'outer: for ip in net.endpoints() {
            for op in net.endpoints() {
                if !used.contains(&(ip, op)) && xbar.gate_between(ip, op).is_some() {
                    xbar.break_gate(ip, op);
                    break 'outer;
                }
            }
        }
        prop_assert!(xbar.route_verified(&asg).is_ok());
    }
}
