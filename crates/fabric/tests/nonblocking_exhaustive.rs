//! The crossbar designs of Figs. 4–7 are *nonblocking*: every multicast
//! assignment legal under the fabric's model must route with no physical
//! conflict and exact delivery. For tiny networks we can check this for
//! **every** assignment; larger sizes get randomized coverage in
//! `proptest_fabric.rs`.

use wdm_core::{enumerate, MulticastModel, NetworkConfig};
use wdm_fabric::WdmCrossbar;

fn exhaustive_check(net: NetworkConfig, model: MulticastModel) {
    let mut xbar = WdmCrossbar::build(net, model);
    let mut count = 0usize;
    for map in enumerate::valid_maps(net, model, true) {
        let asg = map.to_assignment(model).expect("enumerated map is valid");
        let outcome = xbar
            .route_verified(&asg)
            .unwrap_or_else(|e| panic!("{model} assignment blocked: {e}\n{asg}"));
        assert!(outcome.delivered_exactly(&asg));
        count += 1;
    }
    // Cross-check the brute-force count against the closed form (the
    // routed set *is* the capacity).
    let expect = wdm_core::capacity::any_assignments(net, model);
    assert_eq!(wdm_bignum::BigUint::from(count as u64), expect);
}

#[test]
fn msw_crossbar_nonblocking_2x2_2wl() {
    exhaustive_check(NetworkConfig::new(2, 2), MulticastModel::Msw);
}

#[test]
fn msdw_crossbar_nonblocking_2x2_2wl() {
    exhaustive_check(NetworkConfig::new(2, 2), MulticastModel::Msdw);
}

#[test]
fn maw_crossbar_nonblocking_2x2_2wl() {
    exhaustive_check(NetworkConfig::new(2, 2), MulticastModel::Maw);
}

#[test]
fn msw_crossbar_nonblocking_3x3_1wl() {
    exhaustive_check(NetworkConfig::new(3, 1), MulticastModel::Msw);
}

#[test]
fn maw_crossbar_nonblocking_1x1_3wl() {
    exhaustive_check(NetworkConfig::new(1, 3), MulticastModel::Maw);
}

#[test]
fn msdw_crossbar_nonblocking_3x3_1wl() {
    // k = 1 degenerates all models to the classic space switch.
    exhaustive_check(NetworkConfig::new(3, 1), MulticastModel::Msdw);
}

#[test]
fn msw_crossbar_nonblocking_2x2_3wl() {
    exhaustive_check(NetworkConfig::new(2, 3), MulticastModel::Msw);
}

#[test]
fn maw_crossbar_nonblocking_2x2_3wl() {
    // The largest exhaustive sweep: 7^6 = 117 649 candidate maps.
    exhaustive_check(NetworkConfig::new(2, 3), MulticastModel::Maw);
}

#[test]
fn msdw_crossbar_nonblocking_2x2_3wl() {
    exhaustive_check(NetworkConfig::new(2, 3), MulticastModel::Msdw);
}
