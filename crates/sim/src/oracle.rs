//! The serial oracle and the schedule-independent invariants.
//!
//! **Fault-free conformance** generalizes the single-shard ≡ serial
//! equivalence test of the runtime crate to *every* explored
//! interleaving: on a legal, closed trace, the per-event outcome of a
//! concurrent schedule must equal the serial reference outcome, index
//! by index. Cross-shard reordering may only manifest as transient
//! `Busy` conflicts, which the park-and-retry machinery must absorb —
//! so an `Expired` where the serial run admitted, or any outcome
//! mismatch, is a scheduling bug (lost wakeup, dropped deferral) made
//! reproducible by its seed.
//!
//! **Faulted runs** have schedule-dependent victim sets (which
//! connections a fault evicts depends on what was admitted when it
//! fired), so per-index equality is too strong. Instead every schedule
//! must satisfy the conservation laws of the outcome taxonomy — each
//! offered connect resolves exactly once, each admitted connect leaves
//! the fabric exactly once (departed or orphaned), the final state is
//! empty and consistent — plus `blocked == 0` whenever the surviving
//! middle stage still meets the Theorem 1 bound.

use crate::executor::SimRun;
use std::fmt;
use wdm_runtime::RequestOutcome;

/// One verified property failure in a simulated run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Violation {
    /// A trace event never received a terminal outcome.
    Unresolved {
        /// Trace index of the event.
        index: usize,
    },
    /// Concurrent and serial outcomes differ at one trace index.
    Mismatch {
        /// Trace index of the event.
        index: usize,
        /// What the concurrent schedule produced.
        concurrent: RequestOutcome,
        /// What the serial reference produced.
        serial: RequestOutcome,
    },
    /// Middle-stage exhaustion where the theorems forbid it.
    HardBlock {
        /// Number of blocked requests.
        count: u64,
    },
    /// A request expired although every occupant eventually departs.
    StallExpiry {
        /// Number of expired requests.
        count: u64,
    },
    /// The run was not clean (fatal errors, inconsistent backend).
    Unclean {
        /// Error and consistency findings.
        details: Vec<String>,
    },
    /// An outcome conservation law failed.
    Conservation {
        /// Human-readable statement of the law.
        law: String,
        /// Left-hand side value.
        lhs: u64,
        /// Right-hand side value.
        rhs: u64,
    },
}

impl Violation {
    /// Coarse class used to keep a shrink focused on the original
    /// failure (so a reduced trace cannot "fail" for an unrelated
    /// reason and mislead the minimization).
    pub fn class(&self) -> &'static str {
        match self {
            Violation::Unresolved { .. } => "unresolved",
            Violation::Mismatch { .. } => "mismatch",
            Violation::HardBlock { .. } => "hard-block",
            Violation::StallExpiry { .. } => "stall-expiry",
            Violation::Unclean { .. } => "unclean",
            Violation::Conservation { .. } => "conservation",
        }
    }
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::Unresolved { index } => {
                write!(f, "event #{index} never resolved")
            }
            Violation::Mismatch {
                index,
                concurrent,
                serial,
            } => write!(
                f,
                "event #{index}: concurrent schedule produced {concurrent:?}, serial oracle {serial:?}"
            ),
            Violation::HardBlock { count } => write!(
                f,
                "{count} hard block(s) on a fabric provisioned at the nonblocking bound"
            ),
            Violation::StallExpiry { count } => write!(
                f,
                "{count} deadline expiries on a closed trace (possible lost wakeup)"
            ),
            Violation::Unclean { details } => {
                write!(f, "run not clean: {}", details.join("; "))
            }
            Violation::Conservation { law, lhs, rhs } => {
                write!(f, "conservation violated: {law} ({lhs} != {rhs})")
            }
        }
    }
}

/// Schedule-independent checks every run must pass. With
/// `expect_nonblocking`, additionally require `blocked == 0` (the
/// theorems' guarantee) and zero deadline expiries.
pub fn invariant_violations<B>(run: &SimRun<B>, expect_nonblocking: bool) -> Vec<Violation> {
    let s = &run.report.summary;
    let mut out = Vec::new();
    for (index, o) in run.outcomes.iter().enumerate() {
        if o.is_none() {
            out.push(Violation::Unresolved { index });
        }
    }
    if !run.report.is_clean() {
        let mut details = run.report.consistency.clone();
        details.extend(run.report.errors.iter().cloned());
        out.push(Violation::Unclean { details });
    }
    let mut law = |name: &str, lhs: u64, rhs: u64| {
        if lhs != rhs {
            out.push(Violation::Conservation {
                law: name.to_string(),
                lhs,
                rhs,
            });
        }
    };
    law(
        "offered = admitted + blocked + expired + component_down + overloaded",
        s.offered,
        s.admitted + s.blocked + s.expired + s.component_down + s.overloaded,
    );
    law(
        "admitted = departed + orphaned_departures (closed trace)",
        s.admitted,
        s.departed + s.orphaned_departures,
    );
    law(
        "skipped_departures = blocked + expired + component_down + overloaded (closed trace)",
        s.skipped_departures,
        s.blocked + s.expired + s.component_down + s.overloaded,
    );
    law(
        "connections_hit = healed + heal_failed",
        s.connections_hit,
        s.healed + s.heal_failed,
    );
    law("active = 0 after a closed trace", s.active, 0);
    if expect_nonblocking && s.blocked > 0 {
        out.push(Violation::HardBlock { count: s.blocked });
    }
    if s.expired > 0 {
        out.push(Violation::StallExpiry { count: s.expired });
    }
    out
}

/// Full fault-free conformance: the invariants plus per-event outcome
/// equality against the serial reference.
pub fn conformance_violations<A, B>(
    concurrent: &SimRun<A>,
    serial: &SimRun<B>,
    expect_nonblocking: bool,
) -> Vec<Violation> {
    let mut out = invariant_violations(concurrent, expect_nonblocking);
    debug_assert_eq!(concurrent.outcomes.len(), serial.outcomes.len());
    for (index, (c, s)) in concurrent
        .outcomes
        .iter()
        .zip(serial.outcomes.iter())
        .enumerate()
    {
        match (c, s) {
            (Some(c), Some(s)) if c != s => out.push(Violation::Mismatch {
                index,
                concurrent: *c,
                serial: *s,
            }),
            _ => {}
        }
    }
    out
}
