//! Seed sweeps and failing-seed artifacts.
//!
//! A [`SimSetup`] fixes everything about a simulated experiment except
//! the seed: geometry, backend, trace length, shard count, fault plan.
//! One seed then determines the whole run — the adversarial churn trace,
//! the fault script, and every scheduling decision — so
//! [`SimSetup::check_seed`] is a pure function from `u64` to verdict.
//! When a seed fails, [`SimSetup::failing_seed`] shrinks its trace with
//! delta debugging and packages seed + minimal trace + reproduction
//! command line into a [`FailingSeed`] artifact a human (or CI) can
//! replay with `wdmcast sim --seed N`.

use crate::executor::{simulate, Scheduler, SimParams, SimRun};
use crate::oracle::{conformance_violations, invariant_violations, Violation};
use crate::schedule::ChoiceStream;
use crate::shrink::shrink_trace;
use std::fmt;
use wdm_core::{Fault, MulticastModel, NetworkConfig};
use wdm_fabric::CrossbarSession;
use wdm_graph::{GraphNetwork, GraphTopology, Splitting};
use wdm_multistage::{
    awg, bounds, AwgClosNetwork, ConcurrentThreeStage, Construction, ConverterPlacement,
    SelectionStrategy, ThreeStageNetwork, ThreeStageParams,
};
use wdm_runtime::{Backend, RepackPolicy, RuntimeConfig};
use wdm_workload::adversarial::{AdversarialGen, Geometry};
use wdm_workload::hotspot::HotspotGen;
use wdm_workload::{close_trace, FaultAction, TimedEvent, TimedFault};

/// Which construction the simulated engine drives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackendKind {
    /// The photonic crossbar session (strictly nonblocking by
    /// construction).
    Crossbar,
    /// A three-stage network with `m` middle switches.
    ThreeStage,
    /// An AWG-based wavelength-routed Clos with `m` passive gratings.
    AwgClos,
    /// A graph-topology network of switching nodes joined by WDM fibers.
    Graph {
        /// The node/link shape (`--topology` plus its dimension flags).
        topology: GraphTopology,
    },
}

impl BackendKind {
    /// The default graph shape `--backend graph` selects before any
    /// `--topology`/dimension flags refine it.
    pub const DEFAULT_GRAPH: BackendKind = BackendKind::Graph {
        topology: GraphTopology::Ring { nodes: 8 },
    };

    /// CLI-facing label (`--backend` value).
    pub fn label(&self) -> &'static str {
        match self {
            BackendKind::Crossbar => "crossbar",
            BackendKind::ThreeStage => "three-stage",
            BackendKind::AwgClos => "awg-clos",
            BackendKind::Graph { .. } => "graph",
        }
    }

    /// Parse a `--backend` value.
    pub fn parse(s: &str) -> Option<BackendKind> {
        match s {
            "crossbar" => Some(BackendKind::Crossbar),
            "three-stage" | "threestage" | "3stage" => Some(BackendKind::ThreeStage),
            "awg-clos" | "awgclos" | "awg" => Some(BackendKind::AwgClos),
            "graph" | "mesh" | "ring" => Some(BackendKind::DEFAULT_GRAPH),
            _ => None,
        }
    }

    /// Every selectable backend, in CLI-help order.
    pub const ALL: [BackendKind; 4] = [
        BackendKind::Crossbar,
        BackendKind::ThreeStage,
        BackendKind::AwgClos,
        BackendKind::DEFAULT_GRAPH,
    ];
}

/// Graph-backend knobs beyond the topology shape: splitter placement and
/// the splitting discipline. Ignored by the switch-box backends.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GraphSpec {
    /// Sparse splitter placement: node `v` is multicast-capable iff
    /// `mc_every > 0` and `v % mc_every == 0` (1 = every node, 0 = none).
    pub mc_every: u32,
    /// Light-tree vs light-hierarchy admission.
    pub splitting: Splitting,
}

impl Default for GraphSpec {
    fn default() -> Self {
        GraphSpec {
            mc_every: 1,
            splitting: Splitting::Hierarchy,
        }
    }
}

/// Which traffic generator drives the churn trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WorkloadSpec {
    /// Middle-stage-hostile churn
    /// ([`wdm_workload::adversarial::AdversarialGen`]): busiest-module
    /// sources, maximum module spread.
    #[default]
    Adversarial,
    /// Hotspot churn ([`HotspotGen`]): uniform sources, destination
    /// picks skewed toward one module.
    Hotspot {
        /// The module (graph node) drawing the skewed destination mass.
        hot: u32,
        /// Percent of destination picks aimed at `hot` (0–100).
        skew_pct: u32,
    },
}

/// Everything about a simulated experiment except the seed.
#[derive(Debug, Clone)]
pub struct SimSetup {
    /// Three-stage geometry; the crossbar uses `geo.ports()` ports and
    /// `geo.k` wavelengths.
    pub geo: Geometry,
    /// Multicast model requests are legal under.
    pub model: MulticastModel,
    /// Middle switches (three-stage only).
    pub m: u32,
    /// Which backend to drive.
    pub backend: BackendKind,
    /// Churn-trace length before closing departures are appended.
    pub steps: usize,
    /// Cooperatively scheduled shards.
    pub shards: usize,
    /// Inject a seed-derived fail/repair pair mid-trace.
    pub faulted: bool,
    /// Assert `blocked == 0` (the fabric is provisioned at or above the
    /// relevant nonblocking bound for the whole run, faults included).
    pub expect_nonblocking: bool,
    /// Middle-switch ordering strategy (three-stage only). `Spread`
    /// maximizes middle-stage dispersal, which is what makes hard blocks
    /// reachable on an under-provisioned fabric.
    pub strategy: SelectionStrategy,
    /// Rearrange existing routes on a hard block (make-before-break
    /// repacking, [`SimSetup::REPACK_BUDGET`] moves per blocked
    /// connect). Repack outcomes depend on which routes exist when the
    /// block happens — i.e. on the interleaving — so repack runs are
    /// judged by the conservation-law oracle, never by per-index
    /// equality with a serial reference.
    pub repack: bool,
    /// Drive the CAS-committed [`ConcurrentThreeStage`] backend instead
    /// of the serial `ThreeStageNetwork` (three-stage only). The engine
    /// detects the [`wdm_runtime::ConcurrentAdmission`] capability and
    /// shards admit under the read side of the backend lock; the judge
    /// is unchanged — fault-free runs must still conform per-index to
    /// the serial first-fit oracle, faulted runs to the conservation
    /// laws.
    pub concurrent: bool,
    /// Which traffic generator produces the churn trace.
    pub workload: WorkloadSpec,
    /// Graph-backend knobs (splitter density, splitting discipline);
    /// ignored by the switch-box backends.
    pub graph: GraphSpec,
}

impl SimSetup {
    /// Physical moves an on-block repack may spend per blocked connect
    /// when [`SimSetup::repack`] is on (mirrored by the CLI's
    /// `--repack` flag).
    pub const REPACK_BUDGET: u32 = 4;

    /// Enable on-block repacking. Hard blocks are no longer forbidden
    /// by the oracle (`expect_nonblocking` drops to `false`): below the
    /// bound repacking reduces blocks, it cannot erase them, and the
    /// run is judged by the conservation laws instead.
    pub fn with_repack(mut self) -> SimSetup {
        self.repack = true;
        self.expect_nonblocking = false;
        self
    }

    /// Switch a three-stage setup onto the fine-grained CAS admission
    /// path ([`ConcurrentThreeStage`]). Selection is forced back to
    /// `FirstFit` — that is the order the optimistic probe commits in,
    /// and the order the serial oracle must replay to conform. Repack
    /// and concurrent mode are mutually exclusive (repack moves need
    /// the exclusive lock, which would demote every admission back to
    /// the coarse path).
    ///
    /// # Panics
    ///
    /// Panics when the backend is not [`BackendKind::ThreeStage`] or
    /// repacking is already enabled.
    pub fn with_concurrent(mut self) -> SimSetup {
        assert_eq!(
            self.backend,
            BackendKind::ThreeStage,
            "concurrent admission is a three-stage capability"
        );
        assert!(!self.repack, "concurrent mode requires RepackPolicy::Off");
        self.concurrent = true;
        self.strategy = SelectionStrategy::FirstFit;
        self
    }

    /// A three-stage setup provisioned exactly at the Theorem 1 bound,
    /// fault-free, expecting zero hard blocks under every schedule.
    pub fn three_stage_at_bound(n: u32, r: u32, k: u32, steps: usize, shards: usize) -> SimSetup {
        let m = bounds::theorem1_min_m(n, r).m;
        SimSetup {
            geo: Geometry { n, r, k },
            model: MulticastModel::Msw,
            m,
            backend: BackendKind::ThreeStage,
            steps,
            shards,
            faulted: false,
            expect_nonblocking: true,
            strategy: SelectionStrategy::FirstFit,
            repack: false,
            concurrent: false,
            workload: WorkloadSpec::Adversarial,
            graph: GraphSpec::default(),
        }
    }

    /// A three-stage setup one middle switch *below* the Theorem 1
    /// bound, with load-spreading selection. The oracle still expects
    /// `blocked == 0`, so a reachable hard block becomes a
    /// [`FailingSeed`] artifact — this is the harness's own smoke test.
    pub fn three_stage_underprovisioned(
        n: u32,
        r: u32,
        k: u32,
        steps: usize,
        shards: usize,
    ) -> SimSetup {
        let mut setup = SimSetup::three_stage_at_bound(n, r, k, steps, shards);
        setup.m = setup.m.saturating_sub(1).max(1);
        setup.strategy = SelectionStrategy::Spread;
        setup
    }

    /// An AWG-based Clos provisioned exactly at its strictly
    /// nonblocking bound, fault-free, expecting zero hard blocks.
    ///
    /// Panics when `k < r` — fewer than `r` usable channels leave some
    /// module pairs unreachable by wavelength routing, so there is no
    /// nonblocking provisioning at all.
    pub fn awg_clos(n: u32, r: u32, k: u32, steps: usize, shards: usize) -> SimSetup {
        let fsr_orders = k.div_ceil(r).max(1);
        let m = awg::min_middles(n, r, k, fsr_orders)
            .expect("AWG-Clos needs k ≥ r so every module pair is reachable");
        SimSetup {
            geo: Geometry { n, r, k },
            model: MulticastModel::Msw,
            m,
            backend: BackendKind::AwgClos,
            steps,
            shards,
            faulted: false,
            expect_nonblocking: true,
            strategy: SelectionStrategy::FirstFit,
            repack: false,
            concurrent: false,
            workload: WorkloadSpec::Adversarial,
            graph: GraphSpec::default(),
        }
    }

    /// A crossbar setup over the same geometry (always nonblocking).
    pub fn crossbar(n: u32, r: u32, k: u32, steps: usize, shards: usize) -> SimSetup {
        SimSetup {
            geo: Geometry { n, r, k },
            model: MulticastModel::Msw,
            m: 0,
            backend: BackendKind::Crossbar,
            steps,
            shards,
            faulted: false,
            expect_nonblocking: true,
            strategy: SelectionStrategy::FirstFit,
            repack: false,
            concurrent: false,
            workload: WorkloadSpec::Adversarial,
            graph: GraphSpec::default(),
        }
    }

    /// A graph-topology setup: `n` external ports per node, `k`
    /// wavelengths per fiber. The workload geometry maps one module per
    /// node (`r = topology.nodes()`). Graphs have no nonblocking
    /// theorem, so blocking is legal and runs are judged by serial
    /// conformance (fault-free) or the conservation laws (faulted) —
    /// never by `expect_nonblocking`.
    pub fn graph(topology: GraphTopology, n: u32, k: u32, steps: usize, shards: usize) -> SimSetup {
        SimSetup {
            geo: Geometry {
                n,
                r: topology.nodes(),
                k,
            },
            model: MulticastModel::Msw,
            m: 0,
            backend: BackendKind::Graph { topology },
            steps,
            shards,
            faulted: false,
            expect_nonblocking: false,
            strategy: SelectionStrategy::FirstFit,
            repack: false,
            concurrent: false,
            workload: WorkloadSpec::Adversarial,
            graph: GraphSpec::default(),
        }
    }

    /// The seed's closed churn trace, from the generator
    /// [`SimSetup::workload`] names.
    pub fn trace(&self, seed: u64) -> Vec<TimedEvent> {
        let mut trace = match self.workload {
            WorkloadSpec::Adversarial => {
                AdversarialGen::new(self.geo, self.model, seed).churn_trace(self.steps)
            }
            WorkloadSpec::Hotspot { hot, skew_pct } => {
                HotspotGen::new(self.geo, self.model, hot, skew_pct, seed).churn_trace(self.steps)
            }
        };
        let horizon = trace.last().map_or(0.0, |e| e.time) + 1.0;
        close_trace(&mut trace, horizon);
        trace
    }

    /// The seed's fault script: one mid-trace component failure and its
    /// repair two-thirds in. Empty when the setup is fault-free.
    pub fn faults(&self, seed: u64, trace: &[TimedEvent]) -> Vec<TimedFault> {
        if !self.faulted || trace.is_empty() {
            return Vec::new();
        }
        let fault = match self.backend {
            BackendKind::ThreeStage | BackendKind::AwgClos => {
                Fault::MiddleSwitch((seed % self.m.max(1) as u64) as u32)
            }
            BackendKind::Crossbar => Fault::Port((seed % self.geo.ports() as u64) as u32),
            BackendKind::Graph { topology } => {
                // Alternate between node kills and single-fiber cuts so
                // both eviction paths stay under sweep pressure.
                if seed.is_multiple_of(2) {
                    Fault::MiddleSwitch(((seed / 2) % u64::from(topology.nodes())) as u32)
                } else {
                    let links = topology.build();
                    let (u, v) = links.link(((seed / 2) % u64::from(links.num_links())) as u32);
                    Fault::MiddleLink {
                        middle: u,
                        module: v,
                    }
                }
            }
        };
        let fail_at = trace[trace.len() / 3].time;
        let repair_at = trace[trace.len() * 2 / 3].time;
        vec![
            TimedFault {
                time: fail_at,
                action: FaultAction::Fail(fault),
            },
            TimedFault {
                time: repair_at,
                action: FaultAction::Repair(fault),
            },
        ]
    }

    fn params(&self) -> SimParams {
        let mut runtime = RuntimeConfig::default();
        if self.repack {
            runtime.repack = RepackPolicy::OnBlock {
                budget: SimSetup::REPACK_BUDGET,
            };
        }
        SimParams {
            shards: self.shards,
            batch: 1,
            runtime,
        }
    }

    /// Run one (trace, faults) input under the scheduler and return the
    /// violations the oracle finds. Fault-free non-repack runs are
    /// checked for full serial conformance; faulted or repacking runs
    /// (whose victim sets / rearrangements are schedule-dependent)
    /// against the conservation invariants.
    pub fn violations_for(
        &self,
        trace: &[TimedEvent],
        faults: &[TimedFault],
        choices: &mut ChoiceStream,
    ) -> Vec<Violation> {
        let params = self.params();
        let run = simulate(
            self.build_backend(),
            trace,
            faults,
            &params,
            Scheduler::Random(choices),
        );
        self.judge(trace, run)
    }

    fn judge(&self, trace: &[TimedEvent], run: SimRun<Box<dyn Backend>>) -> Vec<Violation> {
        if !self.faulted && !self.repack {
            let serial_params = SimParams {
                shards: 1,
                batch: 1,
                runtime: RuntimeConfig::default(),
            };
            let serial = simulate(
                self.build_oracle_backend(),
                trace,
                &[],
                &serial_params,
                Scheduler::Serial,
            );
            conformance_violations(&run, &serial, self.expect_nonblocking)
        } else {
            invariant_violations(&run, self.expect_nonblocking)
        }
    }

    /// Construct the backend this setup drives, boxed for the engine.
    /// This is the single spot that maps a [`BackendKind`] (plus the
    /// concurrent flag and graph knobs) to a live implementation —
    /// sweeps, the CLI, and [`crate::Scenario`] all route through it.
    pub fn build_backend(&self) -> Box<dyn Backend> {
        match self.backend {
            BackendKind::Crossbar => Box::new(self.make_crossbar()),
            BackendKind::ThreeStage if self.concurrent => Box::new(self.make_concurrent()),
            BackendKind::ThreeStage => Box::new(self.make_three_stage()),
            BackendKind::AwgClos => Box::new(self.make_awg_clos()),
            BackendKind::Graph { topology } => Box::new(self.make_graph(topology)),
        }
    }

    /// The serial-oracle twin of [`SimSetup::build_backend`]: identical
    /// except that concurrent three-stage runs are judged against the
    /// serial first-fit network (the order the CAS probe commits in).
    fn build_oracle_backend(&self) -> Box<dyn Backend> {
        match self.backend {
            BackendKind::ThreeStage => Box::new(self.make_three_stage()),
            _ => self.build_backend(),
        }
    }

    fn make_crossbar(&self) -> CrossbarSession {
        CrossbarSession::new(NetworkConfig::new(self.geo.ports(), self.geo.k), self.model)
    }

    fn make_three_stage(&self) -> ThreeStageNetwork {
        let mut net = ThreeStageNetwork::new(
            ThreeStageParams::new(self.geo.n, self.m, self.geo.r, self.geo.k),
            Construction::MswDominant,
            self.model,
        );
        net.set_strategy(self.strategy);
        net
    }

    fn make_concurrent(&self) -> ConcurrentThreeStage {
        ConcurrentThreeStage::new(
            ThreeStageParams::new(self.geo.n, self.m, self.geo.r, self.geo.k),
            Construction::MswDominant,
            self.model,
        )
    }

    fn make_awg_clos(&self) -> AwgClosNetwork {
        let fsr_orders = self.geo.k.div_ceil(self.geo.r).max(1);
        AwgClosNetwork::new(
            ThreeStageParams::new(self.geo.n, self.m, self.geo.r, self.geo.k),
            fsr_orders,
            ConverterPlacement::IngressEgress,
            self.model,
        )
    }

    fn make_graph(&self, topology: GraphTopology) -> GraphNetwork {
        let topo = topology.build().with_mc_every(self.graph.mc_every);
        GraphNetwork::new(
            topo,
            self.geo.n,
            self.geo.k,
            self.graph.splitting,
            self.model,
        )
    }

    /// Check one seed end to end: derive trace + faults, run under the
    /// seeded scheduler, judge against the oracle.
    pub fn check_seed(&self, seed: u64) -> SeedVerdict {
        let trace = self.trace(seed);
        let faults = self.faults(seed, &trace);
        let mut choices = ChoiceStream::new(seed);
        let violations = self.violations_for(&trace, &faults, &mut choices);
        SeedVerdict {
            seed,
            fingerprint: choices.fingerprint(),
            events: trace.len(),
            violations,
        }
    }

    /// Check a seed and, on failure, shrink its trace to a minimal
    /// reproducer (same violation class, fresh scheduler from the same
    /// seed on every candidate, fault script carried over unchanged).
    pub fn failing_seed(&self, seed: u64) -> Option<FailingSeed> {
        let verdict = self.check_seed(seed);
        if verdict.violations.is_empty() {
            return None;
        }
        let classes: Vec<&'static str> = verdict.violations.iter().map(|v| v.class()).collect();
        let trace = self.trace(seed);
        let faults = self.faults(seed, &trace);
        let shrunk = shrink_trace(&trace, |candidate| {
            let mut choices = ChoiceStream::new(seed);
            self.violations_for(candidate, &faults, &mut choices)
                .iter()
                .any(|v| classes.contains(&v.class()))
        });
        let mut choices = ChoiceStream::new(seed);
        let violations = self.violations_for(&shrunk, &faults, &mut choices);
        Some(FailingSeed {
            seed,
            setup: self.clone(),
            violations,
            trace: shrunk,
        })
    }

    /// Sweep a seed range, collecting distinct schedule fingerprints and
    /// every failure (shrunk).
    pub fn sweep(&self, seeds: std::ops::Range<u64>) -> SweepReport {
        let mut fingerprints = std::collections::HashSet::new();
        let mut failures = Vec::new();
        let mut checked = 0usize;
        for seed in seeds {
            let verdict = self.check_seed(seed);
            checked += 1;
            fingerprints.insert(verdict.fingerprint);
            if !verdict.violations.is_empty() {
                if let Some(failure) = self.failing_seed(seed) {
                    failures.push(failure);
                }
            }
        }
        SweepReport {
            checked,
            distinct_schedules: fingerprints.len(),
            failures,
        }
    }

    /// The `wdmcast sim` invocation that replays `seed` under this
    /// setup.
    pub fn repro_command(&self, seed: u64) -> String {
        let mut cmd = format!(
            "wdmcast sim --backend {} --n {} --r {} --k {} --steps {} --shards {} --seed {seed}",
            self.backend.label(),
            self.geo.n,
            self.geo.r,
            self.geo.k,
            self.steps,
            self.shards,
        );
        if matches!(self.backend, BackendKind::ThreeStage | BackendKind::AwgClos) {
            cmd.push_str(&format!(" --m {}", self.m));
        }
        if let BackendKind::Graph { topology } = self.backend {
            match topology {
                GraphTopology::Ring { nodes } => {
                    cmd.push_str(&format!(" --topology ring --nodes {nodes}"));
                }
                GraphTopology::Grid { rows, cols } => {
                    cmd.push_str(&format!(" --topology grid --rows {rows} --cols {cols}"));
                }
                GraphTopology::Torus { rows, cols } => {
                    cmd.push_str(&format!(" --topology torus --rows {rows} --cols {cols}"));
                }
            }
            cmd.push_str(&format!(
                " --mc-every {} --splitting {}",
                self.graph.mc_every,
                self.graph.splitting.label()
            ));
        }
        if let WorkloadSpec::Hotspot { hot, skew_pct } = self.workload {
            cmd.push_str(&format!(" --hotspot {skew_pct} --hot {hot}"));
        }
        if self.faulted {
            cmd.push_str(" --faulted");
        }
        if self.repack {
            cmd.push_str(" --repack");
        }
        if self.concurrent {
            cmd.push_str(" --concurrent");
        }
        cmd
    }
}

/// Outcome of checking one seed.
#[derive(Debug)]
pub struct SeedVerdict {
    /// The seed checked.
    pub seed: u64,
    /// Fingerprint of the schedule the seed induced.
    pub fingerprint: u64,
    /// Closed-trace length the seed generated.
    pub events: usize,
    /// Violations found (empty = the seed passed).
    pub violations: Vec<Violation>,
}

/// A reproducible failure artifact: seed, minimized trace, and the
/// command line that replays it.
#[derive(Debug)]
pub struct FailingSeed {
    /// The offending seed.
    pub seed: u64,
    /// Setup the failure occurred under.
    pub setup: SimSetup,
    /// Violations on the *shrunk* trace.
    pub violations: Vec<Violation>,
    /// Delta-debugged minimal trace still exhibiting the failure.
    pub trace: Vec<TimedEvent>,
}

impl FailingSeed {
    /// The `wdmcast sim` invocation that replays this failure.
    pub fn repro(&self) -> String {
        self.setup.repro_command(self.seed)
    }
}

impl fmt::Display for FailingSeed {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "seed {} failed on {} ({} violation(s), trace shrunk to {} event(s))",
            self.seed,
            self.setup.backend.label(),
            self.violations.len(),
            self.trace.len(),
        )?;
        for v in &self.violations {
            writeln!(f, "  - {v}")?;
        }
        writeln!(f, "  minimal trace:")?;
        for ev in &self.trace {
            writeln!(f, "    t={:.2} {:?}", ev.time, ev.event)?;
        }
        write!(f, "  reproduce: {}", self.repro())
    }
}

/// Aggregate of a seed sweep.
#[derive(Debug)]
pub struct SweepReport {
    /// Seeds checked.
    pub checked: usize,
    /// Distinct schedule fingerprints observed (proof the sweep explored
    /// genuinely different interleavings).
    pub distinct_schedules: usize,
    /// Every failing seed, shrunk.
    pub failures: Vec<FailingSeed>,
}
