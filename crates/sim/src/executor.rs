//! The deterministic executor.
//!
//! One function, [`simulate`], runs a whole engine lifetime — submit,
//! shard processing, parked retries, fault injection, drain — as a
//! single-threaded loop over a virtual clock. The concurrent engine's
//! moving parts become *cooperatively scheduled actions*:
//!
//! * **Submit** — the client thread hands the next trace event to its
//!   shard's queue (sharding is the engine's own `shard_of`).
//! * **Deliver** — a shard pops its queue head and applies it through
//!   the very same [`ShardCore`] logic the threaded engine runs.
//! * **Retry** — a shard whose earliest parked request is due retries it.
//! * **Inject** — the next scripted fault fires through a real
//!   [`FaultHandle`].
//!
//! At every step the scheduler picks among the currently enabled actions
//! with one [`ChoiceStream`] decision; when nothing is runnable the
//! virtual clock jumps straight to the earliest parked retry. No wall
//! clock, no threads, no sockets — the same seed replays the same
//! interleaving, bit for bit, including every backoff and deadline.
//!
//! [`ShardCore`]: wdm_runtime::ShardCore
//! [`FaultHandle`]: wdm_runtime::FaultHandle

use crate::schedule::ChoiceStream;
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::Arc;
use std::time::Duration;
use wdm_runtime::{
    Backend, EngineCore, RequestOutcome, RuntimeConfig, RuntimeReport, VirtualClock,
};
use wdm_workload::chaos::{FaultAction, TimedFault};
use wdm_workload::{TimedEvent, TraceEvent};

/// How the executor resolves scheduling choices.
pub enum Scheduler<'a> {
    /// Always run the highest-priority enabled action: deliver before
    /// retrying, retry before injecting, inject before submitting. With
    /// one shard this is exactly the serial reference semantics — every
    /// event fully processed, in trace order, faults fired at their
    /// trace position.
    Serial,
    /// Draw every decision from a seeded [`ChoiceStream`].
    Random(&'a mut ChoiceStream),
}

/// Executor shape: shard count plus the engine tunables.
#[derive(Debug, Clone)]
pub struct SimParams {
    /// Number of cooperatively scheduled shards.
    pub shards: usize,
    /// Submission window: each Submit step enqueues up to this many
    /// consecutive trace events, and a shard delivery drains its whole
    /// queue through [`ShardCore::handle_batch`] (one backend lock per
    /// delivery) instead of popping one event. `1` (the default) is the
    /// classic single-event executor. A window never crosses a fault's
    /// eligibility point, so fault ordering relative to the trace is
    /// identical in both modes.
    ///
    /// [`ShardCore::handle_batch`]: wdm_runtime::ShardCore::handle_batch
    pub batch: usize,
    /// Engine tunables (deadline, backoff, retry budget). `workers` and
    /// `snapshot_every` are ignored — the executor owns scheduling.
    pub runtime: RuntimeConfig,
}

impl Default for SimParams {
    fn default() -> Self {
        SimParams {
            shards: 4,
            batch: 1,
            runtime: RuntimeConfig::default(),
        }
    }
}

/// Everything one simulated run produced.
#[derive(Debug)]
pub struct SimRun<B> {
    /// Terminal outcome of each trace event, by trace index. `None`
    /// means the event never resolved — itself a reportable violation.
    pub outcomes: Vec<Option<RequestOutcome>>,
    /// The engine's final report (summary counters, consistency check).
    pub report: RuntimeReport<B>,
    /// Virtual seconds the run spanned (only parked retries advance it).
    pub virtual_secs: f64,
}

fn source_port(event: &TraceEvent) -> u32 {
    match event {
        TraceEvent::Connect(conn) => conn.source().port.0,
        TraceEvent::Disconnect(src) => src.port.0,
    }
}

/// Run `trace` (and scripted `faults`) against `backend` under one
/// deterministic interleaving. A fault becomes eligible once the next
/// event to submit is at or past its timestamp (or the trace is
/// exhausted); the scheduler decides exactly when it fires within its
/// eligibility window.
pub fn simulate<B: Backend>(
    backend: B,
    trace: &[TimedEvent],
    faults: &[TimedFault],
    params: &SimParams,
    mut sched: Scheduler<'_>,
) -> SimRun<B> {
    let shards_n = params.shards.max(1);
    let batch_n = params.batch.max(1);
    let core = EngineCore::new(backend);
    let clock = VirtualClock::new();
    let mut shards: Vec<_> = (0..shards_n)
        .map(|_| core.shard(params.runtime.clone(), clock.clone()))
        .collect();
    let handle = core.fault_handle();
    let outcomes: Arc<Mutex<Vec<Option<RequestOutcome>>>> =
        Arc::new(Mutex::new(vec![None; trace.len()]));
    let mut queues: Vec<VecDeque<(usize, TimedEvent)>> = vec![VecDeque::new(); shards_n];
    let mut next_ev = 0usize;
    let mut next_fault = 0usize;

    #[derive(Clone, Copy)]
    enum Action {
        Deliver(usize),
        Retry(usize),
        Inject,
        Submit,
    }

    let mut actions: Vec<Action> = Vec::new();
    loop {
        // Enumerate enabled actions in a fixed priority order; the
        // serial scheduler always takes the first.
        actions.clear();
        for (s, q) in queues.iter().enumerate() {
            if !q.is_empty() {
                actions.push(Action::Deliver(s));
            }
        }
        for (s, shard) in shards.iter().enumerate() {
            if shard.next_due() == Some(Duration::ZERO) {
                actions.push(Action::Retry(s));
            }
        }
        if next_fault < faults.len() {
            let due = faults[next_fault].time;
            if next_ev >= trace.len() || trace[next_ev].time >= due {
                actions.push(Action::Inject);
            }
        }
        if next_ev < trace.len() {
            actions.push(Action::Submit);
        }

        if actions.is_empty() {
            // Only parked retries (if anything) remain: jump the clock
            // to the earliest one, or quiesce.
            match shards.iter().filter_map(|s| s.next_due()).min() {
                Some(wait) => {
                    clock.advance(wait.max(Duration::from_nanos(1)));
                    continue;
                }
                None => break,
            }
        }

        let pick = match &mut sched {
            Scheduler::Serial => 0,
            Scheduler::Random(choices) => choices.choose(actions.len()),
        };
        match actions[pick] {
            Action::Deliver(s) => {
                if batch_n > 1 {
                    let jobs: Vec<_> = std::mem::take(&mut queues[s])
                        .into_iter()
                        .map(|(idx, ev)| {
                            let slot = Arc::clone(&outcomes);
                            let done = Box::new(move |o| {
                                slot.lock()[idx] = Some(o);
                            })
                                as wdm_runtime::OutcomeCallback;
                            (ev, Some(done))
                        })
                        .collect();
                    shards[s].handle_batch(jobs);
                } else {
                    let (idx, ev) = queues[s].pop_front().expect("enabled ⇒ non-empty");
                    let slot = Arc::clone(&outcomes);
                    shards[s].handle_event(
                        ev,
                        Some(Box::new(move |o| {
                            slot.lock()[idx] = Some(o);
                        })),
                    );
                }
            }
            Action::Retry(s) => shards[s].retry_due(),
            Action::Inject => {
                match faults[next_fault].action {
                    FaultAction::Fail(f) => {
                        handle.inject(f);
                    }
                    FaultAction::Repair(f) => {
                        handle.repair(f);
                    }
                }
                next_fault += 1;
            }
            Action::Submit => {
                // First event unconditionally, then extend the window —
                // but never past a fault's eligibility point, so the
                // injection fires at the same trace position whether or
                // not submission is batched.
                let mut taken = 0;
                while next_ev < trace.len()
                    && (taken == 0
                        || (taken < batch_n
                            && !(next_fault < faults.len()
                                && trace[next_ev].time >= faults[next_fault].time)))
                {
                    let ev = trace[next_ev].clone();
                    let s = core.shard_of(source_port(&ev.event), shards_n);
                    queues[s].push_back((next_ev, ev));
                    next_ev += 1;
                    taken += 1;
                }
            }
        }
    }

    drop(shards);
    let virtual_secs = clock.elapsed().as_secs_f64();
    let report = core.finish(virtual_secs);
    let outcomes = std::mem::take(&mut *outcomes.lock());
    SimRun {
        outcomes,
        report,
        virtual_secs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wdm_core::{Endpoint, MulticastConnection, MulticastModel, NetworkConfig};
    use wdm_fabric::CrossbarSession;

    fn crossbar() -> CrossbarSession {
        CrossbarSession::new(NetworkConfig::new(4, 1), MulticastModel::Msw)
    }

    fn ev(time: f64, event: TraceEvent) -> TimedEvent {
        TimedEvent { time, event }
    }

    fn conn(src: u32, dst: u32) -> MulticastConnection {
        MulticastConnection::unicast(Endpoint::new(src, 0), Endpoint::new(dst, 0))
    }

    #[test]
    fn serial_roundtrip_admits_and_departs() {
        let trace = vec![
            ev(0.0, TraceEvent::Connect(conn(0, 2))),
            ev(1.0, TraceEvent::Disconnect(Endpoint::new(0, 0))),
        ];
        let run = simulate(
            crossbar(),
            &trace,
            &[],
            &SimParams::default(),
            Scheduler::Serial,
        );
        assert_eq!(run.outcomes[0], Some(RequestOutcome::Admitted));
        assert_eq!(run.outcomes[1], Some(RequestOutcome::Departed));
        assert!(run.report.is_clean());
        assert_eq!(run.report.summary.active, 0);
        assert_eq!(run.virtual_secs, 0.0, "nothing parked ⇒ no virtual time");
    }

    #[test]
    fn busy_conflict_is_absorbed_by_virtual_retry() {
        // Both sources want dst 2 on a *closed* trace. Cross-shard
        // reordering may admit either first — the loser parks — but the
        // retry loop must absorb the conflict under every schedule, and
        // every event must resolve exactly as the serial order does.
        let trace = vec![
            ev(0.0, TraceEvent::Connect(conn(0, 2))),
            ev(1.0, TraceEvent::Disconnect(Endpoint::new(0, 0))),
            ev(1.1, TraceEvent::Connect(conn(1, 2))),
            ev(2.0, TraceEvent::Disconnect(Endpoint::new(1, 0))),
        ];
        for seed in 0..50 {
            let mut cs = ChoiceStream::new(seed);
            let run = simulate(
                crossbar(),
                &trace,
                &[],
                &SimParams::default(),
                Scheduler::Random(&mut cs),
            );
            assert_eq!(run.outcomes[0], Some(RequestOutcome::Admitted), "{seed}");
            assert_eq!(run.outcomes[1], Some(RequestOutcome::Departed), "{seed}");
            assert_eq!(run.outcomes[2], Some(RequestOutcome::Admitted), "{seed}");
            assert_eq!(run.outcomes[3], Some(RequestOutcome::Departed), "{seed}");
            assert!(run.report.is_clean(), "{seed}: {:?}", run.report.errors);
            assert_eq!(run.report.summary.expired, 0, "{seed}");
        }
    }

    #[test]
    fn same_seed_is_bit_identical() {
        let trace = vec![
            ev(0.0, TraceEvent::Connect(conn(0, 2))),
            ev(0.1, TraceEvent::Connect(conn(1, 3))),
            ev(1.0, TraceEvent::Disconnect(Endpoint::new(0, 0))),
            ev(1.1, TraceEvent::Disconnect(Endpoint::new(1, 0))),
        ];
        let run_with = |seed: u64| {
            let mut cs = ChoiceStream::new(seed);
            let run = simulate(
                crossbar(),
                &trace,
                &[],
                &SimParams::default(),
                Scheduler::Random(&mut cs),
            );
            (run.outcomes.clone(), cs.fingerprint(), run.virtual_secs)
        };
        assert_eq!(run_with(7), run_with(7));
    }

    #[test]
    fn unclosed_trace_expires_at_the_virtual_deadline() {
        // src 0 never departs, so src 1's rival connect must expire —
        // and the virtual clock must show at least the deadline passed,
        // in microseconds of wall time.
        let trace = vec![
            ev(0.0, TraceEvent::Connect(conn(0, 2))),
            ev(0.1, TraceEvent::Connect(conn(1, 2))),
        ];
        let params = SimParams {
            shards: 2,
            runtime: RuntimeConfig {
                max_retries: u32::MAX,
                ..RuntimeConfig::default()
            },
            ..SimParams::default()
        };
        let run = simulate(crossbar(), &trace, &[], &params, Scheduler::Serial);
        assert_eq!(run.outcomes[1], Some(RequestOutcome::Expired));
        let deadline = params.runtime.deadline.as_secs_f64();
        assert!(
            run.virtual_secs >= deadline,
            "stall ran to the deadline: {} < {deadline}",
            run.virtual_secs
        );
        assert!(
            run.virtual_secs <= deadline + params.runtime.max_backoff.as_secs_f64() + 1e-6,
            "deadline bounds the stall: {}",
            run.virtual_secs
        );
    }
}
