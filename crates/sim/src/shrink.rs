//! Delta-debugging trace minimization.
//!
//! A failing seed usually fails on a few-hundred-event churn trace;
//! the bug report wants the three events that matter. [`ddmin`] is the
//! classic greedy minimizer: try dropping ever-smaller chunks of the
//! input, keep any reduction that still fails, stop when the input is
//! 1-minimal (no single unit can be removed).
//!
//! The unit of removal is *not* a raw trace event. Removing a `Connect`
//! while keeping its `Disconnect` would manufacture an unknown-source
//! departure — noise that can itself trip the checker and hijack the
//! minimization toward a different bug. [`trace_units`] therefore pairs
//! each connect with its matching disconnect and shrinks over those
//! pairs, so every candidate trace stays legal. The failure predicate
//! should additionally pin the violation *class* (see
//! [`crate::oracle::Violation::class`]) so a shrunk trace reproduces the
//! original failure, not merely *a* failure.

use wdm_workload::{TimedEvent, TraceEvent};

/// Minimize `items` under `fails` (which must hold for the full input).
/// Returns a subsequence, in original order, on which `fails` still
/// holds and from which no single item can be dropped.
pub fn ddmin<T: Clone, F: FnMut(&[T]) -> bool>(items: &[T], mut fails: F) -> Vec<T> {
    let mut cur: Vec<T> = items.to_vec();
    let mut granularity = 2usize;
    while cur.len() >= 2 {
        let chunk = cur.len().div_ceil(granularity);
        let mut reduced = false;
        let mut start = 0;
        while start < cur.len() {
            let end = (start + chunk).min(cur.len());
            // Complement of cur[start..end].
            let candidate: Vec<T> = cur[..start]
                .iter()
                .chain(cur[end..].iter())
                .cloned()
                .collect();
            if !candidate.is_empty() && fails(&candidate) {
                cur = candidate;
                granularity = granularity.saturating_sub(1).max(2);
                reduced = true;
                break;
            }
            start = end;
        }
        if !reduced {
            if chunk <= 1 {
                break;
            }
            granularity = (granularity * 2).min(cur.len());
        }
    }
    cur
}

/// One shrinkable unit of a trace: a connect paired with its matching
/// disconnect (if any), tagged with the original indices so a reduced
/// selection can be flattened back into original order.
#[derive(Debug, Clone)]
pub struct TraceUnit {
    events: Vec<(usize, TimedEvent)>,
}

/// Group a trace into connect+disconnect units. Each `Disconnect` is
/// attached to the most recent open `Connect` from the same source
/// endpoint; a disconnect with no open connect becomes its own unit.
pub fn trace_units(trace: &[TimedEvent]) -> Vec<TraceUnit> {
    let mut units: Vec<TraceUnit> = Vec::new();
    // Source endpoint -> index into `units` of its currently open unit.
    let mut open: std::collections::HashMap<wdm_core::Endpoint, usize> = Default::default();
    for (i, ev) in trace.iter().enumerate() {
        match &ev.event {
            TraceEvent::Connect(c) => {
                open.insert(c.source(), units.len());
                units.push(TraceUnit {
                    events: vec![(i, ev.clone())],
                });
            }
            TraceEvent::Disconnect(src) => match open.remove(src) {
                Some(u) => units[u].events.push((i, ev.clone())),
                None => units.push(TraceUnit {
                    events: vec![(i, ev.clone())],
                }),
            },
        }
    }
    units
}

/// Flatten a selection of units back into a trace, restoring original
/// event order.
pub fn flatten_units(units: &[TraceUnit]) -> Vec<TimedEvent> {
    let mut indexed: Vec<(usize, TimedEvent)> = units
        .iter()
        .flat_map(|u| u.events.iter().cloned())
        .collect();
    indexed.sort_by_key(|(i, _)| *i);
    indexed.into_iter().map(|(_, ev)| ev).collect()
}

/// Shrink a trace at the connect/disconnect-unit granularity: the
/// smallest legal sub-trace on which `fails` still holds.
pub fn shrink_trace<F: FnMut(&[TimedEvent]) -> bool>(
    trace: &[TimedEvent],
    mut fails: F,
) -> Vec<TimedEvent> {
    let units = trace_units(trace);
    let kept = ddmin(&units, |sel| fails(&flatten_units(sel)));
    flatten_units(&kept)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wdm_core::{Endpoint, MulticastConnection};

    #[test]
    fn ddmin_finds_a_single_culprit() {
        let items: Vec<u32> = (0..64).collect();
        let shrunk = ddmin(&items, |s| s.contains(&37));
        assert_eq!(shrunk, vec![37]);
    }

    #[test]
    fn ddmin_keeps_interacting_pairs() {
        let items: Vec<u32> = (0..32).collect();
        let shrunk = ddmin(&items, |s| s.contains(&3) && s.contains(&29));
        assert_eq!(shrunk, vec![3, 29]);
    }

    fn ev(time: f64, event: TraceEvent) -> TimedEvent {
        TimedEvent { time, event }
    }

    #[test]
    fn units_pair_connects_with_their_disconnects() {
        let a = Endpoint::new(0, 0);
        let b = Endpoint::new(1, 0);
        let trace = vec![
            ev(
                0.0,
                TraceEvent::Connect(MulticastConnection::unicast(a, Endpoint::new(2, 0))),
            ),
            ev(
                1.0,
                TraceEvent::Connect(MulticastConnection::unicast(b, Endpoint::new(3, 0))),
            ),
            ev(2.0, TraceEvent::Disconnect(a)),
            ev(3.0, TraceEvent::Disconnect(b)),
        ];
        let units = trace_units(&trace);
        assert_eq!(units.len(), 2);
        // Dropping unit 0 keeps b's connect AND disconnect together.
        let reduced = flatten_units(&units[1..]);
        assert_eq!(reduced.len(), 2);
        assert!(matches!(&reduced[0].event, TraceEvent::Connect(c) if c.source() == b));
        assert!(matches!(&reduced[1].event, TraceEvent::Disconnect(s) if *s == b));
        // Round-trip of all units preserves the trace.
        assert_eq!(flatten_units(&units).len(), trace.len());
    }
}
