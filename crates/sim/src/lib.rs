//! # wdm-sim — deterministic simulation & conformance harness
//!
//! FoundationDB-style simulation testing for the concurrent WDM
//! admission stack: the sharded engine, the fault injector, and the
//! wire-protocol serving path all run as *cooperatively scheduled
//! tasks* in one thread over a virtual clock, with every
//! nondeterministic choice drawn from a single `u64` seed. A failure is
//! therefore a seed, a seed is a schedule, and a schedule replays bit
//! for bit.
//!
//! The layers:
//!
//! * [`schedule`] — the seeded [`ChoiceStream`]: decision log,
//!   schedule fingerprinting, forced-prefix replay.
//! * [`executor`] — [`simulate`]: a whole engine lifetime (submit,
//!   shard delivery, parked retries, fault injection, drain) as one
//!   deterministic loop over [`wdm_runtime::ShardCore`]s and a
//!   [`wdm_runtime::VirtualClock`].
//! * [`oracle`] — the serial-oracle conformance check (every
//!   interleaving of a legal closed trace must match the single-shard
//!   serial outcome, index by index) and the schedule-independent
//!   conservation invariants used for faulted runs.
//! * [`diff`] — differential backend runner: identical traces through
//!   the crossbar and a three-stage network at the Theorem 1/2 bound
//!   must agree on every admit/block verdict.
//! * [`netsim`] — scripted client/server lanes over the real codec and
//!   in-memory [`wdm_net::MemDuplex`] pipes, making stalled-window
//!   schedules schedulable.
//! * [`shrink`] — delta-debugging minimization at connect/disconnect
//!   unit granularity.
//! * [`harness`] — seed sweeps ([`SimSetup`]) and replayable
//!   [`FailingSeed`] artifacts (`wdmcast sim --seed N`).
//! * [`scenario`] — the [`Scenario`] builder: the single validated
//!   entry point mapping an experiment description (geometry, backend
//!   kind, fault plan, workload, repack/concurrency) to a runnable
//!   [`SimSetup`] or live backend.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod diff;
pub mod executor;
pub mod harness;
pub mod netsim;
pub mod oracle;
pub mod scenario;
pub mod schedule;
pub mod shrink;

pub use diff::{diff_runs, DiffEntry};
pub use executor::{simulate, Scheduler, SimParams, SimRun};
pub use harness::{
    BackendKind, FailingSeed, GraphSpec, SeedVerdict, SimSetup, SweepReport, WorkloadSpec,
};
pub use netsim::NetSim;
pub use oracle::{conformance_violations, invariant_violations, Violation};
pub use scenario::{parse_backend_arg, Scenario};
pub use schedule::ChoiceStream;
pub use shrink::{ddmin, shrink_trace, trace_units};
