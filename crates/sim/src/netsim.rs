//! Simulated client/server lanes over the real wire codec.
//!
//! [`NetSim`] runs the full protocol path — `encode_request` on a
//! client, frame transport, `decode_request` on the server, shard
//! admission, `Response::from_outcome`, frame transport back, client
//! decode — with every hop an explicit, schedulable step over
//! [`MemDuplex`] buffers and a virtual clock. Nothing moves until the
//! test (or the seeded driver, [`NetSim::run_random`]) says so, which
//! makes *stalled-window* schedules first-class: a departure that would
//! free a parked admission can be held unsent in its client's window
//! while the parked request's deadline runs, deterministically.
//!
//! Each lane models one remote controller: a script of requests, a
//! window bounding how many may be outstanding (sent but their
//! responses not yet read), and its own duplex pipe pair.

use crate::schedule::ChoiceStream;
use std::collections::VecDeque;
use std::time::Duration;
use wdm_net::codec::{decode_request, decode_response, encode_request, encode_response};
use wdm_net::protocol::{Request, Response};
use wdm_net::{MemDuplex, Transport};
use wdm_runtime::{Backend, EngineCore, RuntimeConfig, RuntimeReport, ShardCore, VirtualClock};
use wdm_workload::{TimedEvent, TraceEvent};

/// One scripted remote controller.
struct LaneState {
    client: MemDuplex,
    server: MemDuplex,
    window: usize,
    script: VecDeque<TraceEvent>,
    next_id: u64,
    /// Sent requests whose responses the client has not read yet.
    outstanding: usize,
    responses: Vec<(u64, Response)>,
}

/// A decoded request parked in a shard's inbound queue.
struct PendingJob {
    id: u64,
    lane: usize,
    event: TraceEvent,
}

/// The simulated serving stack: lanes of scripted clients in front of
/// cooperatively scheduled admission shards.
pub struct NetSim<B: Backend> {
    core: EngineCore<B>,
    clock: VirtualClock,
    shards: Vec<ShardCore<B, VirtualClock>>,
    queues: Vec<VecDeque<PendingJob>>,
    lanes: Vec<LaneState>,
}

impl<B: Backend> NetSim<B> {
    /// Build a sim over `backend` with one lane per `(script, window)`
    /// pair and `shards` admission shards.
    pub fn new(
        backend: B,
        lane_scripts: Vec<(Vec<TraceEvent>, usize)>,
        shards: usize,
        runtime: RuntimeConfig,
    ) -> Self {
        let shards = shards.max(1);
        let core = EngineCore::new(backend);
        let clock = VirtualClock::new();
        let shard_cores = (0..shards)
            .map(|_| core.shard(runtime.clone(), clock.clone()))
            .collect();
        let lanes = lane_scripts
            .into_iter()
            .map(|(script, window)| {
                let (client, server) = MemDuplex::pair();
                LaneState {
                    client,
                    server,
                    window: window.max(1),
                    script: script.into(),
                    next_id: 1,
                    outstanding: 0,
                    responses: Vec::new(),
                }
            })
            .collect();
        NetSim {
            core,
            clock,
            shards: shard_cores,
            queues: (0..shards).map(|_| VecDeque::new()).collect(),
            lanes,
        }
    }

    /// Lane `l` may send its next scripted request (script nonempty and
    /// window not full).
    pub fn can_send(&self, l: usize) -> bool {
        let lane = &self.lanes[l];
        !lane.script.is_empty() && lane.outstanding < lane.window
    }

    /// Encode and send lane `l`'s next scripted request.
    pub fn client_send(&mut self, l: usize) {
        debug_assert!(self.can_send(l));
        let lane = &mut self.lanes[l];
        let ev = lane.script.pop_front().expect("can_send checked");
        let id = lane.next_id;
        lane.next_id += 1;
        lane.outstanding += 1;
        lane.client
            .send_bytes(&encode_request(id, &Request::from(&ev)))
            .expect("in-memory send is infallible");
    }

    /// Send an out-of-script `Ping` on lane `l` (it occupies a window
    /// slot like any other outstanding request).
    pub fn ping(&mut self, l: usize) {
        let lane = &mut self.lanes[l];
        let id = lane.next_id;
        lane.next_id += 1;
        lane.outstanding += 1;
        lane.client
            .send_bytes(&encode_request(id, &Request::Ping))
            .expect("in-memory send is infallible");
    }

    /// A complete request frame is buffered on lane `l`'s server side.
    pub fn server_ready(&self, l: usize) -> bool {
        self.lanes[l].server.frame_ready()
    }

    /// Decode lane `l`'s next request frame and route it to its shard's
    /// queue (`Ping` is answered inline, as the real server does).
    pub fn server_recv(&mut self, l: usize) {
        let lane = &mut self.lanes[l];
        let frame = lane
            .server
            .try_recv_frame()
            .expect("well-formed frames only")
            .expect("server_ready checked");
        let req = decode_request(&frame).expect("scripted requests are legal");
        let event = match req {
            Request::Connect(conn) => TraceEvent::Connect(conn),
            Request::Disconnect(src) => TraceEvent::Disconnect(src),
            Request::Ping => {
                lane.server
                    .send_bytes(&encode_response(frame.id, &Response::Pong))
                    .expect("in-memory send is infallible");
                return;
            }
            other => panic!("netsim lanes only script data requests, got {other:?}"),
        };
        let shard = self.core.shard_of(source_port(&event), self.shards.len());
        self.queues[shard].push_back(PendingJob {
            id: frame.id,
            lane: l,
            event,
        });
    }

    /// Requests queued at shard `s` awaiting delivery.
    pub fn queued(&self, s: usize) -> usize {
        self.queues[s].len()
    }

    /// Deliver shard `s`'s next queued request to the admission logic;
    /// its terminal outcome is encoded back onto the lane's server pipe.
    pub fn deliver(&mut self, s: usize) {
        let job = self.queues[s].pop_front().expect("queued request");
        let server = self.lanes[job.lane].server.clone();
        let id = job.id;
        let timed = TimedEvent {
            time: self.clock.elapsed().as_secs_f64(),
            event: job.event,
        };
        self.shards[s].handle_event(
            timed,
            Some(Box::new(move |outcome| {
                server
                    .send_bytes(&encode_response(id, &Response::from_outcome(outcome)))
                    .expect("in-memory send is infallible");
            })),
        );
    }

    /// Retry shard `s`'s due parked requests.
    pub fn retry(&mut self, s: usize) {
        self.shards[s].retry_due();
    }

    /// Parked requests on shard `s`.
    pub fn parked(&self, s: usize) -> usize {
        self.shards[s].parked_len()
    }

    /// A complete response frame is buffered on lane `l`'s client side.
    pub fn client_ready(&self, l: usize) -> bool {
        self.lanes[l].client.frame_ready()
    }

    /// Read and decode lane `l`'s next response, freeing window space.
    pub fn client_recv(&mut self, l: usize) -> (u64, Response) {
        let lane = &mut self.lanes[l];
        let frame = lane
            .client
            .try_recv_frame()
            .expect("well-formed frames only")
            .expect("client_ready checked");
        let resp = decode_response(&frame).expect("server responses are legal");
        lane.outstanding = lane.outstanding.saturating_sub(1);
        lane.responses.push((frame.id, resp.clone()));
        (frame.id, resp)
    }

    /// Earliest parked-retry due time across shards.
    pub fn next_due(&self) -> Option<Duration> {
        self.shards.iter().filter_map(|s| s.next_due()).min()
    }

    /// Advance the virtual clock.
    pub fn advance(&self, d: Duration) {
        self.clock.advance(d.max(Duration::from_nanos(1)));
    }

    /// Responses lane `l` has read so far, in arrival order.
    pub fn responses(&self, l: usize) -> &[(u64, Response)] {
        &self.lanes[l].responses
    }

    /// Virtual seconds elapsed.
    pub fn virtual_secs(&self) -> f64 {
        self.clock.elapsed().as_secs_f64()
    }

    /// Tear down the shards and produce the engine's final report.
    pub fn finish(self) -> RuntimeReport<B> {
        let NetSim {
            core,
            clock,
            shards,
            queues,
            lanes,
        } = self;
        debug_assert!(queues.iter().all(|q| q.is_empty()), "undelivered requests");
        drop(shards);
        drop(lanes);
        core.finish(clock.elapsed().as_secs_f64())
    }

    /// Drive the whole sim to quiescence under seeded scheduling: every
    /// enabled hop (client send, server decode, shard delivery, due
    /// retry, client read) is one scheduler choice; when nothing is
    /// enabled the clock jumps to the earliest parked retry.
    pub fn run_random(&mut self, choices: &mut ChoiceStream) {
        #[derive(Clone, Copy)]
        enum Step {
            Send(usize),
            ServerRecv(usize),
            Deliver(usize),
            Retry(usize),
            ClientRecv(usize),
        }
        loop {
            let mut steps = Vec::new();
            for l in 0..self.lanes.len() {
                if self.can_send(l) {
                    steps.push(Step::Send(l));
                }
                if self.server_ready(l) {
                    steps.push(Step::ServerRecv(l));
                }
                if self.client_ready(l) {
                    steps.push(Step::ClientRecv(l));
                }
            }
            for s in 0..self.shards.len() {
                if self.queued(s) > 0 {
                    steps.push(Step::Deliver(s));
                }
                if self.shards[s].next_due() == Some(Duration::ZERO) {
                    steps.push(Step::Retry(s));
                }
            }
            if steps.is_empty() {
                match self.next_due() {
                    Some(wait) => {
                        self.advance(wait);
                        continue;
                    }
                    None => break,
                }
            }
            match steps[choices.choose(steps.len())] {
                Step::Send(l) => self.client_send(l),
                Step::ServerRecv(l) => self.server_recv(l),
                Step::Deliver(s) => self.deliver(s),
                Step::Retry(s) => self.retry(s),
                Step::ClientRecv(l) => {
                    self.client_recv(l);
                }
            }
        }
    }
}

fn source_port(event: &TraceEvent) -> u32 {
    match event {
        TraceEvent::Connect(conn) => conn.source().port.0,
        TraceEvent::Disconnect(src) => src.port.0,
    }
}
