//! Differential backend runner.
//!
//! The photonic crossbar (`CrossbarSession`) and a three-stage network
//! provisioned at the Theorem 1/2 bound are *both* supposed to be
//! nonblocking, so an identical trace driven through each — under the
//! same recorded schedule — must yield the same admit/block verdict at
//! every trace index. A divergence localizes a bug to one construction
//! (most often the three-stage routing search failing a request the
//! theorems say it must satisfy).

use crate::executor::SimRun;
use std::fmt;
use wdm_runtime::RequestOutcome;

/// One per-index disagreement between two backends on the same trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DiffEntry {
    /// Trace index of the disagreeing event.
    pub index: usize,
    /// Outcome under the first backend.
    pub a: Option<RequestOutcome>,
    /// Outcome under the second backend.
    pub b: Option<RequestOutcome>,
}

impl fmt::Display for DiffEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "event #{}: {:?} vs {:?}", self.index, self.a, self.b)
    }
}

/// Compare two runs of the same trace, index by index. Backends may
/// differ in type; only the outcome sequences are compared.
pub fn diff_runs<A, B>(a: &SimRun<A>, b: &SimRun<B>) -> Vec<DiffEntry> {
    debug_assert_eq!(a.outcomes.len(), b.outcomes.len());
    a.outcomes
        .iter()
        .zip(b.outcomes.iter())
        .enumerate()
        .filter(|(_, (x, y))| x != y)
        .map(|(index, (&a, &b))| DiffEntry { index, a, b })
        .collect()
}
