//! The [`Scenario`] builder: one validated entry point from "what
//! experiment do I want" to a runnable [`SimSetup`] / live backend.
//!
//! Before this existed, every driver (the CLI's `sim`, the benches, the
//! conformance tests) re-derived the same policy by hand: which bound
//! applies, when selection should spread, when `expect_nonblocking`
//! must drop, which flag combinations are contradictory. [`Scenario`]
//! owns that policy in one place. Construct one with
//! [`Scenario::new`], refine it with the builder setters, then either
//! [`Scenario::sim_setup`] (for seed sweeps) or [`Scenario::build`]
//! (for a live boxed backend).

use crate::harness::{BackendKind, GraphSpec, SimSetup, WorkloadSpec};
use wdm_graph::{GraphTopology, Splitting};
use wdm_multistage::{awg, bounds, SelectionStrategy};
use wdm_runtime::Backend;

/// Parse a `--backend` argument into a kind plus the implied concurrent
/// flag. Accepts everything [`BackendKind::parse`] does, plus the
/// `three-stage-cas` / `cas` spellings the CAS backend reports as its
/// own label; unknown names list every valid choice.
pub fn parse_backend_arg(s: &str) -> Result<(BackendKind, bool), String> {
    match s {
        "three-stage-cas" | "threestage-cas" | "cas" => Ok((BackendKind::ThreeStage, true)),
        _ => BackendKind::parse(s).map(|b| (b, false)).ok_or_else(|| {
            let menu: Vec<&str> = BackendKind::ALL.iter().map(|b| b.label()).collect();
            format!(
                "unknown backend {s:?}; valid backends: {}, three-stage-cas",
                menu.join(", ")
            )
        }),
    }
}

/// A declarative experiment description: geometry, backend kind, fault
/// plan, workload, repack/concurrency — everything the CLI, the sim
/// harness, the benches, and the tests need to agree on, validated
/// once.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Scenario {
    /// Which backend family (and, for graphs, which topology).
    pub backend: BackendKind,
    /// External ports per module / per graph node.
    pub n: u32,
    /// Modules per side. For [`BackendKind::Graph`] this is derived
    /// from the topology and any explicit value must match.
    pub r: u32,
    /// Wavelengths per fiber.
    pub k: u32,
    /// Middle-stage provisioning override; `None` means "exactly at the
    /// backend's nonblocking bound".
    pub m: Option<u32>,
    /// Multicast model requests are legal under.
    pub model: wdm_core::MulticastModel,
    /// Churn-trace length.
    pub steps: usize,
    /// Cooperatively scheduled shards.
    pub shards: usize,
    /// Inject a seed-derived fail/repair pair mid-trace.
    pub faulted: bool,
    /// Rearrange on hard block (three-stage only).
    pub repack: bool,
    /// Drive the CAS admission path (three-stage only).
    pub concurrent: bool,
    /// Which traffic generator produces the churn trace.
    pub workload: WorkloadSpec,
    /// Graph-backend knobs (ignored by switch-box backends).
    pub graph: GraphSpec,
}

impl Scenario {
    /// A scenario with the repo-wide defaults: `n=2, r=4, k=2`, 40
    /// steps, 4 shards, adversarial workload, fault-free, serial.
    pub fn new(backend: BackendKind) -> Scenario {
        let r = match backend {
            BackendKind::Graph { topology } => topology.nodes(),
            _ => 4,
        };
        Scenario {
            backend,
            n: 2,
            r,
            k: 2,
            m: None,
            model: wdm_core::MulticastModel::Msw,
            steps: 40,
            shards: 4,
            faulted: false,
            repack: false,
            concurrent: false,
            workload: WorkloadSpec::Adversarial,
            graph: GraphSpec::default(),
        }
    }

    /// Set the geometry (`n` ports per module, `r` modules, `k`
    /// wavelengths). For graph backends `r` is checked against the
    /// topology at [`Scenario::sim_setup`] time.
    pub fn geometry(mut self, n: u32, r: u32, k: u32) -> Scenario {
        self.n = n;
        self.r = r;
        self.k = k;
        self
    }

    /// Override the middle-stage provisioning.
    pub fn middles(mut self, m: u32) -> Scenario {
        self.m = Some(m);
        self
    }

    /// Set the multicast model.
    pub fn model(mut self, model: wdm_core::MulticastModel) -> Scenario {
        self.model = model;
        self
    }

    /// Set trace length and shard count.
    pub fn schedule(mut self, steps: usize, shards: usize) -> Scenario {
        self.steps = steps;
        self.shards = shards.max(1);
        self
    }

    /// Enable the seed-derived fault script.
    pub fn faulted(mut self, yes: bool) -> Scenario {
        self.faulted = yes;
        self
    }

    /// Enable on-block repacking.
    pub fn repack(mut self, yes: bool) -> Scenario {
        self.repack = yes;
        self
    }

    /// Enable the CAS admission path.
    pub fn concurrent(mut self, yes: bool) -> Scenario {
        self.concurrent = yes;
        self
    }

    /// Select the traffic generator.
    pub fn workload(mut self, workload: WorkloadSpec) -> Scenario {
        self.workload = workload;
        self
    }

    /// Swap the graph topology (forces the backend to
    /// [`BackendKind::Graph`] and re-derives `r`).
    pub fn topology(mut self, topology: GraphTopology) -> Scenario {
        self.backend = BackendKind::Graph { topology };
        self.r = topology.nodes();
        self
    }

    /// Set the sparse splitter placement (graph backends).
    pub fn mc_every(mut self, every: u32) -> Scenario {
        self.graph.mc_every = every;
        self
    }

    /// Set the splitting discipline (graph backends).
    pub fn splitting(mut self, splitting: Splitting) -> Scenario {
        self.graph.splitting = splitting;
        self
    }

    /// The provisioning bound this scenario is judged against, with its
    /// name for reports: Theorem 1 for the switch fabrics, the AWG pool
    /// bound for the wavelength-routed Clos (an error when `k < r`),
    /// and none for graphs — arbitrary topologies have no nonblocking
    /// theorem.
    pub fn bound(&self) -> Result<(u32, &'static str), String> {
        match self.backend {
            BackendKind::AwgClos => {
                let fsr_orders = self.k.div_ceil(self.r).max(1);
                awg::min_middles(self.n, self.r, self.k, fsr_orders)
                    .map(|m| (m, "AWG pool bound"))
                    .ok_or_else(|| {
                        format!(
                            "awg-clos needs k ≥ r (got k={}, r={}): with fewer usable channels \
                             than AWG ports some module pairs have no channel class at all",
                            self.k, self.r
                        )
                    })
            }
            BackendKind::Graph { .. } => Ok((0, "no nonblocking bound")),
            _ => Ok((bounds::theorem1_min_m(self.n, self.r).m, "Theorem 1 bound")),
        }
    }

    /// Validate every knob combination and produce the runnable
    /// [`SimSetup`]. This is the one place the cross-cutting policy
    /// lives:
    ///
    /// * `repack` and `concurrent` are three-stage capabilities and are
    ///   mutually exclusive;
    /// * an under-provisioned three-stage spreads its selection so
    ///   reachable hard blocks actually surface (unless concurrent mode
    ///   pins first-fit);
    /// * `expect_nonblocking` holds at/above the bound, needs a spare
    ///   margin (`m > bound`) under faults, and never applies to
    ///   graphs or repacking runs;
    /// * hotspot workloads must name a module that exists;
    /// * a graph scenario's `r` must agree with its topology.
    pub fn sim_setup(&self) -> Result<SimSetup, String> {
        if self.n == 0 || self.r == 0 || self.k == 0 {
            return Err("--n, --r and -k must all be at least 1".into());
        }
        if self.repack && self.backend != BackendKind::ThreeStage {
            return Err(
                "--repack needs rearrangeable routes; only the three-stage backend moves branches"
                    .into(),
            );
        }
        if self.concurrent && self.backend != BackendKind::ThreeStage {
            return Err(
                "--concurrent drives the CAS admission path; only the three-stage backend has one"
                    .into(),
            );
        }
        if self.concurrent && self.repack {
            return Err(
                "--concurrent requires RepackPolicy::Off; repack moves keep the coarse striped path"
                    .into(),
            );
        }
        if let BackendKind::Graph { topology } = self.backend {
            if self.r != topology.nodes() {
                return Err(format!(
                    "graph geometry mismatch: --r {} but {} has {} nodes (omit --r or make them agree)",
                    self.r,
                    topology,
                    topology.nodes()
                ));
            }
        }
        if let WorkloadSpec::Hotspot { hot, skew_pct } = self.workload {
            if hot >= self.r {
                return Err(format!(
                    "--hot {hot} names a module outside 0..{} (r modules / graph nodes)",
                    self.r
                ));
            }
            if skew_pct > 100 {
                return Err(format!("--hotspot {skew_pct} is a percentage (0–100)"));
            }
        }
        let (bound, _) = self.bound()?;
        let m = self.m.unwrap_or(bound);
        if matches!(self.backend, BackendKind::ThreeStage | BackendKind::AwgClos) && m == 0 {
            return Err("--m must be a positive integer".into());
        }
        let strategy = if self.backend == BackendKind::ThreeStage && m < bound && !self.concurrent {
            // Under-provisioned: spread load across middles so reachable
            // hard blocks actually surface (and become artifacts).
            SelectionStrategy::Spread
        } else {
            SelectionStrategy::FirstFit
        };
        let expect_nonblocking = if self.repack {
            false
        } else {
            match self.backend {
                BackendKind::Crossbar => true,
                BackendKind::Graph { .. } => false,
                BackendKind::ThreeStage | BackendKind::AwgClos => {
                    if self.faulted {
                        // A mid-trace kill shrinks the live middle stage
                        // by one until its repair; only a spare margin
                        // keeps the guarantee.
                        m > bound
                    } else {
                        true
                    }
                }
            }
        };
        Ok(SimSetup {
            geo: wdm_workload::adversarial::Geometry {
                n: self.n,
                r: self.r,
                k: self.k,
            },
            model: self.model,
            m,
            backend: self.backend,
            steps: self.steps,
            shards: self.shards.max(1),
            faulted: self.faulted,
            expect_nonblocking,
            strategy,
            repack: self.repack,
            concurrent: self.concurrent,
            workload: self.workload,
            graph: self.graph,
        })
    }

    /// Validate and construct the live backend this scenario drives.
    pub fn build(&self) -> Result<Box<dyn Backend>, String> {
        Ok(self.sim_setup()?.build_backend())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backend_arg_parsing_covers_the_registry() {
        for kind in BackendKind::ALL {
            let (parsed, concurrent) = parse_backend_arg(kind.label()).unwrap();
            assert_eq!(parsed.label(), kind.label());
            assert!(!concurrent);
        }
        let (kind, concurrent) = parse_backend_arg("three-stage-cas").unwrap();
        assert_eq!(kind, BackendKind::ThreeStage);
        assert!(concurrent);
        let err = parse_backend_arg("warp-drive").unwrap_err();
        for label in [
            "crossbar",
            "three-stage",
            "awg-clos",
            "graph",
            "three-stage-cas",
        ] {
            assert!(err.contains(label), "menu missing {label}: {err}");
        }
    }

    #[test]
    fn three_stage_policy_matches_the_old_cli_rules() {
        let at_bound = Scenario::new(BackendKind::ThreeStage).sim_setup().unwrap();
        assert!(at_bound.expect_nonblocking);
        assert_eq!(at_bound.strategy, SelectionStrategy::FirstFit);

        let starved = Scenario::new(BackendKind::ThreeStage)
            .middles(1)
            .sim_setup()
            .unwrap();
        assert_eq!(starved.strategy, SelectionStrategy::Spread);
        assert!(
            starved.expect_nonblocking,
            "below the bound the oracle still demands zero blocks — reachable blocks become artifacts"
        );

        let faulted = Scenario::new(BackendKind::ThreeStage)
            .faulted(true)
            .sim_setup()
            .unwrap();
        assert!(
            !faulted.expect_nonblocking,
            "at the exact bound a mid-trace kill may legitimately block"
        );
        let spare = Scenario::new(BackendKind::ThreeStage)
            .faulted(true)
            .middles(faulted.m + 1)
            .sim_setup()
            .unwrap();
        assert!(spare.expect_nonblocking);
    }

    #[test]
    fn contradictory_knobs_are_rejected() {
        assert!(Scenario::new(BackendKind::Crossbar)
            .repack(true)
            .sim_setup()
            .is_err());
        assert!(Scenario::new(BackendKind::AwgClos)
            .concurrent(true)
            .sim_setup()
            .is_err());
        assert!(Scenario::new(BackendKind::ThreeStage)
            .repack(true)
            .concurrent(true)
            .sim_setup()
            .is_err());
        // AWG needs k ≥ r.
        assert!(Scenario::new(BackendKind::AwgClos)
            .geometry(2, 4, 2)
            .sim_setup()
            .is_err());
        assert!(Scenario::new(BackendKind::DEFAULT_GRAPH)
            .workload(WorkloadSpec::Hotspot {
                hot: 99,
                skew_pct: 50
            })
            .sim_setup()
            .is_err());
    }

    #[test]
    fn graph_scenarios_derive_geometry_from_the_topology() {
        let s = Scenario::new(BackendKind::Crossbar)
            .topology(GraphTopology::Torus { rows: 3, cols: 3 })
            .geometry(1, 9, 4)
            .mc_every(3)
            .splitting(Splitting::TreeOnly);
        let setup = s.sim_setup().unwrap();
        assert_eq!(setup.geo.r, 9);
        assert!(!setup.expect_nonblocking, "graphs have no theorem");
        assert_eq!(setup.graph.mc_every, 3);
        let backend = s.build().unwrap();
        assert_eq!(backend.label(), "graph");
        assert_eq!(backend.ports_per_module(), 1);

        let mismatch = Scenario::new(BackendKind::DEFAULT_GRAPH).geometry(1, 5, 2);
        assert!(mismatch.sim_setup().is_err());
    }

    #[test]
    fn build_constructs_every_backend_kind() {
        for kind in BackendKind::ALL {
            let s = match kind {
                BackendKind::AwgClos => Scenario::new(kind).geometry(2, 4, 4),
                _ => Scenario::new(kind),
            };
            assert_eq!(s.build().unwrap().label(), kind.label());
        }
        let cas = Scenario::new(BackendKind::ThreeStage).concurrent(true);
        assert_eq!(cas.build().unwrap().label(), "three-stage-cas");
    }
}
