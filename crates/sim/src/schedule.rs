//! Seeded interleaving choices.
//!
//! Every nondeterministic decision the simulator makes — which shard
//! runs next, when a fault fires, when a client window drains — is one
//! call to [`ChoiceStream::choose`]. The stream is driven by a single
//! `u64` seed, logs every decision it hands out, and can replay a
//! recorded prefix verbatim, which gives the harness its three core
//! powers: *reproduction* (same seed → same schedule), *fingerprinting*
//! (the decision log hashes to a schedule identity, so a sweep can prove
//! it explored distinct interleavings), and *shrinking* (a minimized
//! trace replays under the exact schedule that exposed it).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A replayable stream of schedule decisions derived from one seed.
#[derive(Debug)]
pub struct ChoiceStream {
    rng: StdRng,
    /// Decisions to force before falling back to the RNG.
    forced: Vec<u32>,
    pos: usize,
    log: Vec<u32>,
}

impl ChoiceStream {
    /// A fresh stream for `seed`.
    pub fn new(seed: u64) -> Self {
        Self::replaying(seed, Vec::new())
    }

    /// A stream that replays `forced` decisions first (each taken modulo
    /// the number of enabled actions at its step), then continues from
    /// the seed's RNG. Used to re-run a recorded schedule against a
    /// shrunk trace.
    pub fn replaying(seed: u64, forced: Vec<u32>) -> Self {
        ChoiceStream {
            rng: StdRng::seed_from_u64(seed),
            forced,
            pos: 0,
            log: Vec::new(),
        }
    }

    /// Pick one of `n` enabled actions (`n ≥ 1`); returns an index in
    /// `0..n` and logs it.
    pub fn choose(&mut self, n: usize) -> usize {
        debug_assert!(n >= 1, "choose among at least one action");
        let pick = match self.forced.get(self.pos) {
            Some(&f) => f as usize % n,
            None => self.rng.gen_range(0..n),
        };
        self.pos += 1;
        self.log.push(pick as u32);
        pick
    }

    /// Every decision handed out so far, in order.
    pub fn log(&self) -> &[u32] {
        &self.log
    }

    /// FNV-1a hash of the decision log — the schedule's identity. Two
    /// runs with equal fingerprints executed the same interleaving.
    pub fn fingerprint(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &c in &self.log {
            for b in c.to_le_bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_decisions() {
        let mut a = ChoiceStream::new(42);
        let mut b = ChoiceStream::new(42);
        let da: Vec<usize> = (0..100).map(|i| a.choose(3 + i % 5)).collect();
        let db: Vec<usize> = (0..100).map(|i| b.choose(3 + i % 5)).collect();
        assert_eq!(da, db);
        assert_eq!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ChoiceStream::new(1);
        let mut b = ChoiceStream::new(2);
        for _ in 0..50 {
            a.choose(7);
            b.choose(7);
        }
        assert_ne!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn forced_prefix_replays_then_falls_back() {
        let mut s = ChoiceStream::replaying(9, vec![2, 0, 5]);
        assert_eq!(s.choose(4), 2);
        assert_eq!(s.choose(4), 0);
        assert_eq!(s.choose(4), 1, "5 mod 4");
        // Beyond the prefix: deterministic RNG continuation.
        let x = s.choose(4);
        let mut t = ChoiceStream::replaying(9, vec![2, 0, 5]);
        for _ in 0..3 {
            t.choose(4);
        }
        assert_eq!(t.choose(4), x);
    }

    #[test]
    fn choices_stay_in_range() {
        let mut s = ChoiceStream::new(77);
        for n in 1..40 {
            assert!(s.choose(n) < n);
        }
    }
}
