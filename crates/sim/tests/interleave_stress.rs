//! Deterministic interleaving stress for the CAS commit path.
//!
//! The concurrent backend exposes `#[doc(hidden)]` pause points
//! ([`PausePoint::PreCommit`], [`PausePoint::BeforeLeg`]) fired on the
//! committing thread between its optimistic probe and each word commit.
//! The tests here park one thread inside that window with a barrier,
//! let a rival commit the very word the parked probe validated, and
//! then assert the exact recovery the design promises: the stale CAS
//! revalidation fails, committed legs roll back newest-first, the input
//! word is released, and the retry (or the coarse all-stripes path)
//! re-routes on surviving capacity — no double-occupancy, no leaked
//! wavelengths, and the seqlock epoch counts exactly one aborted pair.
//!
//! A third test replaces the barrier with a seeded two-thread scheduler
//! (a shared [`ChoiceStream`] drawing a yield budget at every pause
//! point — no new dependencies), hammering one contended middle word
//! from both sides across many seeds.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Barrier};
use wdm_core::{Endpoint, MulticastConnection, MulticastModel};
use wdm_multistage::{bounds, ConcurrentThreeStage, Construction, PausePoint, ThreeStageParams};
use wdm_sim::ChoiceStream;

/// (n=2, m=bound, r=2, k=1): four external ports, modules {0,1}, one
/// wavelength — every middle link word holds at most one connection, so
/// two admissions into the same output module through the same middle
/// switch MUST collide on that word.
fn contended_net() -> ConcurrentThreeStage {
    let (n, r, k) = (2, 2, 1);
    let m = bounds::theorem1_min_m(n, r).m;
    assert!(m >= 2, "retry needs a second middle switch");
    ConcurrentThreeStage::new(
        ThreeStageParams::new(n, m, r, k),
        Construction::MswDominant,
        MulticastModel::Msw,
    )
}

fn conn(src: (u32, u32), dsts: &[(u32, u32)]) -> MulticastConnection {
    MulticastConnection::new(
        Endpoint::new(src.0, src.1),
        dsts.iter().map(|&(p, w)| Endpoint::new(p, w)),
    )
    .unwrap()
}

/// Probe/commit overlap on one middle word: thread A validates middle 0
/// for out-module 1, parks at `PreCommit`, and the rival commits the
/// same word first. A's revalidation inside the CAS loop must see the
/// stolen wavelength, abort (one extra epoch pair), and the bounded
/// retry must land the route on middle 1 — both admitted, zero leaks.
#[test]
fn racing_commit_on_same_middle_word_forces_retry() {
    let mut net = contended_net();
    let trap = Arc::new(AtomicBool::new(true));
    let parked = Arc::new(Barrier::new(2));
    let resume = Arc::new(Barrier::new(2));
    {
        let (trap, parked, resume) = (trap.clone(), parked.clone(), resume.clone());
        net.set_pause_hook(Some(Arc::new(move |p: PausePoint| {
            if matches!(p, PausePoint::PreCommit { middle: 0 })
                && trap.swap(false, Ordering::AcqRel)
            {
                parked.wait();
                resume.wait();
            }
        })));
    }
    let net = Arc::new(net);

    // Thread A: src port 0 (module 0) → dest port 2 (out-module 1).
    let a = {
        let net = net.clone();
        std::thread::spawn(move || net.connect_shared(&conn((0, 0), &[(2, 0)])))
    };
    parked.wait(); // A has validated middle 0 and sits before its first CAS.

    // Rival (this thread): src port 2 (module 1) → dest port 3
    // (out-module 1). Same middle word (0 → out-module 1), and with
    // k=1 the word is now full.
    let b_route = net.connect_shared(&conn((2, 0), &[(3, 0)])).unwrap();
    assert_eq!(
        b_route.branches[0].middle, 0,
        "rival took the probed middle"
    );

    resume.wait();
    let a_route = a.join().unwrap().expect("retry must re-route, not fail");
    assert_ne!(
        a_route.branches[0].middle, 0,
        "stale probe committed over the rival"
    );

    // Exactly one aborted commit: epoch pairs = 2 admissions + 1 abort.
    let epoch = net.commit_epoch();
    assert_eq!(epoch.started, 3, "expected exactly one rolled-back commit");
    assert_eq!(epoch.started, epoch.finished);
    assert_eq!(net.active_connections(), 2);
    assert!(net.check_consistency().is_empty());

    // Exact rollback: tearing both down leaves no residue anywhere.
    net.disconnect_shared(Endpoint::new(0, 0)).unwrap();
    net.disconnect_shared(Endpoint::new(2, 0)).unwrap();
    assert_eq!(net.active_connections(), 0);
    assert!(net.middle_loads().iter().all(|&l| l == 0));
    assert!(net.check_consistency().is_empty());
}

/// Mid-fan-out kill: thread A commits its out-module-0 leg, parks
/// before the out-module-1 leg, and the rival steals that second word.
/// The multi-word commit must roll back newest-first (leg 0 undone,
/// input word released) and the retry must serve the whole fan-out from
/// an untouched middle switch.
#[test]
fn killed_multiword_commit_rolls_back_newest_first() {
    let mut net = contended_net();
    let trap = Arc::new(AtomicBool::new(true));
    let parked = Arc::new(Barrier::new(2));
    let resume = Arc::new(Barrier::new(2));
    {
        let (trap, parked, resume) = (trap.clone(), parked.clone(), resume.clone());
        net.set_pause_hook(Some(Arc::new(move |p: PausePoint| {
            if matches!(
                p,
                PausePoint::BeforeLeg {
                    middle: 0,
                    out_module: 1,
                    legs_committed: 1,
                }
            ) && trap.swap(false, Ordering::AcqRel)
            {
                parked.wait();
                resume.wait();
            }
        })));
    }
    let net = Arc::new(net);

    // Thread A: multicast src 0 → {port 1 (out-module 0), port 2
    // (out-module 1)} — a two-leg single-middle commit.
    let a = {
        let net = net.clone();
        std::thread::spawn(move || net.connect_shared(&conn((0, 0), &[(1, 0), (2, 0)])))
    };
    parked.wait(); // A committed leg (0 → om 0); its om-1 leg is pending.

    // Rival takes the pending word (middle 0 → out-module 1).
    let b_route = net.connect_shared(&conn((2, 0), &[(3, 0)])).unwrap();
    assert_eq!(b_route.branches[0].middle, 0);

    resume.wait();
    let a_route = a
        .join()
        .unwrap()
        .expect("fan-out must re-route after rollback");
    assert_eq!(a_route.branches.len(), 1, "single middle still covers it");
    assert_ne!(a_route.branches[0].middle, 0);
    assert_eq!(a_route.branches[0].legs.len(), 2);

    let epoch = net.commit_epoch();
    assert_eq!(epoch.started, 3, "expected exactly one rolled-back commit");
    assert_eq!(epoch.started, epoch.finished);
    assert!(net.check_consistency().is_empty());

    net.disconnect_shared(Endpoint::new(0, 0)).unwrap();
    net.disconnect_shared(Endpoint::new(2, 0)).unwrap();
    assert!(net.middle_loads().iter().all(|&l| l == 0));
    assert!(net.check_consistency().is_empty());
}

/// Seeded two-thread scheduler: every pause point draws a hold time
/// from one shared [`ChoiceStream`], stretching the probe→commit window
/// seed by seed while both threads hammer the same out-module with k=1.
/// Each round both threads rendezvous, connect concurrently — so both
/// probes validate middle 0 before either commit lands and the loser's
/// CAS revalidation must kill its in-flight commit — then rendezvous
/// again and tear down. Every connect must admit (the fabric is at the
/// bound and endpoints never clash), the occupancy matrix must be exact
/// after every seed, and across the sweep the scheduler must actually
/// kill commits (excess epoch pairs > 0).
#[test]
fn seeded_two_thread_storm_never_leaks() {
    const ROUNDS: u64 = 50;
    let mut killed_commits = 0u64;
    for seed in 0..8u64 {
        let mut net = contended_net();
        let choices = Arc::new(parking_lot::Mutex::new(ChoiceStream::new(seed)));
        {
            let choices = choices.clone();
            net.set_pause_hook(Some(Arc::new(move |_| {
                // A seeded hold inside the commit window. Sleeps, not
                // yields: sched_yield need not deschedule, a timed
                // sleep always hands the core to the rival.
                let hold = choices.lock().choose(8) as u64;
                std::thread::sleep(std::time::Duration::from_micros(hold * 40));
            })));
        }
        let net = Arc::new(net);
        // Two rendezvous per round: the first releases both connects
        // into the same window (single-core CI would otherwise run the
        // whole round of one worker before the other is scheduled);
        // the second keeps both routes live until both commits landed,
        // so the loser's revalidation sees the winner's word.
        let rendezvous = Arc::new(Barrier::new(2));
        let worker = |src: (u32, u32), dst: (u32, u32)| {
            let net = net.clone();
            let rendezvous = rendezvous.clone();
            std::thread::spawn(move || {
                for round in 0..ROUNDS {
                    rendezvous.wait();
                    net.connect_shared(&conn(src, &[dst])).unwrap_or_else(|e| {
                        panic!("seed {seed} round {round}: src {src:?} refused: {e:?}")
                    });
                    rendezvous.wait();
                    net.disconnect_shared(Endpoint::new(src.0, src.1)).unwrap();
                }
            })
        };
        // Module-0 and module-1 sources, disjoint claim rows (port 2 is
        // t0's destination and t1's source — separate busy matrices),
        // both fanning into out-module 1: all contention is on the
        // middle link words.
        let t0 = worker((0, 0), (2, 0));
        let t1 = worker((2, 0), (3, 0));
        t0.join().unwrap();
        t1.join().unwrap();

        let epoch = net.commit_epoch();
        assert_eq!(epoch.started, epoch.finished, "seed {seed}: epoch torn");
        // 2 threads × ROUNDS × (connect + disconnect) epoch pairs, plus
        // one pair per killed commit.
        assert!(epoch.started >= 4 * ROUNDS, "seed {seed}");
        killed_commits += epoch.started - 4 * ROUNDS;
        assert_eq!(net.active_connections(), 0, "seed {seed}");
        assert!(
            net.middle_loads().iter().all(|&l| l == 0),
            "seed {seed}: leaked wavelength"
        );
        let problems = net.check_consistency();
        assert!(problems.is_empty(), "seed {seed}: {problems:?}");
    }
    assert!(
        killed_commits > 0,
        "16 seeds of forced overlap never killed a commit — the \
         scheduler lost its teeth"
    );
}
