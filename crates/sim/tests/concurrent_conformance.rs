//! Concurrency conformance sweeps for the CAS admission path.
//!
//! The fine-grained backend (`ConcurrentThreeStage`) commits occupancy
//! through optimistic probe + CAS instead of under the exclusive
//! backend lock, so it gets its own sweep cells: every seeded
//! interleaving of the sharded engine in CAS mode must produce exactly
//! the serial first-fit oracle outcomes on a fault-free closed trace,
//! and must satisfy the outcome conservation laws when a seed-derived
//! middle-switch kill + repair races the admissions. A divergence comes
//! back as a shrunk [`wdm_sim::FailingSeed`] whose display carries a
//! `reproduce: wdmcast sim … --concurrent` line.

use wdm_sim::SimSetup;

/// ISSUE acceptance: 256 seeded interleavings of a Theorem-1-bound
/// churn trace through the CAS backend, zero divergences from the
/// serial oracle, and proof the schedules explored are distinct.
#[test]
fn concurrent_at_bound_conformance_sweep() {
    let setup = SimSetup::three_stage_at_bound(2, 4, 1, 40, 4).with_concurrent();
    let report = setup.sweep(0..256);
    assert_eq!(report.checked, 256);
    assert!(
        report.failures.is_empty(),
        "CAS-mode oracle divergence:\n{}",
        report.failures[0]
    );
    assert!(
        report.distinct_schedules >= 200,
        "only {} distinct schedules in 256 seeds",
        report.distinct_schedules
    );
}

/// 256 faulted seeds with a one-switch spare margin: the surviving
/// middle stage still meets the Theorem 1 bound, so every CAS-mode
/// schedule must conserve outcomes, heal every victim, and hard-block
/// nothing — the final occupancy matrix is re-derived and cross-checked
/// by `check_consistency` at drain.
#[test]
fn concurrent_faulted_sweep_conserves_outcomes() {
    let mut setup = SimSetup::three_stage_at_bound(2, 4, 1, 40, 4).with_concurrent();
    setup.m += 1;
    setup.faulted = true;
    let report = setup.sweep(0..256);
    assert_eq!(report.checked, 256);
    assert!(
        report.failures.is_empty(),
        "CAS-mode faulted run violated invariants:\n{}",
        report.failures[0]
    );
}

/// Shard-count independence in CAS mode: more shards widen the
/// schedule space (and the read-lock concurrency window), but the
/// serial-oracle obligation is identical.
#[test]
fn concurrent_conformance_is_shard_count_independent() {
    for shards in [1usize, 2, 8] {
        let setup = SimSetup::three_stage_at_bound(2, 4, 1, 30, shards).with_concurrent();
        let report = setup.sweep(0..24);
        assert!(
            report.failures.is_empty(),
            "shards={shards}:\n{}",
            report.failures[0]
        );
    }
}

/// A starved CAS fabric MUST fail the nonblocking oracle, and the
/// failure artifact must carry a replayable `--concurrent` repro line —
/// this guards the artifact pipeline for the new mode against silently
/// passing runs.
#[test]
fn starved_concurrent_failure_is_replayable() {
    let mut setup = SimSetup::three_stage_at_bound(4, 4, 1, 60, 4).with_concurrent();
    setup.m = 3; // far below the Theorem 1 bound
    let failure = (0..16u64)
        .find_map(|seed| setup.failing_seed(seed))
        .expect("a starved middle stage must produce a failing seed");
    assert!(!failure.violations.is_empty());
    let rendered = failure.to_string();
    assert!(
        rendered.contains("reproduce: wdmcast sim"),
        "artifact lost its repro line:\n{rendered}"
    );
    assert!(
        rendered.contains("--concurrent"),
        "repro line lost the CAS-mode flag:\n{rendered}"
    );
}
