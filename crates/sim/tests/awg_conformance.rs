//! Conformance sweeps for the AWG-based wavelength-routed Clos backend
//! — the ISSUE 6 acceptance legs.
//!
//! All three architectures promise strict nonblocking at their
//! respective bounds, so on identical legal traces they must agree on
//! every per-event verdict: the differential runner below drives the
//! same seed through `awg-clos` vs `three-stage` and `awg-clos` vs
//! `crossbar` (≥128 seeds each) and demands zero divergences. Faulted
//! runs have schedule-dependent victim sets, so — exactly as for the
//! switching backends — they are judged by the conservation-law oracle
//! across ≥128 seeds instead of per-index diffs.

use wdm_core::NetworkConfig;
use wdm_fabric::CrossbarSession;
use wdm_multistage::{
    awg, AwgClosNetwork, Construction, ConverterPlacement, ThreeStageNetwork, ThreeStageParams,
};
use wdm_sim::{diff_runs, simulate, ChoiceStream, Scheduler, SimParams, SimSetup};

const N: u32 = 2;
const R: u32 = 4;
const K: u32 = 4;
const STEPS: usize = 40;
const SHARDS: usize = 4;
const SEEDS: u64 = 128;

fn make_crossbar(setup: &SimSetup) -> CrossbarSession {
    CrossbarSession::new(
        NetworkConfig::new(setup.geo.ports(), setup.geo.k),
        setup.model,
    )
}

fn make_three_stage(setup: &SimSetup) -> ThreeStageNetwork {
    ThreeStageNetwork::new(
        ThreeStageParams::new(setup.geo.n, setup.m, setup.geo.r, setup.geo.k),
        Construction::MswDominant,
        setup.model,
    )
}

fn make_awg(setup: &SimSetup) -> AwgClosNetwork {
    let fsr_orders = setup.geo.k.div_ceil(setup.geo.r).max(1);
    AwgClosNetwork::new(
        ThreeStageParams::new(setup.geo.n, setup.m, setup.geo.r, setup.geo.k),
        fsr_orders,
        ConverterPlacement::IngressEgress,
        setup.model,
    )
}

/// Serial-oracle conformance at the AWG bound: every seeded
/// interleaving matches the serial reference, with zero hard blocks.
#[test]
fn awg_clos_at_bound_conformance_sweep() {
    let setup = SimSetup::awg_clos(N, R, K, STEPS, SHARDS);
    assert_eq!(setup.m, awg::min_middles(N, R, K, 1).unwrap());
    let report = setup.sweep(0..SEEDS);
    assert_eq!(report.checked, SEEDS as usize);
    assert!(
        report.failures.is_empty(),
        "oracle divergence:\n{}",
        report.failures[0]
    );
    assert!(
        report.distinct_schedules >= 100,
        "only {} distinct schedules in {SEEDS} seeds",
        report.distinct_schedules
    );
}

/// Differential leg: awg-clos vs three-stage, fault-free, same trace
/// and same scheduling seed — per-event verdicts must be identical.
#[test]
fn awg_clos_and_three_stage_agree_at_the_bound() {
    let awg_setup = SimSetup::awg_clos(N, R, K, STEPS, SHARDS);
    let ts = SimSetup::three_stage_at_bound(N, R, K, STEPS, SHARDS);
    let params = SimParams::default();
    for seed in 0..SEEDS {
        let trace = awg_setup.trace(seed);
        let mut cs_a = ChoiceStream::new(seed);
        let run_a = simulate(
            make_awg(&awg_setup),
            &trace,
            &[],
            &params,
            Scheduler::Random(&mut cs_a),
        );
        let mut cs_b = ChoiceStream::new(seed);
        let run_b = simulate(
            make_three_stage(&ts),
            &trace,
            &[],
            &params,
            Scheduler::Random(&mut cs_b),
        );
        let diffs = diff_runs(&run_a, &run_b);
        assert!(
            diffs.is_empty(),
            "seed {seed}: awg-clos vs three-stage diverged: {}",
            diffs[0]
        );
    }
}

/// Differential leg: awg-clos vs crossbar, fault-free.
#[test]
fn awg_clos_and_crossbar_agree_at_the_bound() {
    let awg_setup = SimSetup::awg_clos(N, R, K, STEPS, SHARDS);
    let cb = SimSetup::crossbar(N, R, K, STEPS, SHARDS);
    let params = SimParams::default();
    for seed in 0..SEEDS {
        let trace = awg_setup.trace(seed);
        let mut cs_a = ChoiceStream::new(seed);
        let run_a = simulate(
            make_awg(&awg_setup),
            &trace,
            &[],
            &params,
            Scheduler::Random(&mut cs_a),
        );
        let mut cs_b = ChoiceStream::new(seed);
        let run_b = simulate(
            make_crossbar(&cb),
            &trace,
            &[],
            &params,
            Scheduler::Random(&mut cs_b),
        );
        let diffs = diff_runs(&run_a, &run_b);
        assert!(
            diffs.is_empty(),
            "seed {seed}: awg-clos vs crossbar diverged: {}",
            diffs[0]
        );
    }
}

/// Faulted sweep with a spare grating (m = bound + 1): the surviving
/// middle stage still meets the bound, so every schedule must stay
/// clean, conserve outcomes, and hard-block nothing — the Clos sparing
/// argument carried over to wavelength routing.
#[test]
fn awg_clos_spare_margin_survives_faulted_sweep() {
    let mut setup = SimSetup::awg_clos(N, R, K, STEPS, SHARDS);
    setup.m += 1;
    setup.faulted = true;
    let report = setup.sweep(0..SEEDS);
    assert!(
        report.failures.is_empty(),
        "margin fabric violated invariants:\n{}",
        report.failures[0]
    );
    assert!(report.distinct_schedules >= 100);
}

/// Killing a grating at m = bound (no spare) may legitimately block,
/// but the conservation laws still bind every schedule.
#[test]
fn awg_clos_at_bound_kill_still_conserves() {
    let mut setup = SimSetup::awg_clos(N, R, K, STEPS, SHARDS);
    setup.faulted = true;
    setup.expect_nonblocking = false;
    let report = setup.sweep(0..SEEDS);
    assert!(
        report.failures.is_empty(),
        "conservation violated on degraded fabric:\n{}",
        report.failures[0]
    );
}

/// The harness's repro line names the new backend and carries --m, so
/// a failing seed replays under `wdmcast sim --backend awg-clos`.
#[test]
fn awg_clos_repro_command_is_replayable() {
    let setup = SimSetup::awg_clos(N, R, K, STEPS, SHARDS);
    let cmd = setup.repro_command(7);
    assert!(cmd.contains("--backend awg-clos"), "{cmd}");
    assert!(cmd.contains(&format!("--m {}", setup.m)), "{cmd}");
}
