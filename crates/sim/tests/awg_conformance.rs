//! Conformance sweeps for the AWG-based wavelength-routed Clos backend
//! — the ISSUE 6 acceptance legs.
//!
//! All three architectures promise strict nonblocking at their
//! respective bounds, so on identical legal traces they must agree on
//! every per-event verdict: the differential runner below drives the
//! same seed through `awg-clos` vs `three-stage` and `awg-clos` vs
//! `crossbar` (≥128 seeds each) and demands zero divergences. Faulted
//! runs have schedule-dependent victim sets, so — exactly as for the
//! switching backends — they are judged by the conservation-law oracle
//! across ≥128 seeds instead of per-index diffs.

use wdm_core::{Fault, NetworkConfig};
use wdm_fabric::CrossbarSession;
use wdm_multistage::{
    awg, AwgClosNetwork, Construction, ConverterPlacement, ThreeStageNetwork, ThreeStageParams,
};
use wdm_sim::{
    diff_runs, invariant_violations, simulate, ChoiceStream, Scheduler, SimParams, SimSetup,
};
use wdm_workload::{FaultAction, TimedFault};

const N: u32 = 2;
const R: u32 = 4;
const K: u32 = 4;
const STEPS: usize = 40;
const SHARDS: usize = 4;
const SEEDS: u64 = 128;

fn make_crossbar(setup: &SimSetup) -> CrossbarSession {
    CrossbarSession::new(
        NetworkConfig::new(setup.geo.ports(), setup.geo.k),
        setup.model,
    )
}

fn make_three_stage(setup: &SimSetup) -> ThreeStageNetwork {
    ThreeStageNetwork::new(
        ThreeStageParams::new(setup.geo.n, setup.m, setup.geo.r, setup.geo.k),
        Construction::MswDominant,
        setup.model,
    )
}

fn make_awg(setup: &SimSetup) -> AwgClosNetwork {
    let fsr_orders = setup.geo.k.div_ceil(setup.geo.r).max(1);
    AwgClosNetwork::new(
        ThreeStageParams::new(setup.geo.n, setup.m, setup.geo.r, setup.geo.k),
        fsr_orders,
        ConverterPlacement::IngressEgress,
        setup.model,
    )
}

/// Serial-oracle conformance at the AWG bound: every seeded
/// interleaving matches the serial reference, with zero hard blocks.
#[test]
fn awg_clos_at_bound_conformance_sweep() {
    let setup = SimSetup::awg_clos(N, R, K, STEPS, SHARDS);
    assert_eq!(setup.m, awg::min_middles(N, R, K, 1).unwrap());
    let report = setup.sweep(0..SEEDS);
    assert_eq!(report.checked, SEEDS as usize);
    assert!(
        report.failures.is_empty(),
        "oracle divergence:\n{}",
        report.failures[0]
    );
    assert!(
        report.distinct_schedules >= 100,
        "only {} distinct schedules in {SEEDS} seeds",
        report.distinct_schedules
    );
}

/// Differential leg: awg-clos vs three-stage, fault-free, same trace
/// and same scheduling seed — per-event verdicts must be identical.
#[test]
fn awg_clos_and_three_stage_agree_at_the_bound() {
    let awg_setup = SimSetup::awg_clos(N, R, K, STEPS, SHARDS);
    let ts = SimSetup::three_stage_at_bound(N, R, K, STEPS, SHARDS);
    let params = SimParams::default();
    for seed in 0..SEEDS {
        let trace = awg_setup.trace(seed);
        let mut cs_a = ChoiceStream::new(seed);
        let run_a = simulate(
            make_awg(&awg_setup),
            &trace,
            &[],
            &params,
            Scheduler::Random(&mut cs_a),
        );
        let mut cs_b = ChoiceStream::new(seed);
        let run_b = simulate(
            make_three_stage(&ts),
            &trace,
            &[],
            &params,
            Scheduler::Random(&mut cs_b),
        );
        let diffs = diff_runs(&run_a, &run_b);
        assert!(
            diffs.is_empty(),
            "seed {seed}: awg-clos vs three-stage diverged: {}",
            diffs[0]
        );
    }
}

/// Differential leg: awg-clos vs crossbar, fault-free.
#[test]
fn awg_clos_and_crossbar_agree_at_the_bound() {
    let awg_setup = SimSetup::awg_clos(N, R, K, STEPS, SHARDS);
    let cb = SimSetup::crossbar(N, R, K, STEPS, SHARDS);
    let params = SimParams::default();
    for seed in 0..SEEDS {
        let trace = awg_setup.trace(seed);
        let mut cs_a = ChoiceStream::new(seed);
        let run_a = simulate(
            make_awg(&awg_setup),
            &trace,
            &[],
            &params,
            Scheduler::Random(&mut cs_a),
        );
        let mut cs_b = ChoiceStream::new(seed);
        let run_b = simulate(
            make_crossbar(&cb),
            &trace,
            &[],
            &params,
            Scheduler::Random(&mut cs_b),
        );
        let diffs = diff_runs(&run_a, &run_b);
        assert!(
            diffs.is_empty(),
            "seed {seed}: awg-clos vs crossbar diverged: {}",
            diffs[0]
        );
    }
}

/// Faulted sweep with a spare grating (m = bound + 1): the surviving
/// middle stage still meets the bound, so every schedule must stay
/// clean, conserve outcomes, and hard-block nothing — the Clos sparing
/// argument carried over to wavelength routing.
#[test]
fn awg_clos_spare_margin_survives_faulted_sweep() {
    let mut setup = SimSetup::awg_clos(N, R, K, STEPS, SHARDS);
    setup.m += 1;
    setup.faulted = true;
    let report = setup.sweep(0..SEEDS);
    assert!(
        report.failures.is_empty(),
        "margin fabric violated invariants:\n{}",
        report.failures[0]
    );
    assert!(report.distinct_schedules >= 100);
}

/// Killing a grating at m = bound (no spare) may legitimately block,
/// but the conservation laws still bind every schedule.
#[test]
fn awg_clos_at_bound_kill_still_conserves() {
    let mut setup = SimSetup::awg_clos(N, R, K, STEPS, SHARDS);
    setup.faulted = true;
    setup.expect_nonblocking = false;
    let report = setup.sweep(0..SEEDS);
    assert!(
        report.failures.is_empty(),
        "conservation violated on degraded fabric:\n{}",
        report.failures[0]
    );
}

/// The harness's repro line names the new backend and carries --m, so
/// a failing seed replays under `wdmcast sim --backend awg-clos`.
#[test]
fn awg_clos_repro_command_is_replayable() {
    let setup = SimSetup::awg_clos(N, R, K, STEPS, SHARDS);
    let cmd = setup.repro_command(7);
    assert!(cmd.contains("--backend awg-clos"), "{cmd}");
    assert!(cmd.contains(&format!("--m {}", setup.m)), "{cmd}");
}

/// Converter-bank faults (ingress and egress banks, alternating by
/// seed) failed mid-trace and repaired two-thirds in: victims are
/// evicted and re-admitted around the dark bank, refused connects
/// surface as `ComponentDown`, and every schedule still satisfies the
/// conservation laws.
#[test]
fn awg_clos_converter_bank_faults_conserve_outcomes() {
    let setup = SimSetup::awg_clos(N, R, K, STEPS, SHARDS);
    for seed in 0..64u64 {
        let trace = setup.trace(seed);
        let module = (seed % R as u64) as u32;
        let fault = if seed % 2 == 0 {
            Fault::InputConverters(module)
        } else {
            Fault::OutputConverters(module)
        };
        let script = [
            TimedFault {
                time: trace[trace.len() / 3].time,
                action: FaultAction::Fail(fault),
            },
            TimedFault {
                time: trace[trace.len() * 2 / 3].time,
                action: FaultAction::Repair(fault),
            },
        ];
        let mut choices = ChoiceStream::new(seed);
        let run = simulate(
            make_awg(&setup),
            &trace,
            &script,
            &SimParams::default(),
            Scheduler::Random(&mut choices),
        );
        let violations = invariant_violations(&run, false);
        assert!(
            violations.is_empty(),
            "seed {seed} ({fault}): {}",
            violations[0]
        );
        let s = &run.report.summary;
        assert_eq!(
            s.connections_hit,
            s.healed + s.heal_failed,
            "seed {seed}: healing must account for every victim"
        );
    }
}

/// Passive AWG gratings carry no converter banks, so a
/// `MiddleConverters` fault names hardware the architecture does not
/// have: it must evict nothing and leave every per-event outcome
/// identical to the fault-free run.
#[test]
fn awg_clos_middle_converter_fault_is_inert() {
    let setup = SimSetup::awg_clos(N, R, K, STEPS, SHARDS);
    for seed in 0..8u64 {
        let trace = setup.trace(seed);
        let script = [TimedFault {
            time: trace[trace.len() / 3].time,
            action: FaultAction::Fail(Fault::MiddleConverters((seed % setup.m as u64) as u32)),
        }];
        let mut cs_a = ChoiceStream::new(seed);
        let faulted = simulate(
            make_awg(&setup),
            &trace,
            &script,
            &SimParams::default(),
            Scheduler::Random(&mut cs_a),
        );
        let mut cs_b = ChoiceStream::new(seed);
        let clean = simulate(
            make_awg(&setup),
            &trace,
            &[],
            &SimParams::default(),
            Scheduler::Random(&mut cs_b),
        );
        assert_eq!(
            faulted.report.summary.connections_hit, 0,
            "seed {seed}: a converterless stage had victims"
        );
        let diffs = diff_runs(&faulted, &clean);
        assert!(
            diffs.is_empty(),
            "seed {seed}: inert fault changed an outcome: {}",
            diffs[0]
        );
    }
}

/// Spare-margin converter leg: with a spare grating (m = bound + 1) an
/// ingress-bank kill still leaves conversion-free channels plus slack
/// capacity, and self-healing must relocate every victim it can route —
/// the sparing argument extended from dead gratings to dead converter
/// hardware.
#[test]
fn awg_clos_spare_margin_rides_out_converter_bank_kill() {
    let mut setup = SimSetup::awg_clos(N, R, K, STEPS, SHARDS);
    setup.m += 1;
    let mut total_hit = 0u64;
    for seed in 0..16u64 {
        let trace = setup.trace(seed);
        let script = [TimedFault {
            time: trace[trace.len() / 3].time,
            action: FaultAction::Fail(Fault::InputConverters((seed % R as u64) as u32)),
        }];
        let mut choices = ChoiceStream::new(seed);
        let run = simulate(
            make_awg(&setup),
            &trace,
            &script,
            &SimParams::default(),
            Scheduler::Random(&mut choices),
        );
        let violations = invariant_violations(&run, false);
        assert!(violations.is_empty(), "seed {seed}: {}", violations[0]);
        let s = &run.report.summary;
        assert_eq!(
            s.connections_hit,
            s.healed + s.heal_failed,
            "seed {seed}: healing must account for every victim"
        );
        total_hit += s.connections_hit;
    }
    assert!(
        total_hit > 0,
        "no seed ever routed traffic through the killed bank; the leg is vacuous"
    );
}
