//! The DESIGN.md windowed closed-loop stall, as a deterministic
//! regression test — plus randomized loopback conformance over the real
//! codec.
//!
//! DESIGN.md ("wdm-net → Client") records the caveat: replaying a trace
//! through a *windowed* pipeline can stall, because the departure that
//! would free a parked admission may sit in a window the client has not
//! sent yet — the prescribed behavior is to accept deadline expiries as
//! `Busy` rejects rather than hang. Under real sockets that schedule is
//! a race; under [`NetSim`] it is a script.

use std::time::Duration;
use wdm_core::{Endpoint, MulticastConnection, MulticastModel, NetworkConfig};
use wdm_fabric::CrossbarSession;
use wdm_net::protocol::{RejectReason, Response};
use wdm_runtime::RuntimeConfig;
use wdm_sim::{ChoiceStream, NetSim};
use wdm_workload::TraceEvent;

fn crossbar(ports: u32) -> CrossbarSession {
    CrossbarSession::new(NetworkConfig::new(ports, 1), MulticastModel::Msw)
}

fn connect(src: u32, dst: u32) -> TraceEvent {
    TraceEvent::Connect(MulticastConnection::unicast(
        Endpoint::new(src, 0),
        Endpoint::new(dst, 0),
    ))
}

fn disconnect(src: u32) -> TraceEvent {
    TraceEvent::Disconnect(Endpoint::new(src, 0))
}

/// The stall, step by step: lane 0 (window 1) admits a connection and
/// holds the freeing departure unsent because its client never reads
/// the admission response; lane 1's rival connect parks behind the
/// occupant. No departure can arrive — the engine's deadline must bound
/// the stall and surface it as an expiry (`Busy` on the wire), after
/// which draining the window completes the trace cleanly.
#[test]
fn unsent_window_stall_is_bounded_by_the_deadline() {
    let runtime = RuntimeConfig {
        max_retries: u32::MAX, // let the deadline, not the budget, bind
        ..RuntimeConfig::default()
    };
    let deadline = runtime.deadline.as_secs_f64();
    let max_backoff = runtime.max_backoff.as_secs_f64();
    let mut sim = NetSim::new(
        crossbar(4),
        vec![
            (vec![connect(0, 2), disconnect(0)], 1), // lane 0: window of 1
            (vec![connect(1, 2)], 1),                // lane 1: the rival
        ],
        2,
        runtime,
    );

    // Lane 0's connect is admitted; the response sits unread in the
    // client buffer, so the window stays full and the departure unsent.
    sim.client_send(0);
    sim.server_recv(0);
    sim.deliver(0);
    assert!(sim.client_ready(0), "admission response is buffered");
    assert!(
        !sim.can_send(0),
        "window of 1 is full until the client reads"
    );

    // Lane 1's rival connect parks behind the occupant.
    sim.client_send(1);
    sim.server_recv(1);
    sim.deliver(1);
    assert_eq!(sim.parked(1), 1, "rival must park, not fail");

    // Nothing else is runnable: only the virtual clock can move. The
    // deadline — not an unbounded hang — must resolve the parked rival.
    while sim.parked(1) > 0 {
        let due = sim.next_due().expect("parked request keeps a due time");
        sim.advance(due.max(Duration::from_nanos(1)));
        sim.retry(1);
    }
    assert!(
        sim.virtual_secs() >= deadline,
        "expired before the deadline: {}",
        sim.virtual_secs()
    );
    assert!(
        sim.virtual_secs() <= deadline + max_backoff + 1e-6,
        "deadline did not bound the stall: {}",
        sim.virtual_secs()
    );
    let (_, resp) = sim.client_recv(1);
    assert!(
        matches!(
            resp,
            Response::Rejected {
                reason: RejectReason::Busy,
                ..
            }
        ),
        "stall surfaces as a Busy reject, got {resp:?}"
    );

    // Drain the window: the departure flows and the run ends clean.
    let (_, resp) = sim.client_recv(0);
    assert!(resp.is_ok());
    sim.client_send(0);
    sim.server_recv(0);
    sim.deliver(0);
    let (_, resp) = sim.client_recv(0);
    assert!(resp.is_ok(), "departure completes after the window drains");

    let report = sim.finish();
    assert!(report.is_clean(), "{:?}", report.errors);
    assert_eq!(report.summary.admitted, 1);
    assert_eq!(report.summary.departed, 1);
    assert_eq!(report.summary.expired, 1, "exactly the stalled rival");
}

/// With windows wide enough that departures are never held back, the
/// full codec path (encode → frame → decode → admit → respond) must
/// deliver every outcome under any seeded schedule: all events resolve,
/// nothing expires, and the engine drains clean.
#[test]
fn loopback_codec_conformance_under_random_schedules() {
    // Two lanes sharing destination 2: cross-lane conflicts exercise
    // park-and-retry through the wire path.
    let lane0 = vec![connect(0, 2), disconnect(0), connect(0, 3), disconnect(0)];
    let lane1 = vec![connect(1, 2), disconnect(1)];
    for seed in 0..64u64 {
        let mut sim = NetSim::new(
            crossbar(4),
            vec![(lane0.clone(), 8), (lane1.clone(), 8)],
            2,
            RuntimeConfig::default(),
        );
        let mut choices = ChoiceStream::new(seed);
        sim.run_random(&mut choices);
        for lane in 0..2 {
            for (id, resp) in sim.responses(lane) {
                assert!(
                    resp.is_ok(),
                    "seed {seed}: lane {lane} id {id} got {resp:?}"
                );
            }
        }
        assert_eq!(sim.responses(0).len(), 4, "seed {seed}");
        assert_eq!(sim.responses(1).len(), 2, "seed {seed}");
        let report = sim.finish();
        assert!(report.is_clean(), "seed {seed}: {:?}", report.errors);
        assert_eq!(report.summary.expired, 0, "seed {seed}");
        assert_eq!(report.summary.active, 0, "seed {seed}");
    }
}

/// `Ping` is answered inline by the serving layer, never touching the
/// admission path — exactly like the real server.
#[test]
fn ping_answered_inline() {
    let mut sim = NetSim::new(
        crossbar(4),
        vec![(vec![connect(0, 1), disconnect(0)], 4)],
        1,
        RuntimeConfig::default(),
    );
    // A Ping ahead of the scripted traffic is answered without any
    // shard delivery step.
    sim.ping(0);
    sim.server_recv(0);
    assert_eq!(sim.queued(0), 0, "Ping must not reach the admission queue");
    let (_, resp) = sim.client_recv(0);
    assert!(matches!(resp, Response::Pong), "got {resp:?}");

    let mut choices = ChoiceStream::new(7);
    sim.run_random(&mut choices);
    let report = sim.finish();
    assert!(report.is_clean());
    assert_eq!(report.summary.admitted, 1);
    assert_eq!(report.summary.departed, 1);
}
