//! Graph-backend conformance sweeps — the CI gate ISSUE 10 promises:
//! 128 seeds against the serial oracle fault-free and 128 seeds against
//! the conservation laws with seed-derived node/link kills, plus a
//! sparse-splitting hotspot cell. Everything here is fully
//! deterministic (seed → trace → faults → schedule), so a cell passing
//! locally passes in CI forever.

use wdm_sim::{BackendKind, Scenario, WorkloadSpec};

const SEEDS: u64 = 128;

fn sweep(sc: Scenario, label: &str) {
    let setup = sc.sim_setup().unwrap_or_else(|e| panic!("{label}: {e}"));
    let report = setup.sweep(0..SEEDS);
    assert_eq!(report.checked as u64, SEEDS, "{label}: short sweep");
    if let Some(first) = report.failures.first() {
        panic!(
            "{label}: {} of {} seeds diverged; first:\n{first}",
            report.failures.len(),
            report.checked
        );
    }
}

#[test]
fn ring_fault_free_matches_the_serial_oracle() {
    sweep(
        Scenario::new(BackendKind::DEFAULT_GRAPH).geometry(1, 8, 2),
        "graph ring(8)/fault-free",
    );
}

#[test]
fn ring_faulted_obeys_the_conservation_laws() {
    // Even seeds kill a node mid-trace, odd seeds sever a directed
    // link; both must evict cleanly and heal on repair.
    sweep(
        Scenario::new(BackendKind::DEFAULT_GRAPH)
            .geometry(1, 8, 2)
            .faulted(true),
        "graph ring(8)/faulted",
    );
}

#[test]
fn sparse_torus_hotspot_matches_the_serial_oracle() {
    // Splitters on every other node, 80% of destination draws pulled
    // onto node 4 — the regime where light-hierarchies actually matter.
    sweep(
        Scenario::new(BackendKind::Crossbar)
            .topology(wdm_graph::GraphTopology::Torus { rows: 3, cols: 3 })
            .geometry(1, 9, 2)
            .mc_every(2)
            .workload(WorkloadSpec::Hotspot {
                hot: 4,
                skew_pct: 80,
            }),
        "graph torus(3x3) mc-every=2 hotspot/fault-free",
    );
}

#[test]
fn sparse_ring_tree_only_faulted_obeys_the_conservation_laws() {
    // The weakest splitting regime under faults: no hierarchies to
    // rescue trees, so blocks are common — conservation must still hold.
    sweep(
        Scenario::new(BackendKind::DEFAULT_GRAPH)
            .geometry(2, 8, 2)
            .mc_every(2)
            .splitting(wdm_graph::Splitting::TreeOnly)
            .faulted(true),
        "graph ring(8) mc-every=2 tree/faulted",
    );
}
