//! Batch-vs-singles conformance: the batched submission fast path must
//! be an *amortization*, not a semantic change. For every seed we run
//! the same adversarial trace (and fault script) through the
//! deterministic executor twice — once event-at-a-time, once with an
//! 8-event submission window draining whole shard queues through
//! `ShardCore::handle_batch` — and demand bit-identical per-index
//! outcomes and terminal counters. Swept across both backends and both
//! fault regimes, ≥256 seeds per combination.

use wdm_runtime::{Backend, RuntimeConfig};
use wdm_sim::executor::{simulate, Scheduler, SimParams, SimRun};
use wdm_sim::harness::SimSetup;
use wdm_sim::Scenario;

const SEEDS: u64 = 256;
const STEPS: usize = 24;
const WINDOW: usize = 8;

fn params(batch: usize) -> SimParams {
    SimParams {
        shards: 1,
        batch,
        runtime: RuntimeConfig::default(),
    }
}

/// Compare a singles run and a batched run of the same input; panics
/// with a replayable message on the first divergence.
fn assert_conformant<B: Backend>(label: &str, seed: u64, singles: SimRun<B>, batched: SimRun<B>) {
    for (i, (s, b)) in singles.outcomes.iter().zip(&batched.outcomes).enumerate() {
        assert_eq!(
            s, b,
            "{label} seed {seed}: outcome diverged at trace index {i}"
        );
    }
    let (s, b) = (&singles.report.summary, &batched.report.summary);
    assert_eq!(s.offered, b.offered, "{label} seed {seed}: offered");
    assert_eq!(s.admitted, b.admitted, "{label} seed {seed}: admitted");
    assert_eq!(s.departed, b.departed, "{label} seed {seed}: departed");
    assert_eq!(s.blocked, b.blocked, "{label} seed {seed}: blocked");
    assert_eq!(s.expired, b.expired, "{label} seed {seed}: expired");
    assert_eq!(s.retried, b.retried, "{label} seed {seed}: retried");
    assert!(
        batched.report.is_clean(),
        "{label} seed {seed}: batched run not clean: {:?}",
        batched.report.errors
    );
}

fn sweep(setup: &SimSetup, label: &str) {
    for seed in 0..SEEDS {
        let trace = setup.trace(seed);
        let faults = setup.faults(seed, &trace);
        let singles = simulate(
            setup.build_backend(),
            &trace,
            &faults,
            &params(1),
            Scheduler::Serial,
        );
        let batched = simulate(
            setup.build_backend(),
            &trace,
            &faults,
            &params(WINDOW),
            Scheduler::Serial,
        );
        assert_conformant(label, seed, singles, batched);
    }
}

#[test]
fn crossbar_fault_free_batches_conform() {
    let setup = SimSetup::crossbar(4, 4, 2, STEPS, 1);
    sweep(&setup, "crossbar/fault-free");
}

#[test]
fn crossbar_faulted_batches_conform() {
    let mut setup = SimSetup::crossbar(4, 4, 2, STEPS, 1);
    setup.faulted = true;
    sweep(&setup, "crossbar/faulted");
}

#[test]
fn three_stage_fault_free_batches_conform() {
    let setup = SimSetup::three_stage_at_bound(4, 4, 2, STEPS, 1);
    sweep(&setup, "three-stage/fault-free");
}

#[test]
fn three_stage_faulted_batches_conform() {
    let mut setup = SimSetup::three_stage_at_bound(4, 4, 2, STEPS, 1);
    setup.faulted = true;
    // A faulted run may legitimately reject requests through the dead
    // middle switch; conformance still demands the two modes agree on
    // every index.
    setup.expect_nonblocking = false;
    sweep(&setup, "three-stage/faulted");
}

#[test]
fn awg_clos_fault_free_batches_conform() {
    // k = r so every module pair is wavelength-reachable.
    let setup = SimSetup::awg_clos(2, 4, 4, STEPS, 1);
    sweep(&setup, "awg-clos/fault-free");
}

#[test]
fn awg_clos_faulted_batches_conform() {
    let mut setup = SimSetup::awg_clos(2, 4, 4, STEPS, 1);
    setup.faulted = true;
    // Killing a grating at the exact bound may legitimately block.
    setup.expect_nonblocking = false;
    sweep(&setup, "awg-clos/faulted");
}

/// A starved geometry (m below the bound, spread selection) makes hard
/// Blocked outcomes reachable — the batch path must report the same
/// blocks at the same indices, not mask or duplicate them.
#[test]
fn underprovisioned_three_stage_batches_conform() {
    let setup = SimSetup::three_stage_underprovisioned(4, 4, 2, STEPS, 1);
    sweep(&setup, "three-stage/underprovisioned");
}

/// The graph backend through the same amortization contract, both
/// fault regimes, via the Scenario entry point.
#[test]
fn graph_batches_conform() {
    let base = Scenario::new(wdm_sim::BackendKind::DEFAULT_GRAPH)
        .geometry(1, 8, 2)
        .schedule(STEPS, 1);
    sweep(&base.sim_setup().unwrap(), "graph/fault-free");
    sweep(&base.faulted(true).sim_setup().unwrap(), "graph/faulted");
}
