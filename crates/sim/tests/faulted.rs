//! Faulted-run sweeps: conservation invariants under every schedule,
//! and the spare-margin nonblocking guarantee inside the simulator.
//!
//! Faulted runs have schedule-dependent victim sets (which connections
//! a fault evicts depends on what was admitted when it fired), so the
//! per-index serial oracle does not apply; instead every interleaving
//! must satisfy the outcome conservation laws, and — when the surviving
//! middle stage still meets the Theorem 1 bound — admit everything.

use wdm_core::Fault;
use wdm_multistage::bounds;
use wdm_sim::{simulate, ChoiceStream, Scheduler, SimParams, SimSetup};
use wdm_workload::{FaultAction, TimedFault};

/// Spare margin m = bound + 1 with one mid-trace middle-switch kill:
/// the surviving stage still meets the bound, so every schedule must
/// stay clean, conserve outcomes, and hard-block nothing.
#[test]
fn three_stage_spare_margin_survives_faulted_sweep() {
    let mut setup = SimSetup::three_stage_at_bound(2, 4, 1, 40, 4);
    setup.m += 1;
    setup.faulted = true;
    let report = setup.sweep(0..48);
    assert!(
        report.failures.is_empty(),
        "margin fabric violated invariants:\n{}",
        report.failures[0]
    );
    assert!(report.distinct_schedules >= 40);
}

/// The crossbar under seed-derived port faults: conservation laws hold
/// under every schedule (victims become orphaned departures, refused
/// connects become `ComponentDown` — nothing is lost or double
/// counted).
#[test]
fn crossbar_faulted_sweep_conserves_outcomes() {
    let mut setup = SimSetup::crossbar(2, 4, 1, 40, 4);
    setup.faulted = true;
    let report = setup.sweep(0..48);
    assert!(
        report.failures.is_empty(),
        "crossbar faulted run violated invariants:\n{}",
        report.failures[0]
    );
}

/// Killing a middle at m = bound (no spare) may legitimately block, so
/// `expect_nonblocking` is dropped — but the conservation laws still
/// bind every schedule.
#[test]
fn at_bound_kill_without_margin_still_conserves() {
    let mut setup = SimSetup::three_stage_at_bound(2, 4, 1, 40, 4);
    setup.faulted = true;
    setup.expect_nonblocking = false;
    let report = setup.sweep(0..48);
    assert!(
        report.failures.is_empty(),
        "conservation violated on degraded fabric:\n{}",
        report.failures[0]
    );
}

/// Spare-margin, inspected directly: with m = bound + 1 and one kill,
/// self-healing must relocate every victim (`heal_failed == 0`) and the
/// run must end with zero hard blocks — Theorem 1 applied to the
/// surviving fabric, exercised across schedules.
#[test]
fn spare_margin_heals_every_victim() {
    let n = 2;
    let r = 4;
    let bound = bounds::theorem1_min_m(n, r);
    let setup = {
        let mut s = SimSetup::three_stage_at_bound(n, r, 1, 40, 4);
        s.m = bound.m + 1;
        s
    };
    for seed in 0..16u64 {
        let trace = setup.trace(seed);
        let kill = TimedFault {
            time: trace[trace.len() / 3].time,
            action: FaultAction::Fail(Fault::MiddleSwitch((seed % setup.m as u64) as u32)),
        };
        let mut choices = ChoiceStream::new(seed);
        let run = simulate(
            wdm_multistage::ThreeStageNetwork::new(
                wdm_multistage::ThreeStageParams::new(n, setup.m, r, 1),
                wdm_multistage::Construction::MswDominant,
                setup.model,
            ),
            &trace,
            &[kill],
            &SimParams::default(),
            Scheduler::Random(&mut choices),
        );
        let s = &run.report.summary;
        assert!(
            run.report.is_clean(),
            "seed {seed}: {:?}",
            run.report.errors
        );
        assert_eq!(s.blocked, 0, "seed {seed}: margin fabric hard-blocked");
        assert_eq!(s.heal_failed, 0, "seed {seed}: heal failed with margin");
        assert_eq!(s.connections_hit, s.healed, "seed {seed}");
        assert_eq!(s.active, 0, "seed {seed}");
    }
}
