//! Failing-seed artifacts on under-provisioned fabrics.
//!
//! Two regimes, both informative:
//!
//! * **`m = bound − 1`** — one middle switch below Theorem 1's
//!   *sufficient* condition. At these small geometries the bound has
//!   measurable slack: the adversary that drives the theorem's counting
//!   argument must consume an output endpoint in every module it
//!   conflicts with, which at small `n·k` starves the blocked request
//!   of legal destinations before all middles are covered. The sweep
//!   asserts zero hard blocks — an empirical record of that slack, and
//!   a regression guard on the routing search.
//! * **Starved (`m` far below the bound)** — hard blocks are certain,
//!   and the harness must turn the first one into a replayable,
//!   delta-debugged [`FailingSeed`] artifact of ≤ 10 events.

use wdm_sim::{SimSetup, Violation};

/// One below the sufficient bound still never blocks at this geometry:
/// Theorem 1's counting argument over-provisions when n·k is small.
#[test]
fn bound_minus_one_has_empirical_slack() {
    for (n, r) in [(2u32, 4u32), (4, 4)] {
        let setup = SimSetup::three_stage_underprovisioned(n, r, 1, 40, 4);
        let report = setup.sweep(0..24);
        assert!(
            report.failures.is_empty(),
            "n={n} r={r} m={}: hard block one below the bound:\n{}",
            setup.m,
            report.failures[0]
        );
    }
}

/// A starved middle stage must fail, and the failure must come back as
/// a shrunk, replayable artifact: ≤ 10 events plus a seed and a
/// `wdmcast sim` command line.
#[test]
fn starved_network_yields_shrunk_failing_seed() {
    let mut setup = SimSetup::three_stage_underprovisioned(4, 4, 1, 60, 4);
    setup.m = 3; // bound is 13; 3 middles cannot absorb adversarial churn
    let failure = setup
        .failing_seed(0)
        .expect("a starved network must produce a failing seed");
    assert!(
        failure
            .violations
            .iter()
            .any(|v| matches!(v, Violation::HardBlock { .. })),
        "expected a hard block, got {:?}",
        failure.violations
    );
    assert!(
        failure.trace.len() <= 10,
        "shrunk trace has {} events (wanted ≤ 10):\n{failure}",
        failure.trace.len()
    );
    let repro = failure.repro();
    assert!(repro.contains("--seed 0"), "{repro}");
    assert!(repro.contains("--backend three-stage"), "{repro}");
    assert!(repro.contains("--m 3"), "{repro}");
}

/// The shrunk trace is 1-minimal *and still failing*: replaying it
/// under a fresh scheduler from the same seed reproduces the hard
/// block — the artifact is self-contained evidence, not a snapshot of
/// transient state.
#[test]
fn shrunk_trace_replays_the_failure() {
    let mut setup = SimSetup::three_stage_underprovisioned(4, 4, 1, 60, 4);
    setup.m = 3;
    let failure = setup.failing_seed(3).expect("starved network fails");
    let mut choices = wdm_sim::ChoiceStream::new(failure.seed);
    let violations = setup.violations_for(&failure.trace, &[], &mut choices);
    assert!(
        violations
            .iter()
            .any(|v| matches!(v, Violation::HardBlock { .. })),
        "shrunk trace no longer blocks: {violations:?}"
    );
}

/// Failing seeds are dense in the starved regime — the sweep itself
/// collects them as artifacts.
#[test]
fn starved_sweep_collects_artifacts() {
    let mut setup = SimSetup::three_stage_underprovisioned(4, 4, 1, 60, 4);
    setup.m = 3;
    let report = setup.sweep(0..8);
    assert_eq!(report.failures.len(), 8, "every starved seed must fail");
    for f in &report.failures {
        assert!(f.trace.len() <= 10, "unshrunk artifact:\n{f}");
        assert!(!f.repro().is_empty());
    }
}
