//! Serial-oracle conformance sweeps and the differential backend
//! runner — the tentpole checks of the deterministic simulation
//! harness.
//!
//! On a legal, closed churn trace against a fabric provisioned at the
//! Theorem 1 bound, *every* seeded interleaving of the sharded engine
//! must produce exactly the serial reference outcomes: cross-shard
//! reordering may surface as transient `Busy` conflicts, but the
//! park-and-retry machinery has to absorb them all. The sweeps below
//! prove the explored schedules are genuinely distinct by counting
//! decision-log fingerprints.

use wdm_sim::{diff_runs, simulate, ChoiceStream, Scheduler, SimParams, SimSetup};

/// ISSUE acceptance: ≥100 distinct seeded interleavings of a
/// Theorem-1-bound churn trace with zero oracle divergences.
#[test]
fn three_stage_at_bound_conformance_sweep() {
    let setup = SimSetup::three_stage_at_bound(2, 4, 1, 40, 4);
    let report = setup.sweep(0..128);
    assert_eq!(report.checked, 128);
    assert!(
        report.failures.is_empty(),
        "oracle divergence:\n{}",
        report.failures[0]
    );
    assert!(
        report.distinct_schedules >= 100,
        "only {} distinct schedules in 128 seeds",
        report.distinct_schedules
    );
}

/// The crossbar (strictly nonblocking by construction) under the same
/// sweep: different backend, same conformance obligation.
#[test]
fn crossbar_conformance_sweep() {
    let setup = SimSetup::crossbar(2, 4, 1, 40, 4);
    let report = setup.sweep(0..64);
    assert!(
        report.failures.is_empty(),
        "oracle divergence:\n{}",
        report.failures[0]
    );
    assert!(report.distinct_schedules >= 50);
}

/// More shards than ports-worth of contention: the schedule space is
/// wider but the oracle obligation is identical.
#[test]
fn conformance_is_shard_count_independent() {
    for shards in [1usize, 2, 8] {
        let setup = SimSetup::three_stage_at_bound(2, 4, 1, 30, shards);
        let report = setup.sweep(0..24);
        assert!(
            report.failures.is_empty(),
            "shards={shards}:\n{}",
            report.failures[0]
        );
    }
}

/// Differential backend runner: an identical trace through the
/// crossbar and through a three-stage network at the Theorem 1 bound
/// must yield the same per-event verdicts — both constructions promise
/// nonblocking, so any disagreement localizes a bug to one of them.
#[test]
fn crossbar_and_three_stage_agree_at_the_bound() {
    let cb = SimSetup::crossbar(2, 4, 1, 40, 4);
    let ts = SimSetup::three_stage_at_bound(2, 4, 1, 40, 4);
    let params = SimParams::default();
    for seed in 0..32u64 {
        let trace = cb.trace(seed);
        let mut cs_a = ChoiceStream::new(seed);
        let run_a = simulate(
            make_crossbar(&cb),
            &trace,
            &[],
            &params,
            Scheduler::Random(&mut cs_a),
        );
        let mut cs_b = ChoiceStream::new(seed);
        let run_b = simulate(
            make_three_stage(&ts),
            &trace,
            &[],
            &params,
            Scheduler::Random(&mut cs_b),
        );
        let diffs = diff_runs(&run_a, &run_b);
        assert!(
            diffs.is_empty(),
            "seed {seed}: backends diverged: {}",
            diffs[0]
        );
    }
}

fn make_crossbar(setup: &SimSetup) -> wdm_fabric::CrossbarSession {
    wdm_fabric::CrossbarSession::new(
        wdm_core::NetworkConfig::new(setup.geo.ports(), setup.geo.k),
        setup.model,
    )
}

fn make_three_stage(setup: &SimSetup) -> wdm_multistage::ThreeStageNetwork {
    wdm_multistage::ThreeStageNetwork::new(
        wdm_multistage::ThreeStageParams::new(setup.geo.n, setup.m, setup.geo.r, setup.geo.k),
        wdm_multistage::Construction::MswDominant,
        setup.model,
    )
}
