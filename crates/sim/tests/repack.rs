//! Conformance sweeps for rearrangeable (repacking) operation.
//!
//! Below the nonblocking bound the engine may rearrange existing routes
//! with make-before-break moves to admit a connect FirstFit would hard
//! block. Which moves run depends on which routes exist when the block
//! happens — i.e. on the interleaving — so repack runs are judged by
//! the schedule-independent conservation laws (every offered connect
//! resolves exactly once, every admitted connect leaves exactly once,
//! the drained backend is empty and self-consistent), never by
//! per-index equality with a serial reference. The mid-move invariants
//! (consistency at every intermediate step, no session ever dark,
//! aborts restore the original route byte for byte) are proved at the
//! multistage layer; these sweeps establish that whole engine lifetimes
//! built from thousands of such moves stay conservative under
//! adversarial churn, scheduling, and faults.

use wdm_core::{MulticastModel, NetworkConfig};
use wdm_multistage::{Construction, SelectionStrategy, ThreeStageNetwork, ThreeStageParams};
use wdm_runtime::{RepackPolicy, RuntimeConfig};
use wdm_sim::{invariant_violations, simulate, Scheduler, SimParams, SimSetup, Violation};
use wdm_workload::{close_trace, DynamicTraffic, TimedEvent};

const SEEDS: u64 = 256;

fn setup_at_bound_minus_one(faulted: bool) -> SimSetup {
    let mut setup = SimSetup::three_stage_underprovisioned(2, 4, 1, 40, 4).with_repack();
    setup.faulted = faulted;
    setup
}

/// Fault-free churn at `m = bound − 1` with on-block repacking: every
/// seed must satisfy the conservation laws, resolve every event, and
/// drain to an empty, consistent fabric.
#[test]
fn repack_sweep_at_bound_minus_one_fault_free() {
    let setup = setup_at_bound_minus_one(false);
    let report = setup.sweep(0..SEEDS);
    assert_eq!(report.checked, SEEDS as usize);
    assert!(
        report.failures.is_empty(),
        "repack run violated an invariant:\n{}",
        report.failures[0]
    );
    assert!(
        report.distinct_schedules > SEEDS as usize / 2,
        "sweep explored too few schedules: {}",
        report.distinct_schedules
    );
}

/// The same sweep with a seed-derived middle-switch failure and repair
/// mid-trace: a fault racing in-flight repack moves must abort them
/// cleanly (the multistage layer proves the route survives), and the
/// run as a whole must still conserve every request.
#[test]
fn repack_sweep_at_bound_minus_one_faulted() {
    let setup = setup_at_bound_minus_one(true);
    let report = setup.sweep(0..SEEDS);
    assert_eq!(report.checked, SEEDS as usize);
    assert!(
        report.failures.is_empty(),
        "faulted repack run violated an invariant:\n{}",
        report.failures[0]
    );
}

fn starved_net() -> ThreeStageNetwork {
    // Theorem 1 bound for (n=2, r=4) is 6; 2 middles guarantee blocks
    // under sustained load with load-spreading selection.
    let mut net = ThreeStageNetwork::new(
        ThreeStageParams::new(2, 2, 4, 2),
        Construction::MswDominant,
        wdm_core::MulticastModel::Msw,
    );
    net.set_strategy(SelectionStrategy::Spread);
    net
}

/// A closed mixed-fanout Poisson trace over the starved geometry.
///
/// Dominance needs traffic with *slack*: the adversarial churn
/// generator emits only full-fanout multicasts, whose branches carry a
/// leg to every output module — a relocation target must then have a
/// free wavelength on the input link *and* on all `r` legs at once, so
/// under saturation no make phase can ever succeed and rearrangement is
/// provably useless. Mixed unicast/small-multicast holding-time traffic
/// is where the paper's rearrangeable regime pays off.
fn mixed_trace(seed: u64) -> Vec<TimedEvent> {
    let cfg = NetworkConfig::new(8, 2);
    let mut traffic = DynamicTraffic::new(cfg, MulticastModel::Msw, 10.0, 1.0, 2, seed);
    let mut trace = traffic.generate(12.0);
    close_trace(&mut trace, 13.0);
    trace
}

fn starved_params(repack: bool) -> SimParams {
    let mut runtime = RuntimeConfig::default();
    if repack {
        runtime.repack = RepackPolicy::OnBlock {
            budget: SimSetup::REPACK_BUDGET,
        };
    }
    SimParams {
        shards: 4,
        batch: 1,
        runtime,
    }
}

/// On a starved fabric (m far below the bound) repacking must strictly
/// beat FirstFit in aggregate: fewer hard blocks, more admissions, with
/// real committed moves and the conservation laws intact on both sides.
#[test]
fn repack_dominates_firstfit_on_starved_fabric() {
    let (mut blocked_off, mut blocked_on) = (0u64, 0u64);
    let (mut admitted_off, mut admitted_on) = (0u64, 0u64);
    let mut moves = 0u64;
    for seed in 0..8 {
        let trace = mixed_trace(seed);
        let off = simulate(
            starved_net(),
            &trace,
            &[],
            &starved_params(false),
            Scheduler::Serial,
        );
        let on = simulate(
            starved_net(),
            &trace,
            &[],
            &starved_params(true),
            Scheduler::Serial,
        );
        assert!(
            invariant_violations(&off, false).is_empty(),
            "seed {seed}: FirstFit run broke an invariant"
        );
        assert!(
            invariant_violations(&on, false).is_empty(),
            "seed {seed}: repack run broke an invariant"
        );
        blocked_off += off.report.summary.blocked;
        blocked_on += on.report.summary.blocked;
        admitted_off += off.report.summary.admitted;
        admitted_on += on.report.summary.admitted;
        moves += on.report.summary.repack_moves_committed;
        assert_eq!(
            on.report.summary.repack_moves_attempted,
            on.report.summary.repack_moves_committed + on.report.summary.repack_moves_aborted,
            "seed {seed}: every attempted move either commits or aborts"
        );
    }
    assert!(blocked_off > 0, "the starved fabric never blocked FirstFit");
    assert!(
        blocked_on < blocked_off,
        "repacking did not reduce hard blocks: {blocked_on} vs {blocked_off}"
    );
    assert!(
        admitted_on > admitted_off,
        "repacking did not raise admissions: {admitted_on} vs {admitted_off}"
    );
    assert!(moves > 0, "dominance without committed moves is impossible");
}

/// A starved repack run still blocks; asserting nonblocking anyway must
/// yield a delta-debugged [`FailingSeed`] whose shrunk trace replays the
/// block and whose reproduction command carries `--repack`.
#[test]
fn repack_failing_seed_shrinks_and_carries_the_flag() {
    let mut setup = SimSetup::three_stage_underprovisioned(4, 4, 1, 60, 4).with_repack();
    setup.m = 3;
    setup.expect_nonblocking = true; // repacking reduces blocks, it cannot erase them
    let failure = setup
        .failing_seed(0)
        .expect("a starved network must block even with repacking");
    assert!(
        failure
            .violations
            .iter()
            .any(|v| matches!(v, Violation::HardBlock { .. })),
        "expected a hard block, got {:?}",
        failure.violations
    );
    assert!(
        failure.trace.len() <= 12,
        "shrunk repack trace has {} events:\n{failure}",
        failure.trace.len()
    );
    let repro = failure.repro();
    assert!(repro.contains("--repack"), "{repro}");
    assert!(repro.contains("--m 3"), "{repro}");
}
