//! Experiment reports: named tables rendered to stdout and CSV files.

use crate::TextTable;
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// A named collection of result tables produced by one generator binary.
///
/// `print()` writes everything to stdout (the paper-shaped view);
/// `write_csv_dir()` drops one CSV per table for EXPERIMENTS.md and
/// downstream plotting.
#[derive(Debug, Default)]
pub struct Report {
    sections: Vec<(String, String, TextTable)>,
}

impl Report {
    /// An empty report.
    pub fn new() -> Self {
        Report::default()
    }

    /// Add a table under a section id (used as the CSV filename stem) and
    /// human title.
    pub fn add(&mut self, id: impl Into<String>, title: impl Into<String>, table: TextTable) {
        self.sections.push((id.into(), title.into(), table));
    }

    /// Number of tables.
    pub fn len(&self) -> usize {
        self.sections.len()
    }

    /// `true` iff the report has no tables.
    pub fn is_empty(&self) -> bool {
        self.sections.is_empty()
    }

    /// Render every section to a string (what `print` shows).
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (id, title, table) in &self.sections {
            out.push_str(&format!("== {title} [{id}] ==\n{table}\n"));
        }
        out
    }

    /// Print all sections to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }

    /// Render the whole report as a Markdown document (pipe tables),
    /// suitable for appending to experiment logs.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        for (id, title, table) in &self.sections {
            out.push_str(&format!("## {title}\n\n<!-- id: {id} -->\n\n"));
            let csv = table.to_csv();
            let mut lines = csv.lines();
            if let Some(header) = lines.next() {
                let cells: Vec<&str> = header.split(',').collect();
                out.push_str(&format!("| {} |\n", cells.join(" | ")));
                out.push_str(&format!("|{}\n", "---|".repeat(cells.len())));
                for line in lines {
                    out.push_str(&format!(
                        "| {} |\n",
                        line.split(',').collect::<Vec<_>>().join(" | ")
                    ));
                }
            }
            out.push('\n');
        }
        out
    }

    /// Write one `<id>.csv` per table into `dir` (created if missing).
    /// Returns the paths written.
    pub fn write_csv_dir(&self, dir: impl AsRef<Path>) -> std::io::Result<Vec<PathBuf>> {
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir)?;
        let mut paths = Vec::new();
        for (id, _, table) in &self.sections {
            let path = dir.join(format!("{id}.csv"));
            let mut f = std::fs::File::create(&path)?;
            f.write_all(table.to_csv().as_bytes())?;
            paths.push(path);
        }
        Ok(paths)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Report {
        let mut r = Report::new();
        let mut t = TextTable::new(["a"]);
        t.row(["1"]);
        r.add("t1", "First table", t);
        let mut t = TextTable::new(["b"]);
        t.row(["2"]);
        r.add("t2", "Second table", t);
        r
    }

    #[test]
    fn render_contains_sections() {
        let s = sample().render();
        assert!(s.contains("== First table [t1] =="));
        assert!(s.contains("== Second table [t2] =="));
    }

    #[test]
    fn csv_files_written() {
        let dir = std::env::temp_dir().join(format!("wdm-report-{}", std::process::id()));
        let paths = sample().write_csv_dir(&dir).unwrap();
        assert_eq!(paths.len(), 2);
        for p in &paths {
            let content = std::fs::read_to_string(p).unwrap();
            assert!(content.lines().count() >= 2);
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn len_tracks_sections() {
        assert_eq!(sample().len(), 2);
        assert!(Report::new().is_empty());
    }

    #[test]
    fn markdown_has_pipe_tables() {
        let md = sample().to_markdown();
        assert!(md.contains("## First table"));
        assert!(md.contains("| a |"));
        assert!(md.contains("|---|"));
        assert!(md.contains("| 1 |"));
        assert!(md.contains("<!-- id: t2 -->"));
    }
}
