//! # wdm-analysis — experiment engine
//!
//! Shared infrastructure for the table/figure generators and benchmarks:
//!
//! * [`parallel_map`] / [`parallel_sweep`] — order-preserving parallel
//!   evaluation of parameter grids on scoped threads (crossbeam);
//! * [`Summary`] — basic descriptive statistics;
//! * [`TextTable`] — aligned text tables with CSV export, used to print
//!   the paper's tables;
//! * [`Report`] — a collection of named tables written alongside
//!   `EXPERIMENTS.md`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod chart;
mod report;
mod stats;
mod sweep;
mod table;

pub use chart::{sparkline, BarChart};
pub use report::Report;
pub use stats::{percentile, wilson_interval, Summary};
pub use sweep::{parallel_map, parallel_sweep};
pub use table::TextTable;
