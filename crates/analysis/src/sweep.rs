//! Parallel parameter sweeps on scoped threads.
//!
//! The experiment grids here are small-to-medium (tens to thousands of
//! points) with per-point work ranging from microseconds (cost formulas)
//! to seconds (routing soaks), so a simple chunk-per-thread split over
//! `crossbeam::scope` is the right tool — no work stealing needed, no
//! unsafe, results returned in input order.

/// Parallel, order-preserving map over `items` using up to
/// `available_parallelism` scoped threads.
///
/// ```
/// let squares = wdm_analysis::parallel_map(0u64..100, |x| x * x);
/// assert_eq!(squares[7], 49);
/// ```
pub fn parallel_map<I, T, O, F>(items: I, f: F) -> Vec<O>
where
    I: IntoIterator<Item = T>,
    T: Send,
    O: Send,
    F: Fn(T) -> O + Sync,
{
    let threads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    map_with_threads(items, threads, f)
}

/// [`parallel_map`] with an explicit worker count; lets tests exercise
/// the threaded path on single-CPU hosts.
fn map_with_threads<I, T, O, F>(items: I, threads: usize, f: F) -> Vec<O>
where
    I: IntoIterator<Item = T>,
    T: Send,
    O: Send,
    F: Fn(T) -> O + Sync,
{
    let items: Vec<T> = items.into_iter().collect();
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let threads = threads.max(1).min(n);
    if threads == 1 {
        return items.into_iter().map(f).collect();
    }
    let chunk = n.div_ceil(threads);
    let mut slots: Vec<Option<O>> = (0..n).map(|_| None).collect();
    let f = &f;
    crossbeam::scope(|scope| {
        // Pair each chunk of inputs with its chunk of output slots; the
        // disjoint `chunks_mut` windows make this data-race-free without
        // locks.
        let mut item_iter = items.into_iter();
        for slot_chunk in slots.chunks_mut(chunk) {
            let inputs: Vec<T> = item_iter.by_ref().take(slot_chunk.len()).collect();
            scope.spawn(move |_| {
                for (slot, item) in slot_chunk.iter_mut().zip(inputs) {
                    *slot = Some(f(item));
                }
            });
        }
    })
    .expect("sweep worker panicked");
    slots
        .into_iter()
        .map(|s| s.expect("all slots filled"))
        .collect()
}

/// Sweep a 2-D parameter grid, returning `(a, b, f(a, b))` triples in
/// row-major order.
pub fn parallel_sweep<A, B, O, F>(axis_a: &[A], axis_b: &[B], f: F) -> Vec<(A, B, O)>
where
    A: Copy + Send + Sync,
    B: Copy + Send + Sync,
    O: Send,
    F: Fn(A, B) -> O + Sync,
{
    let grid: Vec<(A, B)> = axis_a
        .iter()
        .flat_map(|&a| axis_b.iter().map(move |&b| (a, b)))
        .collect();
    parallel_map(grid, |(a, b)| (a, b, f(a, b)))
        .into_iter()
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn preserves_order() {
        let out = parallel_map(0..1000u64, |x| x * 2);
        assert_eq!(out.len(), 1000);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i as u64 * 2);
        }
    }

    #[test]
    fn empty_input() {
        let out: Vec<u64> = parallel_map(std::iter::empty::<u64>(), |x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn single_item() {
        assert_eq!(parallel_map([41], |x| x + 1), vec![42]);
    }

    #[test]
    fn all_items_processed_exactly_once() {
        let counter = AtomicUsize::new(0);
        let out = parallel_map(0..500, |x| {
            counter.fetch_add(1, Ordering::Relaxed);
            x
        });
        assert_eq!(out.len(), 500);
        assert_eq!(counter.load(Ordering::Relaxed), 500);
    }

    #[test]
    fn sweep_is_row_major() {
        let grid = parallel_sweep(&[1u32, 2], &[10u32, 20, 30], |a, b| a * b);
        assert_eq!(
            grid,
            vec![
                (1, 10, 10),
                (1, 20, 20),
                (1, 30, 30),
                (2, 10, 20),
                (2, 20, 40),
                (2, 30, 60)
            ]
        );
    }

    #[test]
    #[should_panic(expected = "sweep worker panicked")]
    fn worker_panic_propagates() {
        // Pin the worker count: on a single-CPU host `parallel_map`
        // would take the sequential path and the raw panic would
        // propagate without the scope's wrapper message.
        map_with_threads(0..100, 2, |x| {
            if x == 50 {
                panic!("boom");
            }
            x
        });
    }

    #[test]
    fn explicit_thread_counts_agree() {
        for threads in [1, 2, 7] {
            let out = map_with_threads(0..100u64, threads, |x| x * 3);
            assert_eq!(out, (0..100u64).map(|x| x * 3).collect::<Vec<_>>());
        }
    }
}
