//! Terminal charts: horizontal bars and sparklines for the generator
//! binaries' series output (the closest a text harness gets to the
//! paper's figures).

use core::fmt;

/// Unicode eighth-block characters for sub-cell bar resolution.
const BLOCKS: [char; 9] = [' ', '▏', '▎', '▍', '▌', '▋', '▊', '▉', '█'];

/// Sparkline glyphs (one cell per value).
const SPARKS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];

/// A labeled horizontal bar chart scaled to its maximum value.
///
/// ```
/// let mut c = wdm_analysis::BarChart::new("loads", 20);
/// c.bar("a", 1.0);
/// c.bar("b", 2.0);
/// let s = c.to_string();
/// assert!(s.contains('█'));
/// ```
#[derive(Debug, Clone)]
pub struct BarChart {
    title: String,
    width: usize,
    rows: Vec<(String, f64)>,
}

impl BarChart {
    /// New chart; `width` is the maximum bar length in cells.
    pub fn new(title: impl Into<String>, width: usize) -> Self {
        BarChart {
            title: title.into(),
            width: width.max(1),
            rows: Vec::new(),
        }
    }

    /// Append a labeled value (negative values are clamped to zero).
    pub fn bar(&mut self, label: impl Into<String>, value: f64) -> &mut Self {
        self.rows.push((label.into(), value.max(0.0)));
        self
    }

    /// Number of bars.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` iff no bars were added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

impl fmt::Display for BarChart {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}", self.title)?;
        let max = self.rows.iter().map(|(_, v)| *v).fold(0.0f64, f64::max);
        let label_w = self
            .rows
            .iter()
            .map(|(l, _)| l.chars().count())
            .max()
            .unwrap_or(0);
        for (label, value) in &self.rows {
            let cells = if max == 0.0 {
                0.0
            } else {
                value / max * self.width as f64
            };
            let full = cells.floor() as usize;
            let partial = ((cells - full as f64) * 8.0).round() as usize;
            let mut bar: String = "█".repeat(full);
            if partial > 0 && full < self.width {
                bar.push(BLOCKS[partial]);
            }
            writeln!(
                f,
                "{label:<label_w$}  {bar:<w$}  {value:.4}",
                w = self.width + 1
            )?;
        }
        Ok(())
    }
}

/// Render a sequence as a one-line sparkline (empty input → empty
/// string). Values are scaled min..max to the 8 glyph levels.
///
/// ```
/// assert_eq!(wdm_analysis::sparkline(&[0.0, 0.5, 1.0]), "▁▅█");
/// ```
pub fn sparkline(values: &[f64]) -> String {
    if values.is_empty() {
        return String::new();
    }
    let min = values.iter().copied().fold(f64::INFINITY, f64::min);
    let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let span = max - min;
    values
        .iter()
        .map(|&v| {
            let level = if span == 0.0 {
                0
            } else {
                (((v - min) / span) * 7.0).round() as usize
            };
            SPARKS[level.min(7)]
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bars_scale_to_max() {
        let mut c = BarChart::new("t", 10);
        c.bar("full", 10.0).bar("half", 5.0).bar("zero", 0.0);
        let lines: Vec<String> = c.to_string().lines().map(String::from).collect();
        assert_eq!(lines.len(), 4);
        let count = |s: &str| s.chars().filter(|&ch| ch == '█').count();
        assert_eq!(count(&lines[1]), 10);
        assert_eq!(count(&lines[2]), 5);
        assert_eq!(count(&lines[3]), 0);
    }

    #[test]
    fn negative_values_clamped() {
        let mut c = BarChart::new("t", 5);
        c.bar("n", -3.0);
        assert!(c.to_string().lines().nth(1).unwrap().contains("0.0000"));
    }

    #[test]
    fn all_zero_chart_renders() {
        let mut c = BarChart::new("t", 5);
        c.bar("a", 0.0).bar("b", 0.0);
        assert_eq!(c.to_string().lines().count(), 3);
    }

    #[test]
    fn sparkline_shapes() {
        assert_eq!(sparkline(&[]), "");
        assert_eq!(sparkline(&[1.0]), "▁");
        assert_eq!(sparkline(&[1.0, 1.0, 1.0]), "▁▁▁");
        let s = sparkline(&[0.0, 1.0, 2.0, 3.0]);
        assert_eq!(s.chars().count(), 4);
        assert!(s.starts_with('▁') && s.ends_with('█'));
    }

    #[test]
    fn sparkline_is_monotone_for_monotone_input() {
        let vals: Vec<f64> = (0..20).map(|i| (i * i) as f64).collect();
        let s: Vec<char> = sparkline(&vals).chars().collect();
        let level = |c: char| SPARKS.iter().position(|&x| x == c).unwrap();
        for w in s.windows(2) {
            assert!(level(w[0]) <= level(w[1]));
        }
    }
}
