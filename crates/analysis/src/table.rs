//! Aligned text tables (and their CSV form) for the table generators.

use core::fmt;

/// A simple column-aligned table.
///
/// ```
/// let mut t = wdm_analysis::TextTable::new(["model", "crosspoints"]);
/// t.row(["MSW", "18"]);
/// t.row(["MAW", "36"]);
/// let s = t.to_string();
/// assert!(s.contains("MSW"));
/// ```
#[derive(Debug, Clone)]
pub struct TextTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Create a table with the given column headers.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(headers: I) -> Self {
        let headers: Vec<String> = headers.into_iter().map(Into::into).collect();
        assert!(!headers.is_empty(), "table needs at least one column");
        TextTable {
            headers,
            rows: Vec::new(),
        }
    }

    /// Append a row. Panics if the cell count differs from the header
    /// count (a mismatch is always a generator bug).
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) -> &mut Self {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` iff no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// RFC-4180-ish CSV (quotes cells containing separators or quotes).
    pub fn to_csv(&self) -> String {
        fn esc(cell: &str) -> String {
            if cell.contains([',', '"', '\n']) {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        }
        let mut out = String::new();
        let header: Vec<String> = self.headers.iter().map(|h| esc(h)).collect();
        out.push_str(&header.join(","));
        out.push('\n');
        for row in &self.rows {
            let cells: Vec<String> = row.iter().map(|c| esc(c)).collect();
            out.push_str(&cells.join(","));
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for TextTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.chars().count());
            }
        }
        let write_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            for (i, c) in cells.iter().enumerate() {
                if i > 0 {
                    write!(f, "  ")?;
                }
                write!(f, "{c:<width$}", width = widths[i])?;
            }
            writeln!(f)
        };
        write_row(f, &self.headers)?;
        let rule: Vec<String> = widths.iter().map(|&w| "-".repeat(w)).collect();
        write_row(f, &rule)?;
        for row in &self.rows {
            write_row(f, row)?;
        }
        let _ = cols;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new(["name", "value"]);
        t.row(["a", "1"]).row(["long-name", "12345"]);
        let s = t.to_string();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        // Header and rule align to the widest cell.
        assert!(lines[0].starts_with("name     "));
        assert!(lines[1].starts_with("---------"));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn row_width_checked() {
        TextTable::new(["a", "b"]).row(["only-one"]);
    }

    #[test]
    fn csv_escaping() {
        let mut t = TextTable::new(["x"]);
        t.row(["plain"]);
        t.row(["with,comma"]);
        t.row(["with\"quote"]);
        let csv = t.to_csv();
        assert!(csv.contains("\"with,comma\""));
        assert!(csv.contains("\"with\"\"quote\""));
        assert_eq!(csv.lines().count(), 4);
    }

    #[test]
    fn len_and_empty() {
        let mut t = TextTable::new(["h"]);
        assert!(t.is_empty());
        t.row(["v"]);
        assert_eq!(t.len(), 1);
    }
}
