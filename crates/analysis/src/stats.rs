//! Descriptive statistics for experiment outputs.

use serde::{Deserialize, Serialize};

/// Summary statistics of a sample.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Sample size.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (`n−1` denominator; 0 for n < 2).
    pub std_dev: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
    /// Median (average of middle pair for even sizes).
    pub median: f64,
}

impl Summary {
    /// Summarize a sample. Returns `None` for an empty slice.
    pub fn of(data: &[f64]) -> Option<Summary> {
        if data.is_empty() {
            return None;
        }
        let n = data.len();
        let mean = data.iter().sum::<f64>() / n as f64;
        let var = if n > 1 {
            data.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1) as f64
        } else {
            0.0
        };
        let mut sorted = data.to_vec();
        sorted.sort_by(|a, b| a.total_cmp(b));
        let median = if n % 2 == 1 {
            sorted[n / 2]
        } else {
            (sorted[n / 2 - 1] + sorted[n / 2]) / 2.0
        };
        Some(Summary {
            count: n,
            mean,
            std_dev: var.sqrt(),
            min: sorted[0],
            max: sorted[n - 1],
            median,
        })
    }

    /// Coefficient of variation (`std_dev / mean`; 0 when the mean is 0).
    pub fn cv(&self) -> f64 {
        if self.mean == 0.0 {
            0.0
        } else {
            self.std_dev / self.mean
        }
    }
}

/// The `q`-th quantile (`q` in `[0, 1]`) of a sample by linear
/// interpolation between closest ranks — the estimator load reports
/// expect for latency percentiles (`percentile(&lat, 0.99)`). Returns
/// `None` for an empty slice; `q` is clamped to `[0, 1]`.
pub fn percentile(data: &[f64], q: f64) -> Option<f64> {
    if data.is_empty() {
        return None;
    }
    let mut sorted = data.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let q = q.clamp(0.0, 1.0);
    let rank = q * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    Some(sorted[lo] + (sorted[hi] - sorted[lo]) * frac)
}

/// Wilson score interval for a binomial proportion (95% by default via
/// `z = 1.96`) — the right interval for blocking probabilities, which sit
/// near 0 where the normal approximation fails.
///
/// Returns `(low, high)`; `(0, 0)..(1, 1)` bounds always hold.
pub fn wilson_interval(successes: u64, trials: u64, z: f64) -> (f64, f64) {
    if trials == 0 {
        return (0.0, 1.0);
    }
    let n = trials as f64;
    let p = successes as f64 / n;
    let z2 = z * z;
    let denom = 1.0 + z2 / n;
    let center = (p + z2 / (2.0 * n)) / denom;
    let half = (z / denom) * (p * (1.0 - p) / n + z2 / (4.0 * n * n)).sqrt();
    ((center - half).max(0.0), (center + half).min(1.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_sample() {
        assert!(Summary::of(&[]).is_none());
    }

    #[test]
    fn single_value() {
        let s = Summary::of(&[5.0]).unwrap();
        assert_eq!(s.count, 1);
        assert_eq!(s.mean, 5.0);
        assert_eq!(s.std_dev, 0.0);
        assert_eq!(s.median, 5.0);
    }

    #[test]
    fn known_sample() {
        let s = Summary::of(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]).unwrap();
        assert!((s.mean - 5.0).abs() < 1e-12);
        // Sample std dev of this classic set is sqrt(32/7).
        assert!((s.std_dev - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 9.0);
        assert_eq!(s.median, 4.5);
    }

    #[test]
    fn odd_median() {
        let s = Summary::of(&[3.0, 1.0, 2.0]).unwrap();
        assert_eq!(s.median, 2.0);
    }

    #[test]
    fn cv_handles_zero_mean() {
        let s = Summary::of(&[-1.0, 1.0]).unwrap();
        assert_eq!(s.cv(), 0.0);
        let s = Summary::of(&[1.0, 3.0]).unwrap();
        assert!(s.cv() > 0.0);
    }

    #[test]
    fn percentile_interpolates() {
        assert_eq!(percentile(&[], 0.5), None);
        let data = [4.0, 1.0, 3.0, 2.0];
        assert_eq!(percentile(&data, 0.0), Some(1.0));
        assert_eq!(percentile(&data, 1.0), Some(4.0));
        assert_eq!(percentile(&data, 0.5), Some(2.5));
        // Median agrees with Summary.
        let s = Summary::of(&data).unwrap();
        assert_eq!(percentile(&data, 0.5), Some(s.median));
        // Out-of-range q clamps.
        assert_eq!(percentile(&data, 7.0), Some(4.0));
    }

    #[test]
    fn percentile_of_a_single_sample_is_that_sample_at_every_q() {
        for q in [0.0, 0.25, 0.5, 0.99, 1.0] {
            assert_eq!(percentile(&[42.0], q), Some(42.0), "q = {q}");
        }
        // Clamping applies to the degenerate case too.
        assert_eq!(percentile(&[42.0], -3.0), Some(42.0));
        assert_eq!(percentile(&[42.0], 7.0), Some(42.0));
    }

    #[test]
    fn percentile_extremes_equal_min_and_max() {
        let data = [9.0, -2.0, 5.5, 0.0, 9.0];
        assert_eq!(percentile(&data, 0.0), Some(-2.0));
        assert_eq!(percentile(&data, 1.0), Some(9.0));
        // Negative q clamps to the minimum, not an index underflow.
        assert_eq!(percentile(&data, -0.5), Some(-2.0));
    }

    #[test]
    fn percentile_on_duplicate_heavy_data_stays_on_the_plateau() {
        // Latency-like sample: a wide plateau with one outlier, the
        // shape that trips naive nearest-rank estimators.
        let mut data = vec![7.0; 99];
        data.push(1000.0);
        assert_eq!(percentile(&data, 0.5), Some(7.0));
        assert_eq!(percentile(&data, 0.98), Some(7.0));
        // p99 sits on the interpolated ramp toward the outlier.
        let p99 = percentile(&data, 0.99).unwrap();
        assert!((7.0..=1000.0).contains(&p99), "p99 = {p99}");
        assert_eq!(percentile(&data, 1.0), Some(1000.0));
        // All-identical data is flat at every quantile.
        let flat = [3.0; 17];
        for q in [0.0, 0.5, 0.9, 1.0] {
            assert_eq!(percentile(&flat, q), Some(3.0));
        }
    }

    #[test]
    fn wilson_contains_the_point_estimate() {
        let (lo, hi) = wilson_interval(15, 100, 1.96);
        assert!(lo < 0.15 && 0.15 < hi);
        assert!(lo > 0.08 && hi < 0.25);
    }

    #[test]
    fn wilson_edges() {
        assert_eq!(wilson_interval(0, 0, 1.96), (0.0, 1.0));
        let (lo, _) = wilson_interval(0, 50, 1.96);
        assert_eq!(lo, 0.0);
        let (_, hi) = wilson_interval(50, 50, 1.96);
        assert_eq!(hi, 1.0);
        // Zero successes still leaves an upper bound well below 1.
        let (_, hi0) = wilson_interval(0, 1000, 1.96);
        assert!(hi0 < 0.01);
    }

    #[test]
    fn wilson_narrows_with_trials() {
        let (lo1, hi1) = wilson_interval(10, 100, 1.96);
        let (lo2, hi2) = wilson_interval(100, 1000, 1.96);
        assert!(hi2 - lo2 < hi1 - lo1);
    }
}
