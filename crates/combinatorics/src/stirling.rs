//! Stirling numbers of the second kind and Bell numbers.
//!
//! `S(n, j)` counts the ways to divide `n` labeled elements into `j`
//! nonempty unlabeled groups. Lemma 3 of the paper sums products of
//! `S(N, j_i)` over all wavelength group counts `j_1..j_k`, so the same
//! values are requested many times — a process-wide memoized table keeps
//! the sweeps cheap (guarded by a `parking_lot::RwLock`; reads are the
//! common case and take the shared lock).

use parking_lot::RwLock;
use std::sync::OnceLock;
use wdm_bignum::BigUint;

/// A growable, memoized table of Stirling numbers of the second kind.
///
/// Rows are computed on demand using the recurrence
/// `S(n, j) = j·S(n−1, j) + S(n−1, j−1)`.
#[derive(Debug, Default)]
pub struct Stirling2Table {
    /// `rows[n][j]` = S(n, j) for 0 ≤ j ≤ n.
    rows: RwLock<Vec<Vec<BigUint>>>,
}

impl Stirling2Table {
    /// Create an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Look up `S(n, j)`, extending the table if needed.
    pub fn get(&self, n: u64, j: u64) -> BigUint {
        if j > n {
            return BigUint::zero();
        }
        let n_idx = n as usize;
        {
            let rows = self.rows.read();
            if let Some(row) = rows.get(n_idx) {
                return row[j as usize].clone();
            }
        }
        let mut rows = self.rows.write();
        while rows.len() <= n_idx {
            let n_cur = rows.len();
            let row = if n_cur == 0 {
                vec![BigUint::one()] // S(0,0) = 1
            } else {
                let prev = &rows[n_cur - 1];
                let mut row = Vec::with_capacity(n_cur + 1);
                row.push(BigUint::zero()); // S(n,0) = 0 for n > 0
                for j in 1..=n_cur {
                    let term1 = prev.get(j).map(|s| s.mul_u64(j as u64)).unwrap_or_default();
                    let term2 = prev[j - 1].clone();
                    row.push(term1 + term2);
                }
                row
            };
            rows.push(row);
        }
        rows[n_idx][j as usize].clone()
    }

    /// Bell number `B(n) = Σ_j S(n, j)` — total set partitions of `n`
    /// elements.
    pub fn bell(&self, n: u64) -> BigUint {
        (0..=n).map(|j| self.get(n, j)).sum()
    }
}

fn global_table() -> &'static Stirling2Table {
    static TABLE: OnceLock<Stirling2Table> = OnceLock::new();
    TABLE.get_or_init(Stirling2Table::new)
}

/// `S(n, j)` via the process-wide memoized table.
///
/// ```
/// use wdm_combinatorics::stirling2;
/// assert_eq!(stirling2(4, 2).to_string(), "7");
/// ```
pub fn stirling2(n: u64, j: u64) -> BigUint {
    global_table().get(n, j)
}

/// Bell number `B(n)` via the process-wide memoized table.
///
/// ```
/// use wdm_combinatorics::bell;
/// assert_eq!(bell(5).to_string(), "52");
/// ```
pub fn bell(n: u64) -> BigUint {
    global_table().bell(n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binomial;

    #[test]
    fn known_small_values() {
        // Rows of S(n, j) from standard tables.
        let expect: [(u64, u64, u64); 12] = [
            (0, 0, 1),
            (1, 1, 1),
            (2, 1, 1),
            (2, 2, 1),
            (3, 2, 3),
            (4, 2, 7),
            (4, 3, 6),
            (5, 2, 15),
            (5, 3, 25),
            (6, 3, 90),
            (7, 4, 350),
            (10, 5, 42525),
        ];
        for (n, j, v) in expect {
            assert_eq!(stirling2(n, j), BigUint::from(v), "S({n},{j})");
        }
    }

    #[test]
    fn zero_cases() {
        assert!(stirling2(5, 0).is_zero());
        assert!(stirling2(3, 7).is_zero());
        assert!(stirling2(0, 0).is_one());
    }

    #[test]
    fn diagonal_and_singletons() {
        for n in 1..20u64 {
            assert!(stirling2(n, n).is_one());
            assert!(stirling2(n, 1).is_one());
        }
    }

    #[test]
    fn stirling_pairs_column() {
        // S(n, 2) = 2^(n-1) - 1.
        for n in 2..30u64 {
            assert_eq!(stirling2(n, 2), BigUint::from(2u64).pow(n - 1) - 1u64);
        }
    }

    #[test]
    fn surjection_identity() {
        // j! · S(n, j) = number of surjections = Σ (-1)^i C(j,i)(j-i)^n.
        // Verified via the equivalent positive form: x^n = Σ_j S(n,j)·P(x,j).
        use crate::falling_factorial;
        for n in 0..10u64 {
            for x in 0..8u64 {
                let lhs = BigUint::from(x).pow(n);
                let rhs: BigUint = (0..=n)
                    .map(|j| stirling2(n, j) * falling_factorial(x, j))
                    .sum();
                assert_eq!(lhs, rhs, "x={x}, n={n}");
            }
        }
    }

    #[test]
    fn bell_matches_known_sequence() {
        let expect = [1u64, 1, 2, 5, 15, 52, 203, 877, 4140, 21147, 115975];
        for (n, &b) in expect.iter().enumerate() {
            assert_eq!(bell(n as u64), BigUint::from(b), "B({n})");
        }
    }

    #[test]
    fn bell_recurrence() {
        // B(n+1) = Σ C(n, i) B(i).
        for n in 0..12u64 {
            let rhs: BigUint = (0..=n).map(|i| binomial(n, i) * bell(i)).sum();
            assert_eq!(bell(n + 1), rhs);
        }
    }

    #[test]
    fn concurrent_reads_are_consistent() {
        let table = Stirling2Table::new();
        std::thread::scope(|s| {
            for t in 0..8 {
                let table = &table;
                s.spawn(move || {
                    for n in 0..40u64 {
                        let j = (n + t) % (n + 1);
                        assert_eq!(table.get(n, j), stirling2(n, j));
                    }
                });
            }
        });
    }
}
