//! Factorials and the falling factorial `P(x, i)` from the paper.

use wdm_bignum::BigUint;

/// `n!` computed exactly.
///
/// ```
/// use wdm_combinatorics::factorial;
/// assert_eq!(factorial(20).to_string(), "2432902008176640000");
/// ```
pub fn factorial(n: u64) -> BigUint {
    let mut acc = BigUint::one();
    for i in 2..=n {
        acc *= i;
    }
    acc
}

/// The falling factorial `P(x, i) = x·(x−1)···(x−i+1)` as defined in the
/// paper (Lemma 2): the number of ways to pick an ordered sequence of `i`
/// distinct items from `x`.
///
/// By convention `P(x, 0) = 1` (the empty product). If `i > x` the product
/// contains the factor zero, so the result is `0` — which matches the
/// combinatorial meaning (no injective choice exists).
///
/// ```
/// use wdm_combinatorics::falling_factorial;
/// assert_eq!(falling_factorial(6, 3).to_string(), "120"); // 6·5·4
/// assert!(falling_factorial(3, 5).is_zero());
/// ```
pub fn falling_factorial(x: u64, i: u64) -> BigUint {
    if i > x {
        return BigUint::zero();
    }
    let mut acc = BigUint::one();
    for f in (x - i + 1)..=x {
        acc *= f;
    }
    acc
}

/// The rising factorial `x·(x+1)···(x+i−1)`.
pub fn rising_factorial(x: u64, i: u64) -> BigUint {
    if i == 0 {
        return BigUint::one();
    }
    if x == 0 {
        return BigUint::zero();
    }
    let mut acc = BigUint::one();
    for f in x..(x + i) {
        acc *= f;
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factorial_base_cases() {
        assert!(factorial(0).is_one());
        assert!(factorial(1).is_one());
        assert_eq!(factorial(5), BigUint::from(120u64));
    }

    #[test]
    fn falling_factorial_edges() {
        assert!(falling_factorial(0, 0).is_one());
        assert!(falling_factorial(7, 0).is_one());
        assert_eq!(falling_factorial(7, 1), BigUint::from(7u64));
        assert_eq!(falling_factorial(7, 7), factorial(7));
        assert!(falling_factorial(7, 8).is_zero());
        assert!(falling_factorial(0, 1).is_zero());
    }

    #[test]
    fn falling_equals_factorial_ratio() {
        // P(x, i) = x! / (x-i)!
        for x in 0..12u64 {
            for i in 0..=x {
                let lhs = falling_factorial(x, i);
                let (q, r) = factorial(x).divrem(&factorial(x - i));
                assert!(r.is_zero());
                assert_eq!(lhs, q, "P({x},{i})");
            }
        }
    }

    #[test]
    fn rising_vs_falling() {
        // x^(i) rising == P(x+i-1, i)
        for x in 1..8u64 {
            for i in 0..6u64 {
                assert_eq!(rising_factorial(x, i), falling_factorial(x + i - 1, i));
            }
        }
    }
}
