//! Binomial coefficients.

use wdm_bignum::BigUint;

/// The binomial coefficient `C(n, k)`, exactly.
///
/// Computed by the multiplicative formula with an exact division at every
/// step (each prefix product `n·(n−1)···(n−i+1)/i!` is an integer).
///
/// ```
/// use wdm_combinatorics::binomial;
/// assert_eq!(binomial(52, 5).to_string(), "2598960");
/// assert!(binomial(4, 9).is_zero());
/// ```
pub fn binomial(n: u64, k: u64) -> BigUint {
    if k > n {
        return BigUint::zero();
    }
    let k = k.min(n - k); // symmetry keeps the loop short
    let mut acc = BigUint::one();
    for i in 0..k {
        acc *= n - i;
        let (q, r) = acc.divrem_u64(i + 1);
        debug_assert!(r == 0, "binomial prefix product must divide exactly");
        acc = q;
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::factorial;

    #[test]
    fn edges() {
        assert!(binomial(0, 0).is_one());
        assert!(binomial(9, 0).is_one());
        assert!(binomial(9, 9).is_one());
        assert!(binomial(3, 4).is_zero());
        assert_eq!(binomial(9, 1), BigUint::from(9u64));
    }

    #[test]
    fn symmetry() {
        for n in 0..20u64 {
            for k in 0..=n {
                assert_eq!(binomial(n, k), binomial(n, n - k));
            }
        }
    }

    #[test]
    fn pascal_rule() {
        for n in 1..25u64 {
            for k in 1..=n {
                assert_eq!(
                    binomial(n, k),
                    binomial(n - 1, k - 1) + binomial(n - 1, k),
                    "C({n},{k})"
                );
            }
        }
    }

    #[test]
    fn factorial_formula() {
        for n in 0..15u64 {
            for k in 0..=n {
                let (q, r) = factorial(n).divrem(&(factorial(k) * factorial(n - k)));
                assert!(r.is_zero());
                assert_eq!(binomial(n, k), q);
            }
        }
    }

    #[test]
    fn row_sum_is_power_of_two() {
        for n in 0..30u64 {
            let sum: BigUint = (0..=n).map(|k| binomial(n, k)).sum();
            assert_eq!(sum, BigUint::from(2u64).pow(n));
        }
    }
}
