//! Additional counting functions: multinomials, Catalan numbers, ordered
//! Bell numbers, and an integer-partition iterator — used by workload
//! weighting and by the extended capacity analyses.

use crate::{binomial, factorial};
use wdm_bignum::BigUint;

/// Multinomial coefficient `(Σkᵢ)! / Πkᵢ!` — the number of ways to deal
/// `Σkᵢ` labeled items into groups of the given sizes.
///
/// ```
/// use wdm_combinatorics::multinomial;
/// assert_eq!(multinomial(&[2, 1, 1]).to_string(), "12");
/// ```
pub fn multinomial(parts: &[u64]) -> BigUint {
    let total: u64 = parts.iter().sum();
    let mut acc = BigUint::one();
    let mut remaining = total;
    // Product of binomials avoids a big division: C(n, k1)·C(n−k1, k2)…
    for &p in parts {
        acc *= binomial(remaining, p);
        remaining -= p;
    }
    acc
}

/// Catalan number `C(2n, n)/(n+1)`.
///
/// ```
/// use wdm_combinatorics::catalan;
/// assert_eq!(catalan(5).to_string(), "42");
/// ```
pub fn catalan(n: u64) -> BigUint {
    let (q, r) = binomial(2 * n, n).divrem_u64(n + 1);
    debug_assert_eq!(r, 0);
    q
}

/// Ordered Bell number (Fubini number): the number of ways to partition
/// `n` elements into *ordered* nonempty groups — `Σ_j j!·S(n, j)`.
pub fn ordered_bell(n: u64) -> BigUint {
    (0..=n).map(|j| factorial(j) * crate::stirling2(n, j)).sum()
}

/// Iterator over the integer partitions of `n` in reverse lexicographic
/// order, each as a non-increasing part list (`n = 0` yields one empty
/// partition).
///
/// ```
/// use wdm_combinatorics::Partitions;
/// assert_eq!(Partitions::new(5).count(), 7);
/// ```
#[derive(Debug, Clone)]
pub struct Partitions {
    current: Vec<u64>,
    first: bool,
    done: bool,
}

impl Partitions {
    /// Partitions of `n`.
    pub fn new(n: u64) -> Self {
        Partitions {
            current: if n == 0 { vec![] } else { vec![n] },
            first: true,
            done: false,
        }
    }
}

impl Iterator for Partitions {
    type Item = Vec<u64>;

    fn next(&mut self) -> Option<Vec<u64>> {
        if self.done {
            return None;
        }
        if self.first {
            self.first = false;
            if self.current.is_empty() {
                self.done = true;
                return Some(Vec::new());
            }
            return Some(self.current.clone());
        }
        // Standard successor: find the last part > 1, decrement it, and
        // redistribute the remainder greedily.
        let Some(idx) = self.current.iter().rposition(|&p| p > 1) else {
            self.done = true;
            return None;
        };
        let new_part = self.current[idx] - 1;
        let mut rest: u64 = self.current[idx..].iter().sum::<u64>() - new_part;
        self.current.truncate(idx);
        self.current.push(new_part);
        while rest > 0 {
            let chunk = rest.min(new_part);
            self.current.push(chunk);
            rest -= chunk;
        }
        Some(self.current.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn multinomial_cases() {
        assert!(multinomial(&[]).is_one());
        assert!(multinomial(&[7]).is_one());
        assert_eq!(multinomial(&[1, 1, 1, 1]), factorial(4));
        // (3+2)!/3!2! = C(5,3).
        assert_eq!(multinomial(&[3, 2]), binomial(5, 3));
    }

    #[test]
    fn catalan_sequence() {
        let expect = [1u64, 1, 2, 5, 14, 42, 132, 429, 1430, 4862];
        for (n, &c) in expect.iter().enumerate() {
            assert_eq!(catalan(n as u64), BigUint::from(c), "C_{n}");
        }
    }

    #[test]
    fn catalan_recurrence() {
        // C_{n+1} = Σ C_i · C_{n−i}.
        for n in 0..10u64 {
            let sum: BigUint = (0..=n).map(|i| catalan(i) * catalan(n - i)).sum();
            assert_eq!(catalan(n + 1), sum);
        }
    }

    #[test]
    fn ordered_bell_sequence() {
        let expect = [1u64, 1, 3, 13, 75, 541, 4683];
        for (n, &b) in expect.iter().enumerate() {
            assert_eq!(ordered_bell(n as u64), BigUint::from(b), "a({n})");
        }
    }

    #[test]
    fn partition_counts() {
        // p(n) for n = 0..11: 1,1,2,3,5,7,11,15,22,30,42,56.
        let expect = [1usize, 1, 2, 3, 5, 7, 11, 15, 22, 30, 42, 56];
        for (n, &p) in expect.iter().enumerate() {
            assert_eq!(Partitions::new(n as u64).count(), p, "p({n})");
        }
    }

    #[test]
    fn partitions_are_sorted_and_sum_to_n() {
        for n in 1..=9u64 {
            let mut seen = std::collections::HashSet::new();
            for part in Partitions::new(n) {
                assert_eq!(part.iter().sum::<u64>(), n);
                assert!(part.windows(2).all(|w| w[0] >= w[1]), "{part:?}");
                assert!(seen.insert(part));
            }
        }
    }

    #[test]
    fn partitions_order_is_reverse_lexicographic() {
        let all: Vec<Vec<u64>> = Partitions::new(4).collect();
        assert_eq!(
            all,
            vec![
                vec![4],
                vec![3, 1],
                vec![2, 2],
                vec![2, 1, 1],
                vec![1, 1, 1, 1]
            ]
        );
    }
}
