//! Enumerators used by the brute-force capacity verifiers.
//!
//! All iterators here are allocation-light: they yield references into an
//! internal buffer via the *lending* style (`next_ref`) where possible, and
//! owned `Vec`s from the `Iterator` implementations for ergonomic use in
//! tests. Brute force is only ever run for tiny networks, but sloppy
//! enumerators would still dominate the verification time.

use wdm_bignum::BigUint;

/// Iterator over all set partitions of `{0, …, n−1}` encoded as
/// restricted-growth strings (RGS).
///
/// An RGS `a` satisfies `a[0] = 0` and `a[i] ≤ max(a[0..i]) + 1`; element
/// `i` belongs to block `a[i]`. The number of partitions yielded is the
/// Bell number `B(n)`.
///
/// ```
/// use wdm_combinatorics::SetPartitions;
/// assert_eq!(SetPartitions::new(4).count(), 15); // B(4)
/// ```
#[derive(Debug, Clone)]
pub struct SetPartitions {
    rgs: Vec<usize>,
    maxes: Vec<usize>,
    started: bool,
    done: bool,
}

impl SetPartitions {
    /// Partitions of an `n`-element set. `n = 0` yields exactly one
    /// (empty) partition.
    pub fn new(n: usize) -> Self {
        SetPartitions {
            rgs: vec![0; n],
            maxes: vec![0; n + 1],
            started: false,
            done: false,
        }
    }

    /// Group the current RGS into explicit blocks.
    pub fn blocks_of(rgs: &[usize]) -> Vec<Vec<usize>> {
        let nblocks = rgs.iter().copied().max().map_or(0, |m| m + 1);
        let mut blocks = vec![Vec::new(); nblocks];
        for (elem, &b) in rgs.iter().enumerate() {
            blocks[b].push(elem);
        }
        blocks
    }

    fn advance(&mut self) -> bool {
        let n = self.rgs.len();
        if !self.started {
            self.started = true;
            // maxes[i] = max(rgs[0..i]); all zeros initially.
            return true;
        }
        // Find the rightmost position that can be incremented.
        for i in (1..n).rev() {
            if self.rgs[i] <= self.maxes[i] {
                self.rgs[i] += 1;
                self.maxes[i + 1] = self.maxes[i].max(self.rgs[i]);
                for j in i + 1..n {
                    self.rgs[j] = 0;
                    self.maxes[j + 1] = self.maxes[j];
                }
                return true;
            }
        }
        false
    }
}

impl Iterator for SetPartitions {
    type Item = Vec<usize>;

    fn next(&mut self) -> Option<Vec<usize>> {
        if self.done {
            return None;
        }
        if self.rgs.is_empty() {
            self.done = true;
            return if self.started { None } else { Some(Vec::new()) };
        }
        if self.advance() {
            Some(self.rgs.clone())
        } else {
            self.done = true;
            None
        }
    }
}

/// Mixed-radix counter: iterates all tuples `(t_0, …, t_{d−1})` with
/// `0 ≤ t_i < radix[i]`.
///
/// Used to sweep "every output wavelength independently picks a source"
/// spaces in the brute-force capacity counts (e.g. `N^{Nk}` under MSW).
///
/// ```
/// use wdm_combinatorics::MixedRadix;
/// assert_eq!(MixedRadix::new(vec![2, 3]).count(), 6);
/// ```
#[derive(Debug, Clone)]
pub struct MixedRadix {
    radix: Vec<u64>,
    state: Vec<u64>,
    started: bool,
    done: bool,
}

impl MixedRadix {
    /// Counter over the given radices. Any zero radix yields an empty
    /// iterator; an empty radix list yields the single empty tuple.
    pub fn new(radix: Vec<u64>) -> Self {
        let done = radix.contains(&0);
        MixedRadix {
            state: vec![0; radix.len()],
            radix,
            started: false,
            done,
        }
    }

    /// Uniform counter: `d` digits of radix `r` each.
    pub fn uniform(r: u64, d: usize) -> Self {
        Self::new(vec![r; d])
    }

    /// Total number of tuples, exactly.
    pub fn cardinality(&self) -> BigUint {
        let mut acc = BigUint::one();
        for &r in &self.radix {
            acc *= r;
        }
        acc
    }
}

impl Iterator for MixedRadix {
    type Item = Vec<u64>;

    fn next(&mut self) -> Option<Vec<u64>> {
        if self.done {
            return None;
        }
        if !self.started {
            self.started = true;
            return Some(self.state.clone());
        }
        for i in (0..self.state.len()).rev() {
            self.state[i] += 1;
            if self.state[i] < self.radix[i] {
                return Some(self.state.clone());
            }
            self.state[i] = 0;
        }
        self.done = true;
        None
    }
}

/// Iterates all `k`-element index combinations of `{0, …, n−1}` in
/// lexicographic order.
///
/// ```
/// use wdm_combinatorics::Combinations;
/// let all: Vec<_> = Combinations::new(4, 2).collect();
/// assert_eq!(all.len(), 6);
/// assert_eq!(all[0], vec![0, 1]);
/// assert_eq!(all[5], vec![2, 3]);
/// ```
#[derive(Debug, Clone)]
pub struct Combinations {
    n: usize,
    state: Vec<usize>,
    started: bool,
    done: bool,
}

impl Combinations {
    /// `k`-subsets of an `n`-set; `k > n` yields nothing, `k = 0` yields
    /// the empty combination once.
    pub fn new(n: usize, k: usize) -> Self {
        Combinations {
            n,
            state: (0..k).collect(),
            started: false,
            done: k > n,
        }
    }
}

impl Iterator for Combinations {
    type Item = Vec<usize>;

    fn next(&mut self) -> Option<Vec<usize>> {
        if self.done {
            return None;
        }
        if !self.started {
            self.started = true;
            return Some(self.state.clone());
        }
        let k = self.state.len();
        if k == 0 {
            self.done = true;
            return None;
        }
        // Find rightmost index that can move right.
        let mut i = k;
        while i > 0 {
            i -= 1;
            if self.state[i] < self.n - (k - i) {
                self.state[i] += 1;
                for j in i + 1..k {
                    self.state[j] = self.state[j - 1] + 1;
                }
                return Some(self.state.clone());
            }
        }
        self.done = true;
        None
    }
}

/// Iterates all subsets of `{0, …, n−1}` as index vectors, in binary
/// counting order (empty set first). Limited to `n ≤ 63`.
///
/// ```
/// use wdm_combinatorics::Subsets;
/// assert_eq!(Subsets::new(3).count(), 8);
/// ```
#[derive(Debug, Clone)]
pub struct Subsets {
    n: u32,
    next_mask: u64,
    done: bool,
}

impl Subsets {
    /// All subsets of an `n`-element index set.
    ///
    /// Panics if `n > 63` (brute force beyond that is meaningless anyway).
    pub fn new(n: u32) -> Self {
        assert!(n <= 63, "subset enumeration limited to 63 elements");
        Subsets {
            n,
            next_mask: 0,
            done: false,
        }
    }
}

impl Iterator for Subsets {
    type Item = Vec<usize>;

    fn next(&mut self) -> Option<Vec<usize>> {
        if self.done {
            return None;
        }
        let mask = self.next_mask;
        let items = (0..self.n as usize)
            .filter(|&i| mask >> i & 1 == 1)
            .collect();
        if self.next_mask + 1 == 1u64 << self.n {
            self.done = true;
        } else {
            self.next_mask += 1;
        }
        Some(items)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{bell, binomial, stirling2};
    use wdm_bignum::BigUint;

    #[test]
    fn set_partition_counts_match_bell() {
        for n in 0..=8usize {
            let count = SetPartitions::new(n).count() as u64;
            assert_eq!(BigUint::from(count), bell(n as u64), "B({n})");
        }
    }

    #[test]
    fn set_partition_block_counts_match_stirling() {
        for n in 1..=7usize {
            for j in 1..=n {
                let count = SetPartitions::new(n)
                    .filter(|rgs| rgs.iter().copied().max().unwrap() + 1 == j)
                    .count() as u64;
                assert_eq!(
                    BigUint::from(count),
                    stirling2(n as u64, j as u64),
                    "S({n},{j})"
                );
            }
        }
    }

    #[test]
    fn partitions_are_valid_rgs() {
        for rgs in SetPartitions::new(6) {
            assert_eq!(rgs[0], 0);
            let mut max = 0;
            for &a in &rgs {
                assert!(a <= max + 1);
                max = max.max(a);
            }
        }
    }

    #[test]
    fn blocks_of_partition() {
        let blocks = SetPartitions::blocks_of(&[0, 1, 0, 2]);
        assert_eq!(blocks, vec![vec![0, 2], vec![1], vec![3]]);
    }

    #[test]
    fn mixed_radix_cardinality() {
        let mr = MixedRadix::new(vec![3, 4, 5]);
        assert_eq!(mr.cardinality(), BigUint::from(60u64));
        assert_eq!(mr.count(), 60);
    }

    #[test]
    fn mixed_radix_edge_cases() {
        assert_eq!(MixedRadix::new(vec![]).count(), 1); // one empty tuple
        assert_eq!(MixedRadix::new(vec![3, 0, 2]).count(), 0);
        let all: Vec<_> = MixedRadix::uniform(2, 2).collect();
        assert_eq!(all, vec![vec![0, 0], vec![0, 1], vec![1, 0], vec![1, 1]]);
    }

    #[test]
    fn combination_counts_match_binomial() {
        for n in 0..=9usize {
            for k in 0..=n + 1 {
                let count = Combinations::new(n, k).count() as u64;
                assert_eq!(
                    BigUint::from(count),
                    binomial(n as u64, k as u64),
                    "C({n},{k})"
                );
            }
        }
    }

    #[test]
    fn combinations_are_sorted_and_unique() {
        let mut seen = std::collections::HashSet::new();
        for c in Combinations::new(7, 3) {
            assert!(c.windows(2).all(|w| w[0] < w[1]));
            assert!(seen.insert(c));
        }
        assert_eq!(seen.len(), 35);
    }

    #[test]
    fn subsets_cover_power_set() {
        let all: Vec<_> = Subsets::new(4).collect();
        assert_eq!(all.len(), 16);
        assert_eq!(all[0], Vec::<usize>::new());
        assert!(all.contains(&vec![0, 1, 2, 3]));
    }
}
