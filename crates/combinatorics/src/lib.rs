//! # wdm-combinatorics — exact combinatorics for capacity analysis
//!
//! The multicast-capacity formulas of *Nonblocking WDM Multicast Switching
//! Networks* (Lemmas 1–3) are built from three primitives:
//!
//! * the **falling factorial** `P(x, i) = x·(x−1)···(x−i+1)` — the number of
//!   ways to injectively choose `i` source wavelengths from `x`;
//! * the **binomial coefficient** `C(n, k)`;
//! * the **Stirling number of the second kind** `S(n, j)` — the number of
//!   ways to divide `n` elements into `j` nonempty groups (used by the MSDW
//!   capacity, Lemma 3).
//!
//! All are computed exactly over [`wdm_bignum::BigUint`]. The crate also
//! provides *enumerators* (set partitions via restricted-growth strings,
//! mixed-radix tuples, and index combinations/subsets) that power the
//! brute-force verification of the closed forms for tiny networks.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod binomial;
mod enumerate;
mod extras;
mod factorial;
mod stirling;

pub use binomial::binomial;
pub use enumerate::{Combinations, MixedRadix, SetPartitions, Subsets};
pub use extras::{catalan, multinomial, ordered_bell, Partitions};
pub use factorial::{factorial, falling_factorial, rising_factorial};
pub use stirling::{bell, stirling2, Stirling2Table};
