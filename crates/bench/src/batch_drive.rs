//! Shared driver for the batch-admission benchmarks (`bench_batch` and
//! the `batch_report` binary): build a closed trace, stream it through
//! the engine either event-at-a-time or in `submit_batch` windows, and
//! verify conservation before reporting.

use wdm_core::{MulticastModel, NetworkConfig};
use wdm_runtime::{Backend, EngineBuilder, RuntimeReport};
use wdm_workload::{DynamicTraffic, TimedEvent, TraceEvent};

/// Submission window used by the `batch` legs. Chosen to comfortably
/// amortize the per-event channel send + backend lock without building
/// unrealistically deep queues.
pub const BATCH_WINDOW: usize = 128;

/// A churn trace with the departures `generate` truncated at the
/// horizon appended, so no endpoint stays occupied forever (which would
/// turn a throughput benchmark into a deadline-expiry measurement).
pub fn closed_trace(net: NetworkConfig, model: MulticastModel, seed: u64) -> Vec<TimedEvent> {
    let horizon = 3000.0;
    let mut events = DynamicTraffic::new(net, model, 6.0, 1.0, 2, seed).generate(horizon);
    let mut live = std::collections::BTreeSet::new();
    for e in &events {
        match &e.event {
            TraceEvent::Connect(c) => live.insert(c.source()),
            TraceEvent::Disconnect(s) => live.remove(s),
        };
    }
    events.extend(live.into_iter().map(|src| TimedEvent {
        time: horizon + 1.0,
        event: TraceEvent::Disconnect(src),
    }));
    events
}

/// Stream `events` through a fresh engine and drain. `window == 1`
/// submits event-at-a-time; larger windows go through
/// [`AdmissionEngine::submit_batch`] in chunks. Panics if the run lost a
/// request or drained inconsistently, so a "fast" path that cheats
/// fails the benchmark instead of winning it.
///
/// [`AdmissionEngine::submit_batch`]: wdm_runtime::AdmissionEngine::submit_batch
pub fn drive<B: Backend>(
    backend: B,
    events: &[TimedEvent],
    shards: usize,
    window: usize,
) -> RuntimeReport<B> {
    let engine = EngineBuilder::new().shards(shards).start(backend);
    if window <= 1 {
        for ev in events {
            let _ = engine.submit(ev.clone());
        }
    } else {
        for chunk in events.chunks(window) {
            let _ = engine.submit_batch(chunk.to_vec());
        }
    }
    let report = engine.drain();
    let s = &report.summary;
    assert_eq!(
        s.offered,
        s.admitted + s.blocked + s.expired,
        "lost a request"
    );
    assert_eq!(
        s.fatal, 0,
        "structural error under concurrency: {:?}",
        report.errors
    );
    assert!(report.consistency.is_empty(), "{:?}", report.consistency);
    report
}
