//! Regenerates **Table 1** of the paper: multicast capacity (full and any
//! assignments), crosspoints, and wavelength converters for the
//! crossbar-based `N×N` `k`-wavelength designs under MSW, MSDW, and MAW —
//! plus the §2.2 comparison against the `Nk×Nk` electronic crossbar.
//!
//! Crosspoint and converter columns are *measured* on the constructed
//! fabric netlists (not just evaluated from the closed forms) so the
//! printed table is an observation, with the formulas as cross-checks.

use wdm_analysis::{Report, TextTable};
use wdm_bench::{compact, experiments_dir};
use wdm_core::{capacity, MulticastModel, NetworkConfig};
use wdm_fabric::WdmCrossbar;

fn main() {
    let mut report = Report::new();

    // ---- Table 1 proper: symbolic row per model (paper layout) ----
    let mut symbolic = TextTable::new([
        "model",
        "capacity (full)",
        "capacity (any)",
        "crosspoints",
        "converters",
    ]);
    symbolic.row(["MSW", "N^(Nk)", "(N+1)^(Nk)", "kN^2", "0"]);
    symbolic.row([
        "MSDW",
        "Σ P(Nk,Σj_i)·Π S(N,j_i)",
        "Σ P(Nk,Σj_i)·Π C(N,l_i)S(N-l_i,j_i)",
        "k^2·N^2",
        "kN",
    ]);
    symbolic.row([
        "MAW",
        "[P(Nk,k)]^N",
        "[Σ_j P(Nk,k-j)C(k,j)]^N",
        "k^2·N^2",
        "kN",
    ]);
    report.add(
        "table1_symbolic",
        "Table 1 — symbolic (paper layout)",
        symbolic,
    );

    // ---- Evaluated across a size sweep ----
    let sizes: &[(u32, u32)] = &[(2, 2), (4, 2), (8, 2), (8, 4), (16, 4), (32, 4), (64, 8)];
    let mut eval = TextTable::new([
        "N",
        "k",
        "model",
        "capacity full",
        "capacity any",
        "crosspoints",
        "converters",
        "electronic full (Nk×Nk)",
    ]);
    for &(n, k) in sizes {
        let net = NetworkConfig::new(n, k);
        for model in MulticastModel::ALL {
            // Measure hardware on the built fabric where feasible.
            let (gates, converters) = if n as u64 * k as u64 <= 512 {
                let c = WdmCrossbar::build(net, model).census();
                assert_eq!(c.gates, capacity::crossbar_crosspoints(net, model));
                assert_eq!(c.converters, capacity::crossbar_converters(net, model));
                (c.gates, c.converters)
            } else {
                (
                    capacity::crossbar_crosspoints(net, model),
                    capacity::crossbar_converters(net, model),
                )
            };
            eval.row([
                n.to_string(),
                k.to_string(),
                model.to_string(),
                compact(&capacity::full_assignments(net, model)),
                compact(&capacity::any_assignments(net, model)),
                gates.to_string(),
                converters.to_string(),
                compact(&capacity::electronic_full(net)),
            ]);
        }
    }
    report.add("table1_evaluated", "Table 1 — evaluated over (N, k)", eval);

    // ---- Capacity ratios: how far each model is from the electronic bound ----
    let mut ratios = TextTable::new([
        "N",
        "k",
        "log10 MSW",
        "log10 MSDW",
        "log10 MAW",
        "log10 electronic",
    ]);
    for &(n, k) in sizes {
        let net = NetworkConfig::new(n, k);
        let row: Vec<String> = MulticastModel::ALL
            .iter()
            .map(|&m| format!("{:.1}", capacity::full_assignments(net, m).log10()))
            .collect();
        ratios.row([
            n.to_string(),
            k.to_string(),
            row[0].clone(),
            row[1].clone(),
            row[2].clone(),
            format!("{:.1}", capacity::electronic_full(net).log10()),
        ]);
    }
    report.add(
        "table1_ratios",
        "Capacity magnitudes (log10, full assignments)",
        ratios,
    );

    report.print();
    let paths = report.write_csv_dir(experiments_dir()).expect("write CSVs");
    eprintln!(
        "wrote {} CSV files to {}",
        paths.len(),
        experiments_dir().display()
    );
}
