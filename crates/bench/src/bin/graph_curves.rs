//! Graph-topology blocking curves — hotspot skew × splitter density.
//!
//! The switch-box backends come with nonblocking theorems; arbitrary
//! topologies do not, so their story is an empirical blocking surface.
//! This experiment drives a seeded closed-loop hotspot workload
//! serially against [`GraphNetwork`]s across topology (ring, torus),
//! splitter placement (every node MC vs every other node), splitting
//! discipline, and hotspot skew, then writes the surface to
//! `experiments/graph_blocking.csv` and `BENCH_graph.json` (override
//! the JSON path with the first CLI argument).
//!
//! "Fixed load" is engineered, not assumed: every request fans out to
//! exactly [`FANOUT`] distinct nodes, and the loop holds the number of
//! live sessions at [`TARGET_LIVE`] (admit one, retire one), so the
//! only thing the skew axis changes is *where* destinations land. The
//! legality mirror tracks the graph's actually-admitted state, so a
//! blocked request leaves no phantom occupancy behind.
//!
//! The acceptance gate: on the sparse-splitter ring, hotspot skew must
//! **strictly** raise blocking at fixed load — concentration starves
//! the two fibers converging on the hot node long before the rest of
//! the ring fills. Serial replay of seeded draws makes the numbers
//! exactly reproducible, so the gate cannot flake.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use wdm_analysis::{parallel_map, Report, TextTable};
use wdm_bench::experiments_dir;
use wdm_core::{Endpoint, MulticastAssignment, MulticastModel, NetworkConfig};
use wdm_graph::{GraphNetwork, GraphTopology, Splitting};
use wdm_workload::adversarial::Geometry;
use wdm_workload::HotspotGen;

/// More endpoint slots per node than incoming fiber λ-slots (a ring
/// node has 2 incoming fibers, so 2 slots per λ). The workload's
/// legality mirror gates on *endpoint* occupancy; with headroom there,
/// it keeps offering the hot node while its fibers are the thing that
/// blocks — otherwise the mirror politely routes around contention and
/// hides it.
const PORTS_PER_NODE: u32 = 4;
const WAVELENGTHS: u32 = 2;
/// Every request fans out to exactly this many distinct modules, so
/// offered load is identical across the skew axis (the gate's "fixed
/// load").
const FANOUT: u32 = 2;
/// Live sessions held by the closed loop — ~40% of the ring's link-λ
/// capacity, so uniform traffic mostly routes and blocking isolates
/// the hot node's fibers instead of global congestion.
const TARGET_LIVE: usize = 4;
const STEPS: usize = 600;
const SEEDS: u64 = 6;
const HOT_NODE: u32 = 0;
const SKEWS: [u32; 3] = [0, 60, 90];

#[derive(Clone)]
struct Cell {
    topology: GraphTopology,
    mc_every: u32,
    splitting: Splitting,
    skew_pct: u32,
    attempts: u64,
    admitted: u64,
    blocked: u64,
    total_hops: u64,
}

impl Cell {
    fn p_block(&self) -> f64 {
        self.blocked as f64 / self.attempts.max(1) as f64
    }

    fn mean_hops(&self) -> f64 {
        self.total_hops as f64 / self.admitted.max(1) as f64
    }

    fn to_json(&self) -> String {
        format!(
            "{{\"topology\":\"{}\",\"mc_every\":{},\"splitting\":\"{}\",\
             \"skew_pct\":{},\"attempts\":{},\"admitted\":{},\"blocked\":{},\
             \"p_block\":{:.4},\"mean_hops\":{:.2}}}",
            self.topology,
            self.mc_every,
            self.splitting.label(),
            self.skew_pct,
            self.attempts,
            self.admitted,
            self.blocked,
            self.p_block(),
            self.mean_hops()
        )
    }
}

/// Drive `SEEDS` closed-loop sessions on a fresh network per seed and
/// accumulate the outcome. Each step retires one uniform live session
/// once [`TARGET_LIVE`] is reached, then offers one skewed request; the
/// legality mirror only records what the graph actually admitted.
fn run_cell(topology: GraphTopology, mc_every: u32, splitting: Splitting, skew_pct: u32) -> Cell {
    let geo = Geometry {
        n: PORTS_PER_NODE,
        r: topology.nodes(),
        k: WAVELENGTHS,
    };
    let mut cell = Cell {
        topology,
        mc_every,
        splitting,
        skew_pct,
        attempts: 0,
        admitted: 0,
        blocked: 0,
        total_hops: 0,
    };
    for seed in 0..SEEDS {
        let mut gen =
            HotspotGen::new(geo, MulticastModel::Msw, HOT_NODE, skew_pct, seed).with_fanout(FANOUT);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x9a4b_5eed);
        let mut asg =
            MulticastAssignment::new(NetworkConfig::new(geo.ports(), geo.k), MulticastModel::Msw);
        let mut net = GraphNetwork::new(
            topology.build().with_mc_every(mc_every),
            PORTS_PER_NODE,
            WAVELENGTHS,
            splitting,
            MulticastModel::Msw,
        );
        let mut live: Vec<Endpoint> = Vec::new();
        for _ in 0..STEPS {
            if live.len() >= TARGET_LIVE {
                let src = live.swap_remove(rng.gen_range(0..live.len()));
                asg.remove(src).expect("mirror tracked this source");
                net.disconnect(src).expect("admitted source departs");
            }
            let Some(req) = gen.next_request(&asg) else {
                continue;
            };
            cell.attempts += 1;
            match net.connect(&req) {
                Ok(route) => {
                    cell.admitted += 1;
                    cell.total_hops += route.hops() as u64;
                    live.push(req.source());
                    asg.add(req).expect("mirror admits what the graph admitted");
                }
                Err(_) => cell.blocked += 1,
            }
        }
        let problems = net.check_consistency();
        assert!(
            problems.is_empty(),
            "consistency after replay: {problems:?}"
        );
    }
    cell
}

fn main() {
    let out = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_graph.json".to_string());

    let ring = GraphTopology::Ring { nodes: 8 };
    let torus = GraphTopology::Torus { rows: 3, cols: 3 };
    let mut grid: Vec<(GraphTopology, u32, Splitting, u32)> = Vec::new();
    for &topology in &[ring, torus] {
        for &mc_every in &[1u32, 2] {
            for &skew in &SKEWS {
                grid.push((topology, mc_every, Splitting::Hierarchy, skew));
            }
        }
    }
    // The tree-only column on the sparse ring shows what hierarchies
    // buy back under the same skew.
    for &skew in &SKEWS {
        grid.push((ring, 2, Splitting::TreeOnly, skew));
    }

    let cells = parallel_map(grid, |(topology, mc_every, splitting, skew)| {
        run_cell(topology, mc_every, splitting, skew)
    });

    let mut t = TextTable::new([
        "topology",
        "mc-every",
        "splitting",
        "skew %",
        "attempts",
        "admitted",
        "blocked",
        "P(block)",
        "mean hops",
    ]);
    for c in &cells {
        t.row([
            c.topology.to_string(),
            c.mc_every.to_string(),
            c.splitting.label().to_string(),
            c.skew_pct.to_string(),
            c.attempts.to_string(),
            c.admitted.to_string(),
            c.blocked.to_string(),
            format!("{:.4}", c.p_block()),
            format!("{:.2}", c.mean_hops()),
        ]);
    }
    let mut report = Report::new();
    report.add(
        "graph_blocking",
        format!(
            "Blocking on graph topologies vs hotspot skew (n={PORTS_PER_NODE} ports/node, \
             k={WAVELENGTHS}, fanout {FANOUT}, {SEEDS}×{STEPS}-step hotspot churn onto \
             node {HOT_NODE})"
        ),
        t,
    );
    report.print();

    let paths = report.write_csv_dir(experiments_dir()).expect("write CSVs");
    eprintln!(
        "wrote {} CSV files to {}",
        paths.len(),
        experiments_dir().display()
    );

    let body = cells
        .iter()
        .map(Cell::to_json)
        .collect::<Vec<_>>()
        .join(",\n    ");
    let json = format!(
        "{{\n  \"bench\": \"graph_blocking\",\n  \"ports_per_node\": {PORTS_PER_NODE},\n  \
         \"wavelengths\": {WAVELENGTHS},\n  \"fanout\": {FANOUT},\n  \"steps\": {STEPS},\n  \
         \"seeds\": {SEEDS},\n  \"hot_node\": {HOT_NODE},\n  \
         \"results\": [\n    {body}\n  ]\n}}\n"
    );
    std::fs::write(&out, json).expect("write report");
    println!("wrote {out}");

    // The gate: on the sparse-splitter ring (hierarchy column), skew
    // strictly raises blocking at fixed load, and the top cell actually
    // blocks — otherwise the surface is vacuous.
    let sparse_ring: Vec<&Cell> = SKEWS
        .iter()
        .map(|&skew| {
            cells
                .iter()
                .find(|c| {
                    matches!(c.topology, GraphTopology::Ring { .. })
                        && c.mc_every == 2
                        && c.splitting == Splitting::Hierarchy
                        && c.skew_pct == skew
                })
                .expect("sparse ring cell present")
        })
        .collect();
    for pair in sparse_ring.windows(2) {
        let (lo, hi) = (pair[0], pair[1]);
        if hi.blocked <= lo.blocked {
            eprintln!(
                "FAIL: skew {}% does not block strictly more than {}% on the sparse ring \
                 ({} vs {} blocked over {} attempts)",
                hi.skew_pct, lo.skew_pct, hi.blocked, lo.blocked, hi.attempts
            );
            std::process::exit(1);
        }
    }
    if sparse_ring.last().unwrap().blocked == 0 {
        eprintln!("FAIL: even 90% skew never blocked the sparse ring; the gate is vacuous");
        std::process::exit(1);
    }
    println!(
        "gate passed: sparse-ring blocking rises strictly with skew ({})",
        sparse_ring
            .iter()
            .map(|c| format!("{}%→{}", c.skew_pct, c.blocked))
            .collect::<Vec<_>>()
            .join(", ")
    );
}
