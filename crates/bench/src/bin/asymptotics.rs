//! Regenerates the **§3.4 asymptotics**: growth of the middle-stage count
//! `m` (exact Theorem 1 optimum vs the `3(n−1)·log r/log log r` closed
//! form) and of the multistage crosspoint total
//! `O(k·N^{3/2}·log N/log log N)` against the crossbar's `k·N²`,
//! for `N` up to `2^20`.

use wdm_analysis::{parallel_map, Report, TextTable};
use wdm_bench::experiments_dir;
use wdm_core::MulticastModel;
use wdm_multistage::{bounds, cost};

fn main() {
    let mut report = Report::new();

    // ---- m growth with r (n = r = √N) ----
    let sides: Vec<u32> = (2..=10).map(|e| 1u32 << e).collect(); // 4..1024
    let rows = parallel_map(sides.clone(), |side| {
        let exact = bounds::theorem1_min_m(side, side);
        let closed = bounds::section34_m(side, side);
        let x34 = bounds::section34_x(side);
        (side, exact, closed, x34)
    });
    let mut t = TextTable::new([
        "n=r",
        "N",
        "m exact (Thm 1)",
        "optimal x",
        "m closed form (§3.4)",
        "x = 2logr/loglogr",
        "m/n",
    ]);
    for (side, exact, closed, x34) in rows {
        t.row([
            side.to_string(),
            (side as u64 * side as u64).to_string(),
            exact.m.to_string(),
            exact.x.to_string(),
            format!("{closed:.1}"),
            format!("{x34:.2}"),
            format!("{:.2}", exact.m as f64 / side as f64),
        ]);
    }
    report.add("asymptotics_m", "§3.4 — middle-stage count growth", t);

    // ---- Crosspoint growth: crossbar vs 3-stage vs 5-stage ----
    let ns: Vec<u64> = vec![256, 1024, 4096, 16384, 65536, 1 << 20];
    let k = 4u64;
    let rows = parallel_map(ns, |n| {
        let cb = cost::crossbar_cost(n, k, MulticastModel::Msw).crosspoints;
        let s3 = cost::recursive_crosspoints(n, k, MulticastModel::Msw, 1);
        let s5 = cost::recursive_crosspoints(n, k, MulticastModel::Msw, 2);
        (n, cb, s3, s5)
    });
    let mut t = TextTable::new([
        "N",
        "crossbar kN^2",
        "3-stage",
        "5-stage",
        "3-stage/CB",
        "normalized 3-stage (/kN^1.5·logN/loglogN)",
    ]);
    for (n, cb, s3, s5) in rows {
        let nf = n as f64;
        let norm = s3 as f64 / (k as f64 * nf.powf(1.5) * nf.ln() / nf.ln().ln());
        t.row([
            n.to_string(),
            cb.to_string(),
            s3.to_string(),
            s5.to_string(),
            format!("{:.4}", s3 as f64 / cb as f64),
            format!("{norm:.3}"),
        ]);
    }
    report.add(
        "asymptotics_crosspoints",
        "§3.4 — crosspoint growth (MSW, k=4)",
        t,
    );

    report.print();

    // Figure-like view: the flatness of the normalized 3-stage cost IS
    // the §3.4 claim.
    let norms: Vec<f64> = vec![256u64, 1024, 4096, 16384, 65536, 1 << 20]
        .into_iter()
        .map(|n| {
            let s3 = cost::recursive_crosspoints(n, k, MulticastModel::Msw, 1);
            let nf = n as f64;
            s3 as f64 / (k as f64 * nf.powf(1.5) * nf.ln() / nf.ln().ln())
        })
        .collect();
    println!(
        "normalized 3-stage crosspoints over N = 2^8..2^20: {}  (flat ⇒ Θ(kN^1.5·logN/loglogN))\n",
        wdm_analysis::sparkline(&norms)
    );

    let paths = report.write_csv_dir(experiments_dir()).expect("write CSVs");
    eprintln!(
        "wrote {} CSV files to {}",
        paths.len(),
        experiments_dir().display()
    );
}
