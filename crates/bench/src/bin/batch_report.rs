//! `batch_report` — measure singles vs batched admission throughput and
//! write the trajectory to `BENCH_runtime.json` at the workspace root
//! (override the path with the first CLI argument).
//!
//! The acceptance gate lives here, not in criterion: the batched
//! three-stage leg must clear **1.5×** the singles throughput at the
//! largest configured geometry or the process exits nonzero. Each leg
//! takes the best of several runs so a scheduler hiccup doesn't fail
//! the gate spuriously.

use std::time::Instant;
use wdm_bench::batch_drive::{closed_trace, drive, BATCH_WINDOW};
use wdm_bench::repack_drive::{replay, RepackOutcome, REPACK_BUDGET};
use wdm_core::{MulticastModel, NetworkConfig};
use wdm_fabric::CrossbarSession;
use wdm_multistage::{
    awg, bounds, AwgClosNetwork, ConcurrentThreeStage, Construction, ConverterPlacement,
    ThreeStageNetwork, ThreeStageParams,
};
use wdm_workload::TimedEvent;

const RUNS: usize = 5;
const SHARDS: usize = 4;
const SPEEDUP_FLOOR: f64 = 1.5;
/// Worker counts of the CAS contention curve.
const WORKER_CURVE: [usize; 4] = [1, 2, 4, 8];
/// The 8-worker point of the curve must clear this multiple of the
/// 1-worker point — enforced only on hosts with real parallelism.
const SCALING_FLOOR: f64 = 2.0;

struct Leg {
    backend: &'static str,
    geometry: String,
    events: usize,
    singles_per_sec: f64,
    batch_per_sec: f64,
}

impl Leg {
    fn speedup(&self) -> f64 {
        self.batch_per_sec / self.singles_per_sec.max(1e-9)
    }

    fn to_json(&self) -> String {
        format!(
            "{{\"backend\":\"{}\",\"geometry\":\"{}\",\"events\":{},\
             \"singles_admissions_per_sec\":{:.0},\"batch_admissions_per_sec\":{:.0},\
             \"speedup\":{:.3}}}",
            self.backend,
            self.geometry,
            self.events,
            self.singles_per_sec,
            self.batch_per_sec,
            self.speedup()
        )
    }
}

struct RepackLeg {
    geometry: String,
    m: u32,
    firstfit: RepackOutcome,
    repack: RepackOutcome,
}

impl RepackLeg {
    fn to_json(&self) -> String {
        format!(
            "{{\"geometry\":\"{}\",\"m\":{},\"attempts\":{},\
             \"firstfit_admitted\":{},\"firstfit_blocked\":{},\
             \"repack_admitted\":{},\"repack_blocked\":{},\"moves_committed\":{}}}",
            self.geometry,
            self.m,
            self.firstfit.attempts,
            self.firstfit.admitted,
            self.firstfit.blocked,
            self.repack.admitted,
            self.repack.blocked,
            self.repack.moves
        )
    }
}

/// Best-of-`RUNS` admissions/sec for one (backend, window) pair.
fn measure<B, F>(make: F, events: &[TimedEvent], window: usize) -> f64
where
    B: wdm_runtime::Backend,
    F: Fn() -> B,
{
    let mut best = 0.0f64;
    for _ in 0..RUNS {
        let started = Instant::now();
        let report = drive(make(), events, SHARDS, window);
        let rate = report.summary.admitted as f64 / started.elapsed().as_secs_f64().max(1e-9);
        best = best.max(rate);
    }
    best
}

fn main() {
    let out = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_runtime.json".to_string());
    let mut legs: Vec<Leg> = Vec::new();

    for (ports, k) in [(16u32, 2u32), (64, 4)] {
        let net = NetworkConfig::new(ports, k);
        let events = closed_trace(net, MulticastModel::Msw, 42);
        let make = || CrossbarSession::new(net, MulticastModel::Msw);
        legs.push(Leg {
            backend: "crossbar",
            geometry: format!("N={ports} k={k}"),
            events: events.len(),
            singles_per_sec: measure(make, &events, 1),
            batch_per_sec: measure(make, &events, BATCH_WINDOW),
        });
    }

    for (n, r, k) in [(4u32, 4u32, 2u32), (8, 8, 2), (8, 16, 4)] {
        let m = bounds::theorem1_min_m(n, r).m;
        let p = ThreeStageParams::new(n, m, r, k);
        let events = closed_trace(p.network(), MulticastModel::Msw, 7);
        let make = || ThreeStageNetwork::new(p, Construction::MswDominant, MulticastModel::Msw);
        legs.push(Leg {
            backend: "three-stage",
            geometry: format!("n={n} r={r} k={k} m={m}"),
            events: events.len(),
            singles_per_sec: measure(make, &events, 1),
            batch_per_sec: measure(make, &events, BATCH_WINDOW),
        });
    }

    // The CAS backend at the largest switched geometry: same trace and
    // windows as the serial three-stage leg above, admissions running
    // under the engine's read lock instead of the write lock. Placed
    // after the serial legs so the batch gate's rfind("three-stage")
    // anchor is untouched ("three-stage-cas" != "three-stage").
    let (cn, cr, ck) = (8u32, 16u32, 4u32);
    let cm = bounds::theorem1_min_m(cn, cr).m;
    let cas_params = ThreeStageParams::new(cn, cm, cr, ck);
    let cas_events = closed_trace(cas_params.network(), MulticastModel::Msw, 7);
    let make_cas =
        || ConcurrentThreeStage::new(cas_params, Construction::MswDominant, MulticastModel::Msw);
    let cas_geometry = format!("n={cn} r={cr} k={ck} m={cm}");
    legs.push(Leg {
        backend: "three-stage-cas",
        geometry: cas_geometry.clone(),
        events: cas_events.len(),
        singles_per_sec: measure(make_cas, &cas_events, 1),
        batch_per_sec: measure(make_cas, &cas_events, BATCH_WINDOW),
    });

    // The worker-scaling curve: the same CAS leg under 1→8 submitting
    // shards. The full curve is always recorded; the scaling gate below
    // only binds on hosts that actually expose parallel cores.
    let host_parallelism = std::thread::available_parallelism().map_or(1, |p| p.get());
    let curve: Vec<(usize, f64)> = WORKER_CURVE
        .iter()
        .map(|&workers| {
            let mut best = 0.0f64;
            for _ in 0..RUNS {
                let started = Instant::now();
                let report = drive(make_cas(), &cas_events, workers, BATCH_WINDOW);
                let rate =
                    report.summary.admitted as f64 / started.elapsed().as_secs_f64().max(1e-9);
                best = best.max(rate);
            }
            (workers, best)
        })
        .collect();

    // AWG-Clos legs at the private-pool bound (k ≥ r keeps every module
    // pair reachable). They sit after the three-stage legs so the gate's
    // rfind("three-stage") still anchors on the largest switched
    // geometry — the passive-middle backend is recorded, not gated.
    for (n, r, k) in [(2u32, 4u32, 4u32), (4, 8, 8)] {
        let fsr_orders = k.div_ceil(r).max(1);
        let m = awg::min_middles(n, r, k, fsr_orders).expect("k ≥ r");
        let p = ThreeStageParams::new(n, m, r, k);
        let events = closed_trace(p.network(), MulticastModel::Msw, 11);
        let make = || {
            AwgClosNetwork::new(
                p,
                fsr_orders,
                ConverterPlacement::IngressEgress,
                MulticastModel::Msw,
            )
        };
        legs.push(Leg {
            backend: "awg-clos",
            geometry: format!("n={n} r={r} k={k} m={m}"),
            events: events.len(),
            singles_per_sec: measure(make, &events, 1),
            batch_per_sec: measure(make, &events, BATCH_WINDOW),
        });
    }

    // Repacking payoff legs: identical Poisson mixed-fanout traffic on
    // a starved (below-bound) three-stage fabric, first-fit vs on-block
    // repacking. Serial replay, so the numbers are exactly reproducible
    // — the dominance gate below cannot flake. The bound−1 leg records
    // the empirical slack (both columns admit everything).
    let (rn, rr, rk) = (2u32, 4u32, 2u32);
    let rbound = bounds::theorem1_min_m(rn, rr).m;
    let mut repack_legs: Vec<RepackLeg> = Vec::new();
    for m in [2u32, 3, rbound - 1] {
        repack_legs.push(RepackLeg {
            geometry: format!("n={rn} r={rr} k={rk}"),
            m,
            firstfit: replay(
                ThreeStageParams::new(rn, m, rr, rk),
                16.0,
                400.0,
                false,
                0x4EAC,
            ),
            repack: replay(
                ThreeStageParams::new(rn, m, rr, rk),
                16.0,
                400.0,
                true,
                0x4EAC,
            ),
        });
    }

    for leg in &legs {
        println!(
            "{:<11} {:<20} {:>7} events  singles {:>9.0}/s  batch {:>9.0}/s  ×{:.2}",
            leg.backend,
            leg.geometry,
            leg.events,
            leg.singles_per_sec,
            leg.batch_per_sec,
            leg.speedup()
        );
    }

    for &(workers, rate) in &curve {
        println!(
            "scaling     {:<20} workers={:<2} batch {:>9.0}/s  ×{:.2} vs 1 worker",
            cas_geometry,
            workers,
            rate,
            rate / curve[0].1.max(1e-9)
        );
    }

    for leg in &repack_legs {
        println!(
            "repack      {:<14} m={:<2} {:>7} attempts  first-fit {:>5} blocked  \
             repack {:>5} blocked  {:>4} moves",
            leg.geometry,
            leg.m,
            leg.firstfit.attempts,
            leg.firstfit.blocked,
            leg.repack.blocked,
            leg.repack.moves
        );
    }

    let body = legs
        .iter()
        .map(Leg::to_json)
        .collect::<Vec<_>>()
        .join(",\n    ");
    let repack_body = repack_legs
        .iter()
        .map(RepackLeg::to_json)
        .collect::<Vec<_>>()
        .join(",\n    ");
    let curve_body = curve
        .iter()
        .map(|&(workers, rate)| {
            format!("{{\"workers\":{workers},\"admissions_per_sec\":{rate:.0}}}")
        })
        .collect::<Vec<_>>()
        .join(",\n      ");
    let json = format!(
        "{{\n  \"bench\": \"batch_admission\",\n  \"batch_window\": {BATCH_WINDOW},\n  \
         \"shards\": {SHARDS},\n  \"runs_per_leg\": {RUNS},\n  \
         \"host_parallelism\": {host_parallelism},\n  \"results\": [\n    {body}\n  ],\n  \
         \"worker_scaling\": {{\n    \"backend\": \"three-stage-cas\",\n    \
         \"geometry\": \"{cas_geometry}\",\n    \"curve\": [\n      {curve_body}\n    ]\n  }},\n  \
         \"repack_budget\": {REPACK_BUDGET},\n  \"repack\": [\n    {repack_body}\n  ]\n}}\n"
    );
    std::fs::write(&out, json).expect("write report");
    println!("wrote {out}");

    // The gate: batched three-stage throughput at the largest geometry.
    let gated = legs
        .iter()
        .rfind(|l| l.backend == "three-stage")
        .expect("three-stage legs configured");
    if gated.speedup() < SPEEDUP_FLOOR {
        eprintln!(
            "FAIL: batched three-stage admissions/sec is only {:.2}× singles at {} \
             (floor {SPEEDUP_FLOOR}×)",
            gated.speedup(),
            gated.geometry
        );
        std::process::exit(1);
    }
    println!(
        "gate passed: {:.2}× ≥ {SPEEDUP_FLOOR}× at {}",
        gated.speedup(),
        gated.geometry
    );

    // The repack gate: wherever first-fit blocks at all, on-block
    // repacking must strictly dominate it on the same offered trace,
    // and at least one starved leg must actually block.
    let mut dominated = 0usize;
    for leg in &repack_legs {
        if leg.firstfit.blocked == 0 {
            continue;
        }
        if leg.repack.blocked >= leg.firstfit.blocked
            || leg.repack.admitted <= leg.firstfit.admitted
        {
            eprintln!(
                "FAIL: repacking does not dominate first-fit at {} m={} \
                 (blocked {} vs {}, admitted {} vs {})",
                leg.geometry,
                leg.m,
                leg.repack.blocked,
                leg.firstfit.blocked,
                leg.repack.admitted,
                leg.firstfit.admitted
            );
            std::process::exit(1);
        }
        dominated += 1;
    }
    if dominated == 0 {
        eprintln!("FAIL: no starved repack leg ever blocked first-fit; the comparison is vacuous");
        std::process::exit(1);
    }
    println!("repack gate passed: strict dominance on {dominated} starved leg(s)");

    // The scaling gate: CAS admissions/sec must grow with workers at
    // the largest geometry. A worker count above the host's core count
    // can only measure oversubscription, so the curve is enforced up to
    // `host_parallelism` and only on hosts with ≥ 4 real cores — the
    // full curve is recorded in the JSON either way.
    if host_parallelism >= 4 {
        for pair in curve.windows(2) {
            let ((lo_w, lo_rate), (hi_w, hi_rate)) = (pair[0], pair[1]);
            if hi_w > host_parallelism {
                break;
            }
            if hi_rate <= lo_rate {
                eprintln!(
                    "FAIL: CAS admissions/sec fell from {lo_rate:.0}/s at {lo_w} workers \
                     to {hi_rate:.0}/s at {hi_w} workers ({cas_geometry})"
                );
                std::process::exit(1);
            }
        }
        let (top_w, top_rate) = *curve
            .iter()
            .rev()
            .find(|&&(w, _)| w <= host_parallelism)
            .expect("curve starts at 1 worker");
        let scaling = top_rate / curve[0].1.max(1e-9);
        let floor = if top_w >= 8 { SCALING_FLOOR } else { 1.2 };
        if scaling < floor {
            eprintln!(
                "FAIL: CAS admissions/sec at {top_w} workers is only {scaling:.2}× the \
                 single-worker rate (floor {floor}×) at {cas_geometry}"
            );
            std::process::exit(1);
        }
        println!("scaling gate passed: {scaling:.2}× ≥ {floor}× at {top_w} workers");
    } else {
        println!(
            "scaling gate skipped: host exposes only {host_parallelism} core(s); \
             curve recorded for multi-core CI"
        );
    }
}
