//! Blocking-probability curves — the teletraffic view of Theorems 1–2.
//!
//! The paper's bounds are worst-case; this experiment shows the *average*
//! case: Poisson/exponential dynamic traffic offered to three-stage
//! networks with the middle-stage count swept from starved to the
//! Theorem 1 bound. Blocking probability (with 95% Wilson intervals)
//! falls with `m` and is pinned to zero at the bound, and the crossover
//! load where a given `m` starts blocking shifts right as `m` grows.

use wdm_analysis::{parallel_map, wilson_interval, Report, TextTable};
use wdm_bench::experiments_dir;
use wdm_core::MulticastModel;
use wdm_multistage::{bounds, Construction, RouteError, ThreeStageNetwork, ThreeStageParams};
use wdm_workload::{DynamicTraffic, TraceEvent};

struct Point {
    m: u32,
    load: f64,
    attempts: u64,
    blocked: u64,
}

fn run_point(n: u32, r: u32, k: u32, m: u32, load: f64, seed: u64) -> Point {
    let p = ThreeStageParams::new(n, m, r, k);
    let mut net = ThreeStageNetwork::new(p, Construction::MswDominant, MulticastModel::Msw);
    let mut traffic = DynamicTraffic::new(p.network(), MulticastModel::Msw, load, 1.0, 3, seed);
    let (mut attempts, mut blocked) = (0u64, 0u64);
    for timed in traffic.generate(400.0) {
        match timed.event {
            TraceEvent::Connect(conn) => {
                attempts += 1;
                match net.connect(&conn) {
                    Ok(_) => {}
                    Err(RouteError::Blocked { .. }) => blocked += 1,
                    Err(e) => panic!("illegal trace event: {e}"),
                }
            }
            TraceEvent::Disconnect(src) => {
                // A blocked connection has nothing to release.
                let _ = net.disconnect(src);
            }
        }
    }
    Point {
        m,
        load,
        attempts,
        blocked,
    }
}

fn main() {
    let mut report = Report::new();
    let (n, r, k) = (4u32, 4u32, 2u32);
    let bound = bounds::theorem1_min_m(n, r);

    let ms = [2u32, 3, 4, 6, bound.m];
    let loads = [1.0f64, 2.0, 4.0, 8.0, 16.0];
    let grid: Vec<(u32, f64)> = ms
        .iter()
        .flat_map(|&m| loads.iter().map(move |&l| (m, l)))
        .collect();
    let points = parallel_map(grid, |(m, load)| run_point(n, r, k, m, load, 0xB10C));

    let mut t = TextTable::new([
        "m",
        "offered load (Erl)",
        "attempts",
        "blocked",
        "P(block)",
        "95% CI",
    ]);
    for Point {
        m,
        load,
        attempts,
        blocked,
    } in points
    {
        let p = blocked as f64 / attempts.max(1) as f64;
        let (lo, hi) = wilson_interval(blocked, attempts, 1.96);
        t.row([
            m.to_string(),
            format!("{load:.1}"),
            attempts.to_string(),
            blocked.to_string(),
            format!("{p:.4}"),
            format!("[{lo:.4}, {hi:.4}]"),
        ]);
    }
    report.add(
        "blocking_curves",
        format!(
            "Blocking probability vs load (n=r={n}, k={k}; Thm 1 bound m={})",
            bound.m
        ),
        t,
    );

    report.print();

    // A figure-like view: blocking probability per m at the heaviest load.
    let heavy = *loads.last().unwrap();
    let mut chart = wdm_analysis::BarChart::new(
        format!("P(block) at offered load {heavy:.0} Erl (bars scaled to max)"),
        40,
    );
    for &m in &ms {
        let p = run_point(n, r, k, m, heavy, 0xB10C);
        chart.bar(
            format!("m={m:>2}"),
            p.blocked as f64 / p.attempts.max(1) as f64,
        );
    }
    println!("{chart}");

    let paths = report.write_csv_dir(experiments_dir()).expect("write CSVs");
    eprintln!(
        "wrote {} CSV files to {}",
        paths.len(),
        experiments_dir().display()
    );
}
