//! Verifies **Theorems 1–2** empirically: three-stage networks sized at
//! the theorem's minimum `m` survive sustained random and adversarial
//! churn with zero blocked requests, while networks just below a naive
//! `m` block readily. Prints the evidence table.

use rand::{rngs::StdRng, Rng, SeedableRng};
use wdm_analysis::{parallel_map, Report, TextTable};
use wdm_bench::experiments_dir;
use wdm_core::MulticastModel;
use wdm_multistage::{bounds, Construction, RouteError, ThreeStageNetwork, ThreeStageParams};
use wdm_workload::adversarial::{AdversarialGen, Geometry};
use wdm_workload::AssignmentGen;

struct ChurnResult {
    attempts: usize,
    routed: usize,
    blocked: usize,
}

/// Random churn: connect/disconnect mix from `AssignmentGen`.
fn random_churn(
    mut net: ThreeStageNetwork,
    model: MulticastModel,
    steps: usize,
    seed: u64,
) -> ChurnResult {
    let frame = net.network();
    let mut gen = AssignmentGen::new(frame, model, seed);
    let mut rng = StdRng::seed_from_u64(seed ^ 0xABCD);
    let mut live = Vec::new();
    let mut result = ChurnResult {
        attempts: 0,
        routed: 0,
        blocked: 0,
    };
    for _ in 0..steps {
        if !live.is_empty() && rng.gen_bool(0.35) {
            let i = rng.gen_range(0..live.len());
            net.disconnect(live.swap_remove(i)).unwrap();
        } else if let Some(req) = gen.next_request(net.assignment(), 0) {
            result.attempts += 1;
            let src = req.source();
            match net.connect(&req) {
                Ok(_) => {
                    result.routed += 1;
                    live.push(src);
                }
                Err(RouteError::Blocked { .. }) => result.blocked += 1,
                Err(RouteError::Assignment(e)) => panic!("illegal generated request: {e}"),
                Err(e) => panic!("unexpected routing failure: {e}"),
            }
        }
    }
    result
}

/// Adversarial fill: hostile generator, connect-only until exhaustion.
fn adversarial_fill(mut net: ThreeStageNetwork, model: MulticastModel, seed: u64) -> ChurnResult {
    let p = net.params();
    let geo = Geometry {
        n: p.n,
        r: p.r,
        k: p.k,
    };
    let mut gen = AdversarialGen::new(geo, model, seed);
    let mut result = ChurnResult {
        attempts: 0,
        routed: 0,
        blocked: 0,
    };
    while let Some(req) = gen.next_request(net.assignment()) {
        result.attempts += 1;
        match net.connect(&req) {
            Ok(_) => result.routed += 1,
            Err(RouteError::Blocked { .. }) => {
                result.blocked += 1;
                break; // adversarial generator would retry the same shape
            }
            Err(RouteError::Assignment(e)) => panic!("illegal adversarial request: {e}"),
            Err(e) => panic!("unexpected routing failure: {e}"),
        }
        if result.attempts > 10_000 {
            break;
        }
    }
    result
}

fn main() {
    let mut report = Report::new();
    let geometries: Vec<(u32, u32, u32)> = vec![
        (2, 2, 2),
        (3, 3, 2),
        (4, 4, 2),
        (4, 4, 4),
        (2, 4, 3),
        (6, 6, 2),
        (8, 8, 2),
    ];

    // ---- At the bound: zero blocking expected ----
    let jobs: Vec<(u32, u32, u32, Construction, MulticastModel)> = geometries
        .iter()
        .flat_map(|&(n, r, k)| {
            [Construction::MswDominant, Construction::MawDominant]
                .into_iter()
                .flat_map(move |c| {
                    MulticastModel::ALL
                        .into_iter()
                        .map(move |m| (n, r, k, c, m))
                })
        })
        .collect();
    let rows = parallel_map(jobs, |(n, r, k, construction, model)| {
        let bound = match construction {
            Construction::MswDominant => bounds::theorem1_min_m(n, r),
            Construction::MawDominant => bounds::theorem2_min_m(n, r, k),
        };
        let p = ThreeStageParams::new(n, bound.m, r, k);
        let net = ThreeStageNetwork::new(p, construction, model);
        let rand = random_churn(net.clone(), model, 600, 0xFEED ^ (n as u64) << 8 | k as u64);
        let adv = adversarial_fill(net, model, 0xDEAD);
        (n, r, k, construction, model, bound.m, rand, adv)
    });
    let mut t = TextTable::new([
        "n",
        "r",
        "k",
        "construction",
        "model",
        "m (bound)",
        "random routed/attempts",
        "random blocked",
        "adversarial routed",
        "adversarial blocked",
    ]);
    let mut any_blocked = false;
    for (n, r, k, c, model, m, rand, adv) in rows {
        any_blocked |= rand.blocked > 0 || adv.blocked > 0;
        t.row([
            n.to_string(),
            r.to_string(),
            k.to_string(),
            c.to_string(),
            model.to_string(),
            m.to_string(),
            format!("{}/{}", rand.routed, rand.attempts),
            rand.blocked.to_string(),
            adv.routed.to_string(),
            adv.blocked.to_string(),
        ]);
    }
    report.add(
        "theorems_at_bound",
        "Theorems 1–2 — churn at the nonblocking bound",
        t,
    );

    // ---- Below the bound: blocking must appear ----
    let mut t = TextTable::new([
        "n",
        "r",
        "k",
        "construction",
        "m used",
        "m bound",
        "blocked found",
    ]);
    let mut starved_blocked_everywhere = true;
    for &(n, r, k) in &[(4u32, 4u32, 1u32), (4, 4, 2), (6, 6, 2)] {
        for construction in [Construction::MswDominant, Construction::MawDominant] {
            let bound = match construction {
                Construction::MswDominant => bounds::theorem1_min_m(n, r),
                Construction::MawDominant => bounds::theorem2_min_m(n, r, k),
            };
            let starved_m = (n.saturating_sub(1)).max(1); // way below the bound
            let p = ThreeStageParams::new(n, starved_m, r, k);
            let mut net = ThreeStageNetwork::new(p, construction, MulticastModel::Msw);
            net.set_fanout_limit(1);
            let adv = adversarial_fill(net, MulticastModel::Msw, 31);
            starved_blocked_everywhere &= adv.blocked > 0;
            t.row([
                n.to_string(),
                r.to_string(),
                k.to_string(),
                construction.to_string(),
                starved_m.to_string(),
                bound.m.to_string(),
                (adv.blocked > 0).to_string(),
            ]);
        }
    }
    report.add(
        "theorems_below_bound",
        "Control — starved middle stages do block",
        t,
    );

    report.print();
    let paths = report.write_csv_dir(experiments_dir()).expect("write CSVs");
    eprintln!(
        "wrote {} CSV files to {}",
        paths.len(),
        experiments_dir().display()
    );
    assert!(
        !any_blocked,
        "blocking observed at the theorem bound — bound violated!"
    );
    assert!(
        starved_blocked_everywhere,
        "starved networks never blocked — test too weak"
    );
    println!("\nAll theorem verifications PASSED.");
}
