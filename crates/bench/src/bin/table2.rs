//! Regenerates **Table 2** of the paper: crosspoints and converters of the
//! crossbar (CB) versus the MSW-dominant multistage (MS) design, for each
//! multicast model, across a sweep of network sizes — including the
//! crossover point where the multistage construction starts winning.

use wdm_analysis::{parallel_map, Report, TextTable};
use wdm_bench::experiments_dir;
use wdm_core::MulticastModel;
use wdm_multistage::{awg, bounds, cost, Construction, ConverterPlacement, ThreeStageParams};

fn main() {
    let mut report = Report::new();

    // ---- Table 2 proper (asymptotic, paper layout) ----
    let mut symbolic = TextTable::new(["design", "crosspoints", "converters"]);
    symbolic.row(["MSW/CB", "kN^2", "0"]);
    symbolic.row(["MSW/MS", "O(kN^1.5 · logN/loglogN)", "0"]);
    symbolic.row(["MSDW/CB", "k^2·N^2", "kN"]);
    symbolic.row([
        "MSDW/MS",
        "O(k^2·N^1.5 · logN/loglogN)",
        "O(kN · logN/loglogN)",
    ]);
    symbolic.row(["MAW/CB", "k^2·N^2", "kN"]);
    symbolic.row(["MAW/MS", "O(k^2·N^1.5 · logN/loglogN)", "kN"]);
    report.add(
        "table2_symbolic",
        "Table 2 — symbolic (paper layout)",
        symbolic,
    );

    // ---- Evaluated: square decompositions over perfect-square N ----
    let sizes: Vec<u32> = vec![16, 64, 256, 1024, 4096, 16384];
    let ks = [2u32, 4, 8];
    let rows = parallel_map(
        sizes
            .iter()
            .flat_map(|&n| ks.iter().map(move |&k| (n, k)))
            .collect::<Vec<_>>(),
        |(n, k)| {
            let p = ThreeStageParams::square(n, k);
            let per_model: Vec<(u64, u64, u64, u64)> = MulticastModel::ALL
                .iter()
                .map(|&model| {
                    let cb = cost::crossbar_cost(n as u64, k as u64, model);
                    let ms = cost::three_stage_cost(p, Construction::MswDominant, model);
                    (cb.crosspoints, ms.crosspoints, cb.converters, ms.converters)
                })
                .collect();
            (n, k, p.m, per_model)
        },
    );
    let mut eval = TextTable::new([
        "N",
        "k",
        "m",
        "model",
        "CB crosspoints",
        "MS crosspoints",
        "MS/CB",
        "CB conv",
        "MS conv",
    ]);
    for (n, k, m, per_model) in rows {
        for (i, model) in MulticastModel::ALL.iter().enumerate() {
            let (cb_x, ms_x, cb_c, ms_c) = per_model[i];
            eval.row([
                n.to_string(),
                k.to_string(),
                m.to_string(),
                model.to_string(),
                cb_x.to_string(),
                ms_x.to_string(),
                format!("{:.3}", ms_x as f64 / cb_x as f64),
                cb_c.to_string(),
                ms_c.to_string(),
            ]);
        }
    }
    report.add(
        "table2_evaluated",
        "Table 2 — evaluated (MSW-dominant, n=r=√N)",
        eval,
    );

    // ---- Crossover: smallest square N where MS beats CB per model ----
    let mut crossover = TextTable::new(["model", "k", "crossover N (MS < CB)"]);
    for model in MulticastModel::ALL {
        for k in ks {
            let n_star = (2u32..=9)
                .map(|e| (2u32.pow(e)) * (2u32.pow(e))) // N = 4^e
                .find(|&n| {
                    let p = ThreeStageParams::square(n, k);
                    let ms = cost::three_stage_cost(p, Construction::MswDominant, model);
                    ms.crosspoints < cost::crossbar_cost(n as u64, k as u64, model).crosspoints
                });
            crossover.row([
                model.to_string(),
                k.to_string(),
                n_star.map_or("beyond sweep".into(), |n| n.to_string()),
            ]);
        }
    }
    report.add(
        "table2_crossover",
        "Multistage/crossbar crossover sizes",
        crossover,
    );

    // ---- MSW- vs MAW-dominant comparison (§3.4 conclusion) ----
    let mut dom = TextTable::new([
        "N",
        "k",
        "model",
        "MSW-dom crosspoints",
        "MAW-dom crosspoints",
        "MSW-dom m (Thm1)",
        "MAW-dom m (Thm2)",
    ]);
    for &n in &[64u32, 1024] {
        for &k in &[2u32, 8] {
            let side = (n as f64).sqrt() as u32;
            let m1 = bounds::theorem1_min_m(side, side).m;
            let m2 = bounds::theorem2_min_m(side, side, k).m;
            for model in MulticastModel::ALL {
                let p1 = ThreeStageParams::new(side, m1, side, k);
                let p2 = ThreeStageParams::new(side, m2, side, k);
                let c1 = cost::three_stage_cost(p1, Construction::MswDominant, model);
                let c2 = cost::three_stage_cost(p2, Construction::MawDominant, model);
                dom.row([
                    n.to_string(),
                    k.to_string(),
                    model.to_string(),
                    c1.crosspoints.to_string(),
                    c2.crosspoints.to_string(),
                    m1.to_string(),
                    m2.to_string(),
                ]);
            }
        }
    }
    report.add(
        "table2_constructions",
        "MSW-dominant vs MAW-dominant cost",
        dom,
    );

    // ---- Three architectures: switched middles vs passive gratings ----
    // The AWG-Clos trades middle-stage crosspoints (zero — the gratings
    // are passive) for middle-stage *count*: its private-pool bound is
    // m = ⌈n·k/⌊usable/r⌋⌉ ≥ n·r, versus Theorem 1's O(n·x) switched
    // middles. Square decompositions need k ≥ √N to be feasible at all,
    // which confines the comparison to small N — exactly the paper-scale
    // geometries the conformance suites exercise.
    let mut three_arch = TextTable::new([
        "N",
        "k",
        "design",
        "m",
        "crosspoints",
        "converters",
        "AWG ports",
    ]);
    for &n in &[16u32, 64] {
        for &k in &[4u32, 8] {
            let side = (n as f64).sqrt() as u32;
            let p_msw = ThreeStageParams::square(n, k);
            let ms = cost::three_stage_cost(p_msw, Construction::MswDominant, MulticastModel::Msw);
            three_arch.row([
                n.to_string(),
                k.to_string(),
                "MS (switched)".to_string(),
                p_msw.m.to_string(),
                ms.crosspoints.to_string(),
                ms.converters.to_string(),
                "0".to_string(),
            ]);
            let fsr_orders = k.div_ceil(side).max(1);
            match awg::min_middles(side, side, k, fsr_orders) {
                Some(m) => {
                    let p = ThreeStageParams::new(side, m, side, k);
                    let c = cost::awg_clos_cost(p, ConverterPlacement::IngressEgress);
                    three_arch.row([
                        n.to_string(),
                        k.to_string(),
                        "AWG-Clos".to_string(),
                        m.to_string(),
                        c.crosspoints.to_string(),
                        c.converters.to_string(),
                        c.awg_ports.to_string(),
                    ]);
                }
                None => {
                    three_arch.row([
                        n.to_string(),
                        k.to_string(),
                        "AWG-Clos".to_string(),
                        "-".to_string(),
                        format!("infeasible (k < r={side})"),
                        "-".to_string(),
                        "-".to_string(),
                    ]);
                }
            }
        }
    }
    report.add(
        "table2_three_architectures",
        "Switched vs wavelength-routed middle stage (MSW model)",
        three_arch,
    );

    report.print();
    let paths = report.write_csv_dir(experiments_dir()).expect("write CSVs");
    eprintln!(
        "wrote {} CSV files to {}",
        paths.len(),
        experiments_dir().display()
    );
}
