//! Ablation studies over the design choices the paper leaves open:
//!
//! 1. **Middle-switch selection strategy** (first-fit vs pack vs spread) —
//!    the paper's routing strategy fixes only the per-connection fan-out
//!    limit `x`; which middles to prefer is free. We measure blocking
//!    rates below the bound under identical offered load.
//! 2. **Fan-out limit `x`** — the bound's right-hand side trades
//!    unavailable middles (`(n−1)x`) against cover difficulty
//!    (`(n−1)r^{1/x}`); we sweep `x` at fixed `m` to show the sweet spot.
//! 3. **Blocking-witness search** — how quickly adversarial search finds
//!    a blocking sequence as `m` drops below the Theorem 1 bound.

use wdm_analysis::{parallel_map, Report, TextTable};
use wdm_bench::experiments_dir;
use wdm_core::MulticastModel;
use wdm_multistage::{
    bounds, find_blocking_witness, Construction, RouteError, SelectionStrategy, ThreeStageNetwork,
    ThreeStageParams,
};
use wdm_workload::{RequestTrace, TraceEvent};

const STRATEGIES: [SelectionStrategy; 3] = [
    SelectionStrategy::FirstFit,
    SelectionStrategy::Pack,
    SelectionStrategy::Spread,
];

fn blocking_rate(
    p: ThreeStageParams,
    strategy: SelectionStrategy,
    x: Option<u32>,
    trace: &RequestTrace,
) -> (usize, usize) {
    let mut net = ThreeStageNetwork::new(p, Construction::MswDominant, MulticastModel::Msw);
    net.set_strategy(strategy);
    if let Some(x) = x {
        net.set_fanout_limit(x);
    }
    let (mut routed, mut blocked) = (0usize, 0usize);
    trace
        .replay(|event| -> Result<(), String> {
            match event {
                TraceEvent::Connect(conn) => match net.connect(conn) {
                    Ok(_) => routed += 1,
                    Err(RouteError::Blocked { .. }) => blocked += 1,
                    Err(e) => return Err(e.to_string()),
                },
                TraceEvent::Disconnect(src) => {
                    let _ = net.disconnect(*src);
                }
            }
            Ok(())
        })
        .expect("trace is legal");
    (routed, blocked)
}

fn main() {
    let mut report = Report::new();
    let (n, r, k) = (4u32, 4u32, 2u32);
    let bound = bounds::theorem1_min_m(n, r);
    let frame = ThreeStageParams::new(n, bound.m, r, k).network();
    let trace = RequestTrace::churn(frame, MulticastModel::Msw, 4000, 35, 2024);

    // ---- 1. Strategy ablation across m ----
    let ms: Vec<u32> = (2..=bound.m).collect();
    let jobs: Vec<(u32, SelectionStrategy)> = ms
        .iter()
        .flat_map(|&m| STRATEGIES.into_iter().map(move |s| (m, s)))
        .collect();
    let rows = parallel_map(jobs, |(m, strategy)| {
        let p = ThreeStageParams::new(n, m, r, k);
        let (routed, blocked) = blocking_rate(p, strategy, None, &trace);
        (m, strategy, routed, blocked)
    });
    let mut t = TextTable::new(["m", "strategy", "routed", "blocked", "block %"]);
    for (m, strategy, routed, blocked) in rows {
        t.row([
            m.to_string(),
            format!("{strategy:?}"),
            routed.to_string(),
            blocked.to_string(),
            format!(
                "{:.2}",
                100.0 * blocked as f64 / (routed + blocked).max(1) as f64
            ),
        ]);
    }
    report.add(
        "ablation_strategy",
        "Selection strategy vs blocking (n=r=4, k=2)",
        t,
    );

    // ---- 2. Fan-out limit sweep at fixed m ----
    let m_fixed = bound.m;
    let rows = parallel_map(vec![1u32, 2, 3, 4], |x| {
        let p = ThreeStageParams::new(n, m_fixed, r, k);
        let (routed, blocked) = blocking_rate(p, SelectionStrategy::FirstFit, Some(x), &trace);
        (x, routed, blocked)
    });
    let mut t = TextTable::new(["x", "rhs (n-1)(x + r^1/x)", "routed", "blocked"]);
    for (x, routed, blocked) in rows {
        t.row([
            x.to_string(),
            format!("{:.2}", bounds::theorem1_rhs(n, r, x)),
            routed.to_string(),
            blocked.to_string(),
        ]);
    }
    report.add("ablation_x", format!("Fan-out limit x at m = {m_fixed}"), t);

    // ---- 3. Witness search difficulty vs m ----
    let rows = parallel_map((1..=bound.m).collect::<Vec<u32>>(), |m| {
        let p = ThreeStageParams::new(n, m, r, 1);
        let witness =
            find_blocking_witness(p, Construction::MswDominant, MulticastModel::Msw, 1, 60, 99);
        (m, witness.map(|w| w.established.len()))
    });
    let mut t = TextTable::new(["m", "witness found", "connections before block"]);
    for (m, w) in rows {
        t.row([
            m.to_string(),
            w.is_some().to_string(),
            w.map_or("-".into(), |len| len.to_string()),
        ]);
    }
    report.add(
        "ablation_witness",
        "Adversarial blocking-witness search (n=r=4, k=1, x=1)",
        t,
    );

    // ---- 4. Limited-range wavelength conversion ----
    // The paper assumes full-range converters; shrinking the reach
    // degrades the MAW-dominant construction toward MSW-dominant
    // behavior. Measured as blocking under MAW churn at the Theorem 2
    // bound (where full range guarantees zero).
    let (n2, r2, k2) = (3u32, 3u32, 4u32);
    let bound2 = bounds::theorem2_min_m(n2, r2, k2);
    let p2 = ThreeStageParams::new(n2, bound2.m, r2, k2);
    let trace2 = RequestTrace::churn(p2.network(), MulticastModel::Maw, 3000, 35, 77);
    let ranges: Vec<Option<u32>> = vec![Some(0), Some(1), Some(2), Some(3), None];
    let rows = parallel_map(ranges, |range| {
        let mut net = ThreeStageNetwork::new(p2, Construction::MawDominant, MulticastModel::Maw);
        net.set_conversion_range(range);
        let (mut routed, mut blocked) = (0usize, 0usize);
        trace2
            .replay(|event| -> Result<(), String> {
                match event {
                    TraceEvent::Connect(conn) => match net.connect(conn) {
                        Ok(_) => routed += 1,
                        Err(RouteError::Blocked { .. }) => blocked += 1,
                        Err(e) => return Err(e.to_string()),
                    },
                    TraceEvent::Disconnect(src) => {
                        let _ = net.disconnect(*src);
                    }
                }
                Ok(())
            })
            .expect("trace is legal");
        (range, routed, blocked)
    });
    let mut t = TextTable::new(["converter reach d", "routed", "blocked", "block %"]);
    for (range, routed, blocked) in rows {
        t.row([
            range.map_or("full (paper)".into(), |d| format!("±{d}")),
            routed.to_string(),
            blocked.to_string(),
            format!(
                "{:.2}",
                100.0 * blocked as f64 / (routed + blocked).max(1) as f64
            ),
        ]);
    }
    report.add(
        "ablation_conversion_range",
        format!(
            "Limited-range conversion (MAW-dominant, n=r={n2}, k={k2}, m={})",
            bound2.m
        ),
        t,
    );

    report.print();
    let paths = report.write_csv_dir(experiments_dir()).expect("write CSVs");
    eprintln!(
        "wrote {} CSV files to {}",
        paths.len(),
        experiments_dir().display()
    );
}
