//! Verifies **Lemmas 1–3** empirically: for every tiny `(N, k)` the
//! closed-form capacity must equal the brute-force count over all output
//! maps, for full and any assignments, under all three models. Also
//! prints the `k = 1` sanity reduction to `N^N` / `(N+1)^N`.

use wdm_analysis::{parallel_map, Report, TextTable};
use wdm_bench::experiments_dir;
use wdm_core::{capacity, enumerate, MulticastModel, NetworkConfig};

fn main() {
    let mut report = Report::new();

    let configs: Vec<(u32, u32)> = vec![
        (1, 1),
        (2, 1),
        (3, 1),
        (4, 1),
        (1, 2),
        (2, 2),
        (3, 2),
        (1, 3),
        (2, 3),
        (1, 4),
    ];

    let rows = parallel_map(
        configs
            .iter()
            .flat_map(|&nk| MulticastModel::ALL.into_iter().map(move |m| (nk, m)))
            .collect::<Vec<_>>(),
        |((n, k), model)| {
            let net = NetworkConfig::new(n, k);
            let formula_full = capacity::full_assignments(net, model);
            let brute_full = enumerate::count_full(net, model);
            let formula_any = capacity::any_assignments(net, model);
            let brute_any = enumerate::count_any(net, model);
            (
                n,
                k,
                model,
                formula_full,
                brute_full,
                formula_any,
                brute_any,
            )
        },
    );

    let mut t = TextTable::new([
        "N",
        "k",
        "model",
        "lemma",
        "formula full",
        "brute full",
        "formula any",
        "brute any",
        "match",
    ]);
    let mut all_match = true;
    for (n, k, model, ff, bf, fa, ba) in rows {
        let lemma = match model {
            MulticastModel::Msw => "1",
            MulticastModel::Maw => "2",
            MulticastModel::Msdw => "3",
        };
        let ok = ff == bf && fa == ba;
        all_match &= ok;
        t.row([
            n.to_string(),
            k.to_string(),
            model.to_string(),
            lemma.to_string(),
            ff.to_string(),
            bf.to_string(),
            fa.to_string(),
            ba.to_string(),
            if ok {
                "✓".to_string()
            } else {
                "MISMATCH".to_string()
            },
        ]);
    }
    report.add(
        "lemmas_brute_force",
        "Lemmas 1–3 — closed form vs exhaustive count",
        t,
    );

    // k = 1 reduction (the paper's sanity check after Lemma 3).
    let mut t = TextTable::new(["N", "model", "full == N^N", "any == (N+1)^N"]);
    for n in 1..=5u32 {
        let net = NetworkConfig::new(n, 1);
        for model in MulticastModel::ALL {
            let full_ok = capacity::full_assignments(net, model)
                == wdm_bignum::BigUint::from(n as u64).pow(n as u64);
            let any_ok = capacity::any_assignments(net, model)
                == wdm_bignum::BigUint::from(n as u64 + 1).pow(n as u64);
            all_match &= full_ok && any_ok;
            t.row([
                n.to_string(),
                model.to_string(),
                full_ok.to_string(),
                any_ok.to_string(),
            ]);
        }
    }
    report.add(
        "lemmas_k1_reduction",
        "k = 1 reduction to the electronic capacities",
        t,
    );

    report.print();
    let paths = report.write_csv_dir(experiments_dir()).expect("write CSVs");
    eprintln!(
        "wrote {} CSV files to {}",
        paths.len(),
        experiments_dir().display()
    );
    assert!(all_match, "capacity verification failed — see table above");
    println!("\nAll lemma verifications PASSED.");
}
