//! Repacking payoff curves — rearrangeable operation below the bound.
//!
//! Theorem 1 sizes the middle stage so *no* rearrangement is ever
//! needed; below that bound the fabric blocks, and the question becomes
//! how much of the lost load bounded make-before-break repacking buys
//! back. This experiment offers identical Poisson/exponential
//! mixed-fanout traffic to a starved three-stage network twice — once
//! under plain first-fit admission, once with on-block repacking — and
//! sweeps the middle-stage count from deeply starved up through
//! `bound − 1`. Repacking strictly dominates wherever first-fit blocks
//! at all, and both columns pin to zero at `bound − 1`, where the
//! repo's sweeps show empirical slack already.

use wdm_analysis::{parallel_map, wilson_interval, Report, TextTable};
use wdm_bench::experiments_dir;
use wdm_bench::repack_drive::{replay, RepackOutcome};
use wdm_multistage::{bounds, ThreeStageParams};

struct Point {
    m: u32,
    load: f64,
    attempts: u64,
    blocked: u64,
    admitted: u64,
    moves: u32,
}

fn run_point(n: u32, r: u32, k: u32, m: u32, load: f64, repack: bool, seed: u64) -> Point {
    let RepackOutcome {
        attempts,
        admitted,
        blocked,
        moves,
    } = replay(ThreeStageParams::new(n, m, r, k), load, 400.0, repack, seed);
    Point {
        m,
        load,
        attempts,
        blocked,
        admitted,
        moves,
    }
}

fn main() {
    let mut report = Report::new();
    let (n, r, k) = (2u32, 4u32, 2u32);
    let bound = bounds::theorem1_min_m(n, r);

    let ms = [2u32, 3, bound.m - 2, bound.m - 1];
    let loads = [4.0f64, 8.0, 16.0];
    let grid: Vec<(u32, f64)> = ms
        .iter()
        .flat_map(|&m| loads.iter().map(move |&l| (m, l)))
        .collect();
    let points = parallel_map(grid, |(m, load)| {
        let off = run_point(n, r, k, m, load, false, 0x4EAC);
        let on = run_point(n, r, k, m, load, true, 0x4EAC);
        (off, on)
    });

    let mut t = TextTable::new([
        "m",
        "offered load (Erl)",
        "attempts",
        "ff admitted",
        "repack admitted",
        "ff P(block)",
        "repack P(block)",
        "95% CI (repack)",
        "moves",
    ]);
    for (off, on) in &points {
        let p_off = off.blocked as f64 / off.attempts.max(1) as f64;
        let p_on = on.blocked as f64 / on.attempts.max(1) as f64;
        let (lo, hi) = wilson_interval(on.blocked, on.attempts, 1.96);
        t.row([
            off.m.to_string(),
            format!("{:.1}", off.load),
            off.attempts.to_string(),
            off.admitted.to_string(),
            on.admitted.to_string(),
            format!("{p_off:.4}"),
            format!("{p_on:.4}"),
            format!("[{lo:.4}, {hi:.4}]"),
            on.moves.to_string(),
        ]);
    }
    report.add(
        "repack_curves",
        format!(
            "Admitted load, first-fit vs on-block repacking (n={n}, r={r}, k={k}; \
             Thm 1 bound m={})",
            bound.m
        ),
        t,
    );

    report.print();

    // A figure-like view: admitted-load gain per m at the heaviest load.
    let heavy = *loads.last().unwrap();
    let mut chart = wdm_analysis::BarChart::new(
        format!("admissions recovered by repacking at {heavy:.0} Erl (bars scaled to max)"),
        40,
    );
    for (off, on) in points.iter().filter(|(off, _)| off.load == heavy) {
        chart.bar(
            format!("m={:>2}", off.m),
            on.admitted.saturating_sub(off.admitted) as f64,
        );
    }
    println!("{chart}");

    let paths = report.write_csv_dir(experiments_dir()).expect("write CSVs");
    eprintln!(
        "wrote {} CSV files to {}",
        paths.len(),
        experiments_dir().display()
    );

    // The payoff gate: wherever first-fit blocks at all, repacking must
    // strictly dominate — fewer hard blocks and more admissions on the
    // same offered trace — and the starved sweep must expose at least
    // one such point (otherwise the experiment proves nothing).
    let mut dominated = 0usize;
    for (off, on) in &points {
        if off.blocked == 0 {
            continue;
        }
        if on.blocked >= off.blocked || on.admitted <= off.admitted {
            eprintln!(
                "FAIL: at m={} load={:.1} repacking does not dominate first-fit \
                 (blocked {} vs {}, admitted {} vs {})",
                off.m, off.load, on.blocked, off.blocked, on.admitted, off.admitted
            );
            std::process::exit(1);
        }
        dominated += 1;
    }
    if dominated == 0 {
        eprintln!("FAIL: no grid point ever blocked first-fit; the sweep is vacuous");
        std::process::exit(1);
    }
    println!("gate passed: repacking strictly dominates at {dominated} blocking grid points");
}
