//! Regenerates the constructive content of **Figs. 1–10**: for each
//! figure, builds the structure it depicts and prints the observable that
//! makes it checkable (component censuses, converter placements, the
//! blocking contrast).

use wdm_analysis::{Report, TextTable};
use wdm_bench::experiments_dir;
use wdm_core::{capacity, MulticastModel, NetworkConfig};
use wdm_fabric::{PowerParams, WdmCrossbar};
use wdm_multistage::{bounds, cost, scenarios, Construction, ThreeStageParams};

fn main() {
    let mut report = Report::new();

    // Fig. 1: the N×N k-wavelength frame.
    let net = NetworkConfig::new(4, 3);
    let mut t = TextTable::new(["property", "value"]);
    t.row(["network", &net.to_string()]);
    t.row([
        "endpoints per side (Nk)",
        &net.endpoints_per_side().to_string(),
    ]);
    t.row([
        "fixed-tuned transmitters per node",
        &net.wavelengths.to_string(),
    ]);
    report.add("fig1_frame", "Fig. 1 — N×N k-wavelength WDM network", t);

    // Fig. 2: the three models on one example connection shape.
    let mut t = TextTable::new(["model", "source λ", "destination λs", "legal"]);
    use wdm_core::{Endpoint, MulticastConnection};
    let cases = [
        ("same everywhere", (0u32, 0u32), vec![(1u32, 0u32), (2, 0)]),
        (
            "uniform dests, different source",
            (0, 1),
            vec![(1, 0), (2, 0)],
        ),
        ("mixed dests", (0, 0), vec![(1, 1), (2, 0)]),
    ];
    for (label, src, dests) in cases {
        let conn = MulticastConnection::new(
            Endpoint::new(src.0, src.1),
            dests.iter().map(|&(p, w)| Endpoint::new(p, w)),
        )
        .unwrap();
        for model in MulticastModel::ALL {
            t.row([
                model.to_string(),
                format!("λ{} ({label})", src.1 + 1),
                format!("{:?}", dests.iter().map(|d| d.1 + 1).collect::<Vec<_>>()),
                model.allows(&conn).to_string(),
            ]);
        }
    }
    report.add(
        "fig2_models",
        "Fig. 2 — multicast models (legality matrix)",
        t,
    );

    // Fig. 3: converter placement and count per connection.
    let mut t = TextTable::new(["model", "placement", "converters for fanout f"]);
    t.row(["MSW", "none", "0"]);
    t.row(["MSDW", "before the splitter (Fig. 3a)", "1"]);
    t.row(["MAW", "after the splitter, per output (Fig. 3b)", "f"]);
    report.add("fig3_converters", "Fig. 3 — converter placement", t);

    // Figs. 4–7: build each crossbar and report its census + power budget.
    let mut t = TextTable::new([
        "figure",
        "design",
        "N",
        "k",
        "gates",
        "converters",
        "splitters",
        "combiners",
        "worst loss (dB)",
    ]);
    let params = PowerParams::default();
    let builds = [
        ("Fig. 4+5", MulticastModel::Msw, 3u32, 2u32),
        ("Fig. 6", MulticastModel::Msdw, 3, 2),
        ("Fig. 7", MulticastModel::Maw, 3, 2),
        ("Fig. 4+5", MulticastModel::Msw, 8, 4),
        ("Fig. 6", MulticastModel::Msdw, 8, 4),
        ("Fig. 7", MulticastModel::Maw, 8, 4),
    ];
    for (fig, model, n, k) in builds {
        let net = NetworkConfig::new(n, k);
        let xbar = WdmCrossbar::build(net, model);
        let c = xbar.census();
        assert_eq!(c.gates, capacity::crossbar_crosspoints(net, model));
        let pb = xbar.power_budget(&params);
        t.row([
            fig.to_string(),
            model.to_string(),
            n.to_string(),
            k.to_string(),
            c.gates.to_string(),
            c.converters.to_string(),
            c.splitters.to_string(),
            c.combiners.to_string(),
            format!("{:.1}", pb.worst_path_loss_db),
        ]);
    }
    report.add(
        "fig4to7_crossbars",
        "Figs. 4–7 — crossbar constructions (measured census)",
        t,
    );

    // §2.3's crosstalk remark, quantified: route the *same* workload
    // through each crossbar and count first-order leakage paths (off
    // gates with lit inputs). Exposure tracks the crosspoint count.
    let mut t = TextTable::new([
        "design",
        "N",
        "k",
        "crosspoints",
        "crosstalk exposure (full MSW load)",
        "exposure / crosspoints",
    ]);
    for (n, k) in [(4u32, 2u32), (8, 2), (8, 4)] {
        let net = NetworkConfig::new(n, k);
        let load = wdm_workload::AssignmentGen::new(net, MulticastModel::Msw, 7).full_assignment();
        for model in MulticastModel::ALL {
            let mut xbar = WdmCrossbar::build(net, model);
            let outcome = xbar.route_verified(&load).expect("nonblocking");
            let exposure = outcome.total_crosstalk_exposure();
            let gates = capacity::crossbar_crosspoints(net, model);
            t.row([
                model.to_string(),
                n.to_string(),
                k.to_string(),
                gates.to_string(),
                exposure.to_string(),
                format!("{:.3}", exposure as f64 / gates as f64),
            ]);
        }
    }
    report.add(
        "crosstalk_projection",
        "§2.3 — crosstalk exposure tracks crosspoint count",
        t,
    );

    // Fig. 8: three-stage geometry at the Theorem 1 bound.
    let mut t = TextTable::new([
        "n",
        "r",
        "k",
        "N",
        "m (Thm 1)",
        "optimal x",
        "crosspoints (MSW/MS)",
    ]);
    for (n, r, k) in [(4u32, 4u32, 2u32), (8, 8, 2), (16, 16, 4), (32, 32, 4)] {
        let b = bounds::theorem1_min_m(n, r);
        let p = ThreeStageParams::new(n, b.m, r, k);
        let c = cost::three_stage_cost(p, Construction::MswDominant, MulticastModel::Msw);
        t.row([
            n.to_string(),
            r.to_string(),
            k.to_string(),
            (n * r).to_string(),
            b.m.to_string(),
            b.x.to_string(),
            c.crosspoints.to_string(),
        ]);
    }
    report.add("fig8_three_stage", "Fig. 8 — three-stage geometries", t);

    // Fig. 9: the two construction methods, module model by stage.
    let mut t = TextTable::new([
        "construction",
        "input stage",
        "middle stage",
        "output stage",
    ]);
    for (c, first) in [
        (Construction::MswDominant, "MSW"),
        (Construction::MawDominant, "MAW"),
    ] {
        for out in ["MSW", "MSDW", "MAW"] {
            t.row([
                c.to_string(),
                first.to_string(),
                first.to_string(),
                out.to_string(),
            ]);
        }
    }
    report.add(
        "fig9_constructions",
        "Fig. 9 — MSW-/MAW-dominant constructions",
        t,
    );

    // Fig. 10: the blocking contrast, replayed.
    let (msw, maw) = scenarios::fig10_contrast();
    let mut t = TextTable::new([
        "construction",
        "final request",
        "available middles",
        "outcome",
    ]);
    for out in [msw, maw] {
        t.row([
            out.construction.to_string(),
            "(p1, λ1) → (p3, λ1)".to_string(),
            out.available_middles.to_string(),
            if out.blocked {
                "BLOCKED".to_string()
            } else {
                "routed".to_string()
            },
        ]);
    }
    report.add(
        "fig10_blocking",
        "Fig. 10 — middle-stage blocking contrast",
        t,
    );

    report.print();
    let paths = report.write_csv_dir(experiments_dir()).expect("write CSVs");
    eprintln!(
        "wrote {} CSV files to {}",
        paths.len(),
        experiments_dir().display()
    );
}
