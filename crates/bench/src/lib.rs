//! Shared helpers for the table/figure generator binaries and benches.
//!
//! Each binary regenerates one artifact of the paper's evaluation:
//!
//! | binary            | reproduces |
//! |-------------------|------------|
//! | `table1`          | Table 1 — capacity, crosspoints, converters per model |
//! | `table2`          | Table 2 — crossbar vs multistage costs |
//! | `figures`         | Figs. 1–10 — constructions, censuses, the blocking scenario |
//! | `verify_lemmas`   | Lemmas 1–3 — brute force vs closed forms |
//! | `verify_theorems` | Theorems 1–2 — churn experiments at/below the bounds |
//! | `asymptotics`     | §3.4 — growth of `m` and crosspoints with `N` |
//!
//! CSV copies of every table land in `experiments/` at the workspace root.

pub mod batch_drive;
pub mod repack_drive;

use std::path::PathBuf;

/// Directory where generator binaries drop their CSV outputs
/// (`<workspace>/experiments`). Overridable with `WDM_EXPERIMENTS_DIR`.
pub fn experiments_dir() -> PathBuf {
    if let Ok(dir) = std::env::var("WDM_EXPERIMENTS_DIR") {
        return PathBuf::from(dir);
    }
    // crates/bench/ → workspace root.
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(|p| p.parent())
        .map(|ws| ws.join("experiments"))
        .unwrap_or_else(|| PathBuf::from("experiments"))
}

/// Render a `BigUint` compactly: exact when short, `~10^d` when long.
pub fn compact(x: &wdm_bignum::BigUint) -> String {
    let digits = x.digit_count();
    if digits <= 15 {
        x.to_string()
    } else {
        format!("~1.{:02}e{}", first_digits(x), digits - 1)
    }
}

fn first_digits(x: &wdm_bignum::BigUint) -> u32 {
    let s = x.to_decimal_string();
    s[1..3.min(s.len())].parse().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wdm_bignum::BigUint;

    #[test]
    fn compact_short_is_exact() {
        assert_eq!(compact(&BigUint::from(123456u64)), "123456");
    }

    #[test]
    fn compact_long_is_scientific() {
        let x = BigUint::from(10u64).pow(30).mul_u64(17); // 1.7e31
        let s = compact(&x);
        assert!(s.starts_with("~1."), "{s}");
        assert!(s.ends_with("e31"), "{s}");
    }

    #[test]
    fn experiments_dir_env_override() {
        std::env::set_var("WDM_EXPERIMENTS_DIR", "/tmp/xyz");
        assert_eq!(experiments_dir(), PathBuf::from("/tmp/xyz"));
        std::env::remove_var("WDM_EXPERIMENTS_DIR");
        assert!(experiments_dir().ends_with("experiments"));
    }
}
