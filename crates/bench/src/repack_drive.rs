//! Serial repack-vs-first-fit replay shared by the payoff experiments.
//!
//! Both `repack_curves` (the CSV sweep) and `batch_report` (the
//! `BENCH_runtime.json` gate) offer the *same* Poisson mixed-fanout
//! trace to a starved three-stage network twice — plain first-fit, then
//! on-block repacking — so their dominance claims are about identical
//! offered load, not about two different random draws.

use wdm_core::MulticastModel;
use wdm_multistage::{
    Construction, RouteError, SelectionStrategy, ThreeStageNetwork, ThreeStageParams,
};
use wdm_workload::{DynamicTraffic, TraceEvent};

/// Moves the on-block search may spend per blocked connect. Matches the
/// sim harness's budget so bench numbers replay under `wdmcast sim
/// --repack`.
pub const REPACK_BUDGET: u32 = 4;

/// Aggregate outcome of one serial replay.
#[derive(Debug, Clone, Copy, Default)]
pub struct RepackOutcome {
    /// Connect attempts offered.
    pub attempts: u64,
    /// Connects admitted (first try or after rearrangement).
    pub admitted: u64,
    /// Hard blocks.
    pub blocked: u64,
    /// Branch moves committed by the repack search.
    pub moves: u32,
}

/// Replay a seeded Poisson mixed-fanout trace (fanout ≤ 2, holding time
/// 1, the given offered load in Erlangs over `horizon` time units) on a
/// three-stage network with load-spreading selection.
pub fn replay(
    p: ThreeStageParams,
    load: f64,
    horizon: f64,
    repack: bool,
    seed: u64,
) -> RepackOutcome {
    let mut net = ThreeStageNetwork::new(p, Construction::MswDominant, MulticastModel::Msw);
    net.set_strategy(SelectionStrategy::Spread);
    let mut traffic = DynamicTraffic::new(p.network(), MulticastModel::Msw, load, 1.0, 2, seed);
    let mut out = RepackOutcome::default();
    for timed in traffic.generate(horizon) {
        match timed.event {
            TraceEvent::Connect(conn) => {
                out.attempts += 1;
                let res = if repack {
                    let (res, report) = net.connect_with_repack(&conn, REPACK_BUDGET);
                    out.moves += report.moves_committed;
                    res
                } else {
                    net.connect(&conn).map(|_| ())
                };
                match res {
                    Ok(()) => out.admitted += 1,
                    Err(RouteError::Blocked { .. }) => out.blocked += 1,
                    Err(e) => panic!("illegal trace event: {e}"),
                }
            }
            TraceEvent::Disconnect(src) => {
                // A blocked connection has nothing to release.
                let _ = net.disconnect(src);
            }
        }
    }
    out
}
