//! Photonic-composition benchmarks: netlist construction and light
//! propagation for the Fig. 8 three-stage realization — the cost of the
//! hardware-level verification pass.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use wdm_core::MulticastModel;
use wdm_multistage::{
    bounds, Construction, PhotonicThreeStage, ThreeStageNetwork, ThreeStageParams,
};
use wdm_workload::AssignmentGen;

fn sized(n: u32, r: u32, k: u32) -> ThreeStageParams {
    ThreeStageParams::new(n, bounds::theorem1_min_m(n, r).m, r, k)
}

fn bench_build(c: &mut Criterion) {
    let mut g = c.benchmark_group("photonic/build");
    g.sample_size(10);
    for (n, r, k) in [(2u32, 2u32, 2u32), (3, 3, 2), (4, 4, 2)] {
        let p = sized(n, r, k);
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("n{n}r{r}k{k}")),
            &p,
            |b, &p| {
                b.iter(|| {
                    PhotonicThreeStage::build(p, Construction::MswDominant, MulticastModel::Msw)
                })
            },
        );
    }
    g.finish();
}

fn bench_realize(c: &mut Criterion) {
    let mut g = c.benchmark_group("photonic/realize");
    g.sample_size(10);
    for (n, r, k) in [(2u32, 2u32, 2u32), (3, 3, 2), (4, 4, 2)] {
        let p = sized(n, r, k);
        let mut logical = ThreeStageNetwork::new(p, Construction::MswDominant, MulticastModel::Msw);
        let mut gen = AssignmentGen::new(p.network(), MulticastModel::Msw, 3);
        for _ in 0..(n * r) {
            if let Some(req) = gen.next_request(logical.assignment(), 3) {
                let _ = logical.connect(&req);
            }
        }
        let mut photonic =
            PhotonicThreeStage::build(p, Construction::MswDominant, MulticastModel::Msw);
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("n{n}r{r}k{k}")),
            &(),
            |b, _| b.iter(|| photonic.realize(&logical).expect("light follows the route")),
        );
    }
    g.finish();
}

criterion_group!(benches, bench_build, bench_realize);
criterion_main!(benches);
