//! **Serving-layer benchmark**: admissions per second through the full
//! network path — codec, TCP loopback, per-connection reader threads,
//! sharded engine, response write-back — versus the same trace driven
//! in-process. The gap is the wire tax; the invariant is that the wire
//! changes *throughput*, never *outcomes* (zero blocks at the bound
//! either way).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use wdm_core::MulticastModel;
use wdm_multistage::{bounds, Construction, ThreeStageNetwork, ThreeStageParams};
use wdm_net::{NetClient, NetServer, NetServerConfig, Request};
use wdm_runtime::{AdmissionEngine, EngineBuilder};
use wdm_workload::{close_trace, partition_by_source, DynamicTraffic, TimedEvent};

fn closed_trace(p: ThreeStageParams, seed: u64) -> Vec<TimedEvent> {
    let horizon = 20.0;
    let mut events =
        DynamicTraffic::new(p.network(), MulticastModel::Msw, 6.0, 1.0, 2, seed).generate(horizon);
    close_trace(&mut events, horizon + 1.0);
    events
}

fn engine(p: ThreeStageParams) -> AdmissionEngine<ThreeStageNetwork> {
    EngineBuilder::new().shards(4).start(ThreeStageNetwork::new(
        p,
        Construction::MswDominant,
        MulticastModel::Msw,
    ))
}

/// Stream the trace through `clients` loopback connections and drain.
fn drive_over_wire(p: ThreeStageParams, events: &[TimedEvent], clients: usize) -> u64 {
    let server = NetServer::serve(engine(p), "127.0.0.1:0", NetServerConfig::default())
        .expect("bind loopback");
    let addr = server.local_addr();
    let lanes = partition_by_source(events.iter().cloned(), clients);
    let handles: Vec<_> = lanes
        .into_iter()
        .map(|lane| {
            std::thread::spawn(move || {
                let mut client = NetClient::connect(addr).expect("connect");
                let reqs: Vec<Request> = lane.iter().map(|ev| Request::from(&ev.event)).collect();
                // Pipeline the whole lane: a *windowed* closed loop can
                // stall against parked admissions (the departure that
                // would free a parked connect sits in a window the
                // client has not sent yet), turning the benchmark into
                // a deadline-expiry measurement.
                client.pipeline(&reqs).expect("pipelined replay");
            })
        })
        .collect();
    for h in handles {
        h.join().expect("client thread");
    }
    let report = server.shutdown();
    assert!(report.is_clean());
    assert_eq!(report.summary.blocked, 0, "blocked at m = bound over TCP");
    report.summary.admitted
}

/// Same trace, no sockets: the in-process baseline.
fn drive_in_process(p: ThreeStageParams, events: &[TimedEvent]) -> u64 {
    let engine = engine(p);
    engine.run_events(events.iter().cloned());
    let report = engine.drain();
    assert!(report.is_clean());
    assert_eq!(report.summary.blocked, 0);
    report.summary.admitted
}

fn bench_wire_vs_in_process(c: &mut Criterion) {
    let (n, r, k) = (4u32, 4u32, 2u32);
    let m = bounds::theorem1_min_m(n, r).m;
    let p = ThreeStageParams::new(n, m, r, k);
    let events = closed_trace(p, 42);
    let mut g = c.benchmark_group("net/admissions");
    g.sample_size(10);
    g.bench_function("in_process", |b| {
        b.iter(|| drive_in_process(p, &events));
    });
    for clients in [1usize, 4] {
        g.bench_with_input(
            BenchmarkId::new("loopback_tcp", clients),
            &clients,
            |b, &cl| {
                b.iter(|| drive_over_wire(p, &events, cl));
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_wire_vs_in_process);
criterion_main!(benches);
