//! **Theorems 1–2 benchmark**: three-stage connect/disconnect throughput
//! under both constructions at their nonblocking bounds — the cost of the
//! paper's routing strategy (availability scan + ≤x-cover search).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use wdm_core::MulticastModel;
use wdm_multistage::{bounds, Construction, ThreeStageNetwork, ThreeStageParams};
use wdm_workload::{RequestTrace, TraceEvent};

fn churn_trace(p: ThreeStageParams, model: MulticastModel, steps: usize) -> RequestTrace {
    RequestTrace::churn(p.network(), model, steps, 35, 99)
}

fn bench_churn(c: &mut Criterion) {
    let mut g = c.benchmark_group("multistage/churn_200_steps");
    for (n, r, k) in [(4u32, 4u32, 2u32), (8, 8, 2), (8, 8, 4)] {
        for construction in [Construction::MswDominant, Construction::MawDominant] {
            let m = match construction {
                Construction::MswDominant => bounds::theorem1_min_m(n, r).m,
                Construction::MawDominant => bounds::theorem2_min_m(n, r, k).m,
            };
            let p = ThreeStageParams::new(n, m, r, k);
            let model = MulticastModel::Msw;
            let trace = churn_trace(p, model, 200);
            g.bench_with_input(
                BenchmarkId::new(construction.to_string(), format!("n{n}r{r}k{k}")),
                &trace,
                |b, trace| {
                    b.iter(|| {
                        let mut net = ThreeStageNetwork::new(p, construction, model);
                        trace
                            .replay(|event| match event {
                                TraceEvent::Connect(conn) => {
                                    net.connect(conn).map(|_| ()).map_err(|e| e.to_string())
                                }
                                TraceEvent::Disconnect(src) => {
                                    net.disconnect(*src).map(|_| ()).map_err(|e| e.to_string())
                                }
                            })
                            .expect("nonblocking at the bound")
                    })
                },
            );
        }
    }
    g.finish();
}

fn bench_single_connect(c: &mut Criterion) {
    // Cost of one multicast connect on an otherwise loaded network.
    let (n, r, k) = (8u32, 8u32, 2u32);
    let m = bounds::theorem1_min_m(n, r).m;
    let p = ThreeStageParams::new(n, m, r, k);
    let model = MulticastModel::Msw;
    let trace = churn_trace(p, model, 150);
    let mut loaded = ThreeStageNetwork::new(p, Construction::MswDominant, model);
    trace
        .replay(|event| match event {
            TraceEvent::Connect(conn) => {
                loaded.connect(conn).map(|_| ()).map_err(|e| e.to_string())
            }
            TraceEvent::Disconnect(src) => loaded
                .disconnect(*src)
                .map(|_| ())
                .map_err(|e| e.to_string()),
        })
        .unwrap();
    // Free one slot deterministically (the churn may have saturated the
    // sources) and re-route that connection repeatedly.
    let victim = loaded
        .assignment()
        .connections()
        .next()
        .expect("churn leaves at least one live connection")
        .clone();
    let src = victim.source();
    loaded.disconnect(src).unwrap();
    c.bench_function("multistage/single_connect_loaded_n8r8k2", |b| {
        b.iter(|| {
            loaded.connect(&victim).expect("nonblocking at the bound");
            loaded.disconnect(src).unwrap();
        })
    });
}

criterion_group!(benches, bench_churn, bench_single_connect);
criterion_main!(benches);
