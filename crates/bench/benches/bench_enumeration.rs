//! **Lemmas 1–3 benchmark**: brute-force enumeration cost — the practical
//! ceiling on how large a network the exhaustive verification can cover.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use wdm_core::{enumerate, MulticastModel, NetworkConfig};

fn bench_count_any(c: &mut Criterion) {
    let mut g = c.benchmark_group("enumerate/count_any");
    g.sample_size(10);
    for (n, k) in [(2u32, 2u32), (3, 2), (2, 3)] {
        let net = NetworkConfig::new(n, k);
        for model in MulticastModel::ALL {
            g.bench_with_input(
                BenchmarkId::new(model.to_string(), format!("N{n}k{k}")),
                &net,
                |b, &net| b.iter(|| enumerate::count_any(net, model)),
            );
        }
    }
    g.finish();
}

fn bench_valid_map_iteration(c: &mut Criterion) {
    let net = NetworkConfig::new(2, 2);
    c.bench_function("enumerate/materialize_all_maw_2x2x2", |b| {
        b.iter(|| {
            enumerate::valid_maps(net, MulticastModel::Maw, true)
                .map(|m| m.to_assignment(MulticastModel::Maw).unwrap().len())
                .sum::<usize>()
        })
    });
}

criterion_group!(benches, bench_count_any, bench_valid_map_iteration);
criterion_main!(benches);
