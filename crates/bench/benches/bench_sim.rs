//! **Simulation benchmark**: throughput of the deterministic executor —
//! seeded interleaving checks per second, end to end (adversarial trace
//! generation, the cooperative scheduler, the serial oracle replay, and
//! the conformance diff). This is the cost CI pays per seed in the
//! nightly sweep, so regressions here translate directly into less
//! schedule-space coverage per minute.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use wdm_sim::SimSetup;

fn bench_check_seed(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim_check_seed");
    for (label, setup) in [
        ("crossbar", SimSetup::crossbar(2, 4, 1, 40, 4)),
        (
            "three-stage",
            SimSetup::three_stage_at_bound(2, 4, 1, 40, 4),
        ),
        ("three-stage-faulted", {
            let mut s = SimSetup::three_stage_at_bound(2, 4, 1, 40, 4);
            s.m += 1;
            s.faulted = true;
            s
        }),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(label), &setup, |b, setup| {
            let mut seed = 0u64;
            b.iter(|| {
                let verdict = setup.check_seed(seed);
                assert!(verdict.violations.is_empty(), "seed {seed} diverged");
                seed = seed.wrapping_add(1);
                verdict.fingerprint
            });
        });
    }
    group.finish();
}

fn bench_shrink(c: &mut Criterion) {
    // The starved regime: every seed fails, so this measures the full
    // artifact pipeline — check, ddmin over connect/disconnect units,
    // and the final re-validation of the shrunk trace.
    let mut setup = SimSetup::three_stage_underprovisioned(4, 4, 1, 60, 4);
    setup.m = 3;
    c.bench_function("sim_failing_seed_shrink", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            let failure = setup.failing_seed(seed).expect("starved network must fail");
            seed = seed.wrapping_add(1);
            failure.trace.len()
        });
    });
}

criterion_group!(benches, bench_check_seed, bench_shrink);
criterion_main!(benches);
