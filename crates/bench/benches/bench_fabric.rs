//! **Figs. 4–7 benchmark**: construction time, routing time, and signal
//! propagation time of the crossbar fabrics at several sizes.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use wdm_core::{MulticastModel, NetworkConfig};
use wdm_fabric::WdmCrossbar;
use wdm_workload::AssignmentGen;

fn bench_build(c: &mut Criterion) {
    let mut g = c.benchmark_group("fabric/build");
    for (n, k) in [(4u32, 2u32), (8, 2), (16, 4)] {
        let net = NetworkConfig::new(n, k);
        for model in MulticastModel::ALL {
            g.bench_with_input(
                BenchmarkId::new(model.to_string(), format!("N{n}k{k}")),
                &net,
                |b, &net| b.iter(|| WdmCrossbar::build(black_box(net), model)),
            );
        }
    }
    g.finish();
}

fn bench_route(c: &mut Criterion) {
    let mut g = c.benchmark_group("fabric/route_full_assignment");
    for (n, k) in [(4u32, 2u32), (8, 2), (16, 4)] {
        let net = NetworkConfig::new(n, k);
        for model in MulticastModel::ALL {
            let mut xbar = WdmCrossbar::build(net, model);
            let asg = AssignmentGen::new(net, model, 7).full_assignment();
            g.bench_with_input(
                BenchmarkId::new(model.to_string(), format!("N{n}k{k}")),
                &asg,
                |b, asg| b.iter(|| xbar.route(black_box(asg)).expect("crossbar is nonblocking")),
            );
        }
    }
    g.finish();
}

fn bench_census(c: &mut Criterion) {
    let xbar = WdmCrossbar::build(NetworkConfig::new(16, 4), MulticastModel::Maw);
    c.bench_function("fabric/census_N16k4_maw", |b| {
        b.iter(|| black_box(&xbar).census())
    });
}

fn bench_incremental_vs_batch(c: &mut Criterion) {
    // One connect+disconnect cycle: the session touches only the delta's
    // gates; batch routing reprograms the whole fabric.
    use wdm_core::MulticastConnection;
    use wdm_fabric::CrossbarSession;
    let net = NetworkConfig::new(16, 4);
    let model = MulticastModel::Maw;
    // A random background may be full; free one slot deterministically by
    // removing its first connection and re-adding a unicast slice of it.
    let mut background = AssignmentGen::new(net, model, 9).any_assignment();
    let victim = background.connections().next().unwrap().source();
    let removed = background.remove(victim).unwrap();
    let free_src = removed.source();
    let free_dst = removed.destinations()[0];
    let extra = MulticastConnection::unicast(free_src, free_dst);

    let mut session = CrossbarSession::new(net, model);
    for conn in background.connections() {
        session.connect(conn).unwrap();
    }
    c.bench_function("fabric/incremental_connect_cycle_N16k4", |b| {
        b.iter(|| {
            session.connect(&extra).unwrap();
            session.disconnect(free_src).unwrap();
        })
    });

    let mut xbar = WdmCrossbar::build(net, model);
    let mut with_extra = background.clone();
    with_extra.add(extra).unwrap();
    c.bench_function("fabric/batch_reroute_cycle_N16k4", |b| {
        b.iter(|| {
            xbar.route(black_box(&with_extra)).unwrap();
            xbar.route(black_box(&background)).unwrap();
        })
    });
}

criterion_group!(
    benches,
    bench_build,
    bench_route,
    bench_census,
    bench_incremental_vs_batch
);
criterion_main!(benches);
