//! **Figs. 4–7 benchmark**: construction time, routing time, and signal
//! propagation time of the crossbar fabrics at several sizes.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use wdm_core::{MulticastModel, NetworkConfig};
use wdm_fabric::WdmCrossbar;
use wdm_workload::AssignmentGen;

fn bench_build(c: &mut Criterion) {
    let mut g = c.benchmark_group("fabric/build");
    for (n, k) in [(4u32, 2u32), (8, 2), (16, 4)] {
        let net = NetworkConfig::new(n, k);
        for model in MulticastModel::ALL {
            g.bench_with_input(
                BenchmarkId::new(model.to_string(), format!("N{n}k{k}")),
                &net,
                |b, &net| b.iter(|| WdmCrossbar::build(black_box(net), model)),
            );
        }
    }
    g.finish();
}

fn bench_route(c: &mut Criterion) {
    let mut g = c.benchmark_group("fabric/route_full_assignment");
    for (n, k) in [(4u32, 2u32), (8, 2), (16, 4)] {
        let net = NetworkConfig::new(n, k);
        for model in MulticastModel::ALL {
            let mut xbar = WdmCrossbar::build(net, model);
            let asg = AssignmentGen::new(net, model, 7).full_assignment();
            g.bench_with_input(
                BenchmarkId::new(model.to_string(), format!("N{n}k{k}")),
                &asg,
                |b, asg| b.iter(|| xbar.route(black_box(asg)).expect("crossbar is nonblocking")),
            );
        }
    }
    g.finish();
}

fn bench_census(c: &mut Criterion) {
    let xbar = WdmCrossbar::build(NetworkConfig::new(16, 4), MulticastModel::Maw);
    c.bench_function("fabric/census_N16k4_maw", |b| {
        b.iter(|| black_box(&xbar).census())
    });
}

fn bench_incremental_vs_batch(c: &mut Criterion) {
    // One connect+disconnect cycle: the session touches only the delta's
    // gates; batch routing reprograms the whole fabric.
    use wdm_core::MulticastConnection;
    use wdm_fabric::CrossbarSession;
    let net = NetworkConfig::new(16, 4);
    let model = MulticastModel::Maw;
    // A random background may be full; free one slot deterministically by
    // removing its first connection and re-adding a unicast slice of it.
    let mut background = AssignmentGen::new(net, model, 9).any_assignment();
    let victim = background.connections().next().unwrap().source();
    let removed = background.remove(victim).unwrap();
    let free_src = removed.source();
    let free_dst = removed.destinations()[0];
    let extra = MulticastConnection::unicast(free_src, free_dst);

    let mut session = CrossbarSession::new(net, model);
    for conn in background.connections() {
        session.connect(conn).unwrap();
    }
    c.bench_function("fabric/incremental_connect_cycle_N16k4", |b| {
        b.iter(|| {
            session.connect(&extra).unwrap();
            session.disconnect(free_src).unwrap();
        })
    });

    let mut xbar = WdmCrossbar::build(net, model);
    let mut with_extra = background.clone();
    with_extra.add(extra).unwrap();
    c.bench_function("fabric/batch_reroute_cycle_N16k4", |b| {
        b.iter(|| {
            xbar.route(black_box(&with_extra)).unwrap();
            xbar.route(black_box(&background)).unwrap();
        })
    });
}

fn bench_awg_clos_connect_cycle(c: &mut Criterion) {
    // One multicast connect+disconnect cycle through the wavelength-routed
    // Clos: four legs planned per cycle, each a packed-bitset probe over
    // the class replicas — comparable to the incremental crossbar cycle.
    use wdm_core::MulticastConnection;
    use wdm_multistage::AwgClosNetwork;
    let mut net = AwgClosNetwork::at_bound(2, 4, 4, MulticastModel::Msw);
    // Background load: all endpoints of module 0 but one, each multicast
    // to all four output modules, so the probe walks busy channels.
    for i in 1..8u32 {
        let (port, wl) = (i / 4, i % 4);
        let conn = MulticastConnection::new(
            wdm_core::Endpoint::new(port, wl),
            (0..4).map(|b| wdm_core::Endpoint::new(2 * b + port, wl)),
        )
        .unwrap();
        net.connect(&conn).unwrap();
    }
    let extra = MulticastConnection::new(
        wdm_core::Endpoint::new(0, 0),
        (0..4).map(|b| wdm_core::Endpoint::new(2 * b, 0)),
    )
    .unwrap();
    c.bench_function("fabric/awg_clos_connect_cycle_n2r4k4", |b| {
        b.iter(|| {
            net.connect(black_box(&extra)).unwrap();
            net.disconnect(extra.source()).unwrap();
        })
    });
}

criterion_group!(
    benches,
    bench_build,
    bench_route,
    bench_census,
    bench_incremental_vs_batch,
    bench_awg_clos_connect_cycle
);
criterion_main!(benches);
