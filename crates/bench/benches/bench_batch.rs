//! **Batch admission benchmark**: singles vs `submit_batch` through the
//! sharded admission engine, on both backends and across geometries.
//!
//! The batched path pays one channel send per shard per window and one
//! backend lock acquisition per delivered batch, instead of one of each
//! per event — this bench measures how much of the per-event overhead
//! that actually removes. Every sample still re-verifies conservation
//! (offered = admitted + blocked + expired) so the fast path cannot
//! cheat by dropping work.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use wdm_bench::batch_drive::{closed_trace, drive, BATCH_WINDOW};
use wdm_core::{MulticastModel, NetworkConfig};
use wdm_fabric::CrossbarSession;
use wdm_multistage::{
    awg, bounds, AwgClosNetwork, ConcurrentThreeStage, Construction, ConverterPlacement,
    ThreeStageNetwork, ThreeStageParams,
};

fn bench_crossbar_batch(c: &mut Criterion) {
    let mut g = c.benchmark_group("batch/crossbar_admissions");
    g.sample_size(10);
    for (ports, k) in [(16u32, 2u32), (64, 4)] {
        let net = NetworkConfig::new(ports, k);
        let events = closed_trace(net, MulticastModel::Msw, 42);
        let label = format!("N{ports}k{k}");
        for (mode, window) in [("singles", 1usize), ("batch", BATCH_WINDOW)] {
            g.bench_with_input(BenchmarkId::new(mode, &label), &window, |b, &w| {
                b.iter(|| {
                    drive(
                        CrossbarSession::new(net, MulticastModel::Msw),
                        &events,
                        4,
                        w,
                    )
                });
            });
        }
    }
    g.finish();
}

fn bench_three_stage_batch(c: &mut Criterion) {
    let mut g = c.benchmark_group("batch/three_stage_admissions");
    g.sample_size(10);
    for (n, r, k) in [(4u32, 4u32, 2u32), (8, 8, 2), (8, 16, 4)] {
        let m = bounds::theorem1_min_m(n, r).m;
        let p = ThreeStageParams::new(n, m, r, k);
        let events = closed_trace(p.network(), MulticastModel::Msw, 7);
        let label = format!("n{n}r{r}k{k}m{m}");
        for (mode, window) in [("singles", 1usize), ("batch", BATCH_WINDOW)] {
            g.bench_with_input(BenchmarkId::new(mode, &label), &window, |b, &w| {
                b.iter(|| {
                    let report = drive(
                        ThreeStageNetwork::new(p, Construction::MswDominant, MulticastModel::Msw),
                        &events,
                        4,
                        w,
                    );
                    assert_eq!(report.summary.blocked, 0, "blocked at m = bound");
                    report
                });
            });
        }
    }
    g.finish();
}

fn bench_awg_clos_batch(c: &mut Criterion) {
    let mut g = c.benchmark_group("batch/awg_clos_admissions");
    g.sample_size(10);
    for (n, r, k) in [(2u32, 4u32, 4u32), (4, 8, 8)] {
        let fsr_orders = k.div_ceil(r).max(1);
        let m = awg::min_middles(n, r, k, fsr_orders).expect("k ≥ r");
        let p = ThreeStageParams::new(n, m, r, k);
        let events = closed_trace(p.network(), MulticastModel::Msw, 11);
        let label = format!("n{n}r{r}k{k}m{m}");
        for (mode, window) in [("singles", 1usize), ("batch", BATCH_WINDOW)] {
            g.bench_with_input(BenchmarkId::new(mode, &label), &window, |b, &w| {
                b.iter(|| {
                    let report = drive(
                        AwgClosNetwork::new(
                            p,
                            fsr_orders,
                            ConverterPlacement::IngressEgress,
                            MulticastModel::Msw,
                        ),
                        &events,
                        4,
                        w,
                    );
                    assert_eq!(report.summary.blocked, 0, "blocked at m = bound");
                    report
                });
            });
        }
    }
    g.finish();
}

/// The contention leg: the CAS backend under a growing worker count at
/// the largest three-stage geometry. Shards submit under the read side
/// of the backend lock, so admissions/sec should *rise* with workers on
/// a multi-core host — the serial `ThreeStageNetwork` under the same
/// sweep can only flat-line or degrade behind its exclusive lock.
fn bench_concurrent_contention(c: &mut Criterion) {
    let mut g = c.benchmark_group("batch/concurrent_contention");
    g.sample_size(10);
    let (n, r, k) = (8u32, 16u32, 4u32);
    let m = bounds::theorem1_min_m(n, r).m;
    let p = ThreeStageParams::new(n, m, r, k);
    let events = closed_trace(p.network(), MulticastModel::Msw, 7);
    let label = format!("n{n}r{r}k{k}m{m}");
    for workers in [1usize, 2, 4, 8] {
        g.bench_with_input(
            BenchmarkId::new(format!("workers{workers}"), &label),
            &workers,
            |b, &w| {
                b.iter(|| {
                    let report = drive(
                        ConcurrentThreeStage::new(
                            p,
                            Construction::MswDominant,
                            MulticastModel::Msw,
                        ),
                        &events,
                        w,
                        BATCH_WINDOW,
                    );
                    assert_eq!(report.summary.blocked, 0, "blocked at m = bound");
                    report
                });
            },
        );
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_crossbar_batch,
    bench_three_stage_batch,
    bench_awg_clos_batch,
    bench_concurrent_contention
);
criterion_main!(benches);
