//! **Serving-layer shoot-out**: the thread-per-connection server versus
//! the epoll reactor on the identical closed-loop lane workload (the
//! same generator the C10k soak and the `bench-net` sweep use). Each
//! iteration is a full serve cycle — bind, connect storm, pipelined
//! admission/release rounds, drain — so the number is end-to-end
//! admissions time, not a microbenchmark of the event loop. The
//! reactor's edge comes from batch coalescing: one engine submission
//! per poll cycle instead of one per request.

use criterion::{criterion_group, criterion_main, Criterion};

#[cfg(target_os = "linux")]
mod linux {
    use criterion::{BenchmarkId, Criterion};
    use wdm_core::MulticastModel;
    use wdm_multistage::{bounds, Construction, ThreeStageNetwork, ThreeStageParams};
    use wdm_net::{loadgen, LoadConfig, NetServer, NetServerConfig, ReactorConfig, ReactorServer};
    use wdm_runtime::{AdmissionEngine, EngineBuilder};

    fn engine(p: ThreeStageParams) -> AdmissionEngine<ThreeStageNetwork> {
        EngineBuilder::new().shards(2).start(ThreeStageNetwork::new(
            p,
            Construction::MswDominant,
            MulticastModel::Msw,
        ))
    }

    fn load(p: ThreeStageParams, connections: usize) -> LoadConfig {
        LoadConfig {
            connections,
            lanes_per_conn: 4,
            pipeline: 4,
            rounds: 2,
            ports: p.network().ports,
            wavelengths: p.k,
            ..LoadConfig::default()
        }
    }

    /// One full serve cycle through the thread-per-connection server.
    fn drive_threads(p: ThreeStageParams, connections: usize) {
        let server = NetServer::serve(engine(p), "127.0.0.1:0", NetServerConfig::default())
            .expect("bind threads");
        let report = loadgen::run(server.local_addr(), load(p, connections)).expect("load");
        assert!(report.completed && report.rejects() == 0, "{report:?}");
        let report = server.shutdown();
        assert!(report.is_clean());
    }

    /// One full serve cycle through the epoll reactor.
    fn drive_reactor(p: ThreeStageParams, connections: usize) {
        let server = ReactorServer::serve(engine(p), "127.0.0.1:0", ReactorConfig::default())
            .expect("bind reactor");
        let report = loadgen::run(server.local_addr(), load(p, connections)).expect("load");
        assert!(report.completed && report.rejects() == 0, "{report:?}");
        let report = server.shutdown();
        assert!(report.is_clean());
    }

    pub fn bench_serving_layers(c: &mut Criterion) {
        // 8×8 modules of 8 wavelengths at the Theorem-1 bound: big
        // enough that every lane is conflict-free, small enough that
        // engine admission cost does not mask the serving layer.
        let (n, r, k) = (8u32, 8u32, 8u32);
        let m = bounds::theorem1_min_m(n, r).m;
        let p = ThreeStageParams::new(n, m, r, k);
        let mut g = c.benchmark_group("reactor/serve");
        g.sample_size(10);
        for connections in [16usize, 64] {
            g.bench_with_input(
                BenchmarkId::new("threads", connections),
                &connections,
                |b, &conns| b.iter(|| drive_threads(p, conns)),
            );
            g.bench_with_input(
                BenchmarkId::new("reactor", connections),
                &connections,
                |b, &conns| b.iter(|| drive_reactor(p, conns)),
            );
        }
        g.finish();
    }
}

#[cfg(target_os = "linux")]
fn benches(c: &mut Criterion) {
    linux::bench_serving_layers(c);
}

#[cfg(not(target_os = "linux"))]
fn benches(_c: &mut Criterion) {}

criterion_group!(reactor, benches);
criterion_main!(reactor);
