//! Workload-generation benchmarks: random assignments, churn traces, and
//! the application scenarios — the fixed cost every routing experiment
//! pays before it starts measuring.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use wdm_core::{MulticastModel, NetworkConfig};
use wdm_workload::{scenario::Scenario, AssignmentGen, RequestTrace};

fn bench_full_assignment(c: &mut Criterion) {
    let mut g = c.benchmark_group("workload/full_assignment");
    for (n, k) in [(8u32, 2u32), (32, 4), (64, 8)] {
        let net = NetworkConfig::new(n, k);
        for model in MulticastModel::ALL {
            g.bench_with_input(
                BenchmarkId::new(model.to_string(), format!("N{n}k{k}")),
                &net,
                |b, &net| {
                    let mut gen = AssignmentGen::new(net, model, 5);
                    b.iter(|| gen.full_assignment())
                },
            );
        }
    }
    g.finish();
}

fn bench_churn_trace(c: &mut Criterion) {
    let net = NetworkConfig::new(16, 2);
    c.bench_function("workload/churn_trace_500_steps", |b| {
        b.iter(|| RequestTrace::churn(net, MulticastModel::Msw, 500, 35, 1))
    });
}

fn bench_scenarios(c: &mut Criterion) {
    let net = NetworkConfig::new(64, 4);
    let mut g = c.benchmark_group("workload/scenarios");
    for s in [
        Scenario::VideoConference { group_size: 5 },
        Scenario::VideoOnDemand { servers: 4 },
        Scenario::ECommerce { multicast_pct: 20 },
    ] {
        g.bench_function(s.label(), |b| {
            b.iter(|| s.generate(net, MulticastModel::Maw, 3))
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_full_assignment,
    bench_churn_trace,
    bench_scenarios
);
criterion_main!(benches);
