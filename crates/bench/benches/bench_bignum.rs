//! Benchmarks for the bignum substrate: the capacity formulas lean on
//! big multiplication, power, and division, so regressions here slow
//! every sweep.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use wdm_bignum::BigUint;

fn value_of_limbs(limbs: usize, salt: u64) -> BigUint {
    BigUint::from_limbs(
        (0..limbs as u64)
            .map(|i| 0x9E37_79B9_7F4A_7C15u64.wrapping_mul(i + salt))
            .collect(),
    )
}

fn bench_mul(c: &mut Criterion) {
    let mut g = c.benchmark_group("bignum/mul");
    for limbs in [4usize, 16, 64, 256] {
        let a = value_of_limbs(limbs, 1);
        let b = value_of_limbs(limbs, 7);
        g.bench_with_input(BenchmarkId::from_parameter(limbs), &limbs, |bench, _| {
            bench.iter(|| black_box(&a) * black_box(&b));
        });
    }
    g.finish();
}

fn bench_pow(c: &mut Criterion) {
    let mut g = c.benchmark_group("bignum/pow");
    for exp in [64u64, 512, 4096] {
        let base = BigUint::from(123_456_789u64);
        g.bench_with_input(BenchmarkId::from_parameter(exp), &exp, |bench, &e| {
            bench.iter(|| black_box(&base).pow(e));
        });
    }
    g.finish();
}

fn bench_divrem(c: &mut Criterion) {
    let mut g = c.benchmark_group("bignum/divrem");
    for limbs in [8usize, 64, 256] {
        let a = value_of_limbs(limbs, 3);
        let b = value_of_limbs(limbs / 2, 11);
        g.bench_with_input(BenchmarkId::from_parameter(limbs), &limbs, |bench, _| {
            bench.iter(|| black_box(&a).divrem(black_box(&b)));
        });
    }
    g.finish();
}

fn bench_decimal(c: &mut Criterion) {
    let x = BigUint::from(7u64).pow(5000);
    c.bench_function("bignum/to_decimal_5000_digits", |b| {
        b.iter(|| black_box(&x).to_decimal_string());
    });
}

criterion_group!(benches, bench_mul, bench_pow, bench_divrem, bench_decimal);
criterion_main!(benches);
