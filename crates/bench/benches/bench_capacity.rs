//! **Table 1 benchmark**: time to evaluate the exact capacity formulas
//! (Lemmas 1–3) as `N` and `k` grow — the cost of regenerating Table 1.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use wdm_core::{capacity, MulticastModel, NetworkConfig};

fn bench_full_capacity(c: &mut Criterion) {
    let mut g = c.benchmark_group("capacity/full");
    for (n, k) in [(8u32, 2u32), (16, 4), (64, 8), (128, 8)] {
        let net = NetworkConfig::new(n, k);
        for model in MulticastModel::ALL {
            g.bench_with_input(
                BenchmarkId::new(model.to_string(), format!("N{n}k{k}")),
                &net,
                |b, &net| b.iter(|| capacity::full_assignments(black_box(net), model)),
            );
        }
    }
    g.finish();
}

fn bench_any_capacity(c: &mut Criterion) {
    let mut g = c.benchmark_group("capacity/any");
    let net = NetworkConfig::new(32, 4);
    for model in MulticastModel::ALL {
        g.bench_function(model.to_string(), |b| {
            b.iter(|| capacity::any_assignments(black_box(net), model))
        });
    }
    g.finish();
}

fn bench_stirling_heavy_msdw(c: &mut Criterion) {
    // The MSDW capacity is the expensive one (Stirling convolutions).
    c.bench_function("capacity/msdw_N128_k8", |b| {
        let net = NetworkConfig::new(128, 8);
        b.iter(|| capacity::full_assignments(black_box(net), MulticastModel::Msdw));
    });
}

criterion_group!(
    benches,
    bench_full_capacity,
    bench_any_capacity,
    bench_stirling_heavy_msdw
);
criterion_main!(benches);
