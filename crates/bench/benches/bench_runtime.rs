//! **Runtime benchmark**: admitted connections per second through the
//! sharded admission engine as the worker count grows (1 → 8), on both
//! backends. The interesting quantity is scaling without state loss:
//! every sample re-verifies that offered = admitted + blocked + expired
//! and that the backend drained consistently.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use wdm_core::{MulticastModel, NetworkConfig};
use wdm_fabric::CrossbarSession;
use wdm_multistage::{bounds, Construction, ThreeStageNetwork, ThreeStageParams};
use wdm_runtime::{Backend, EngineBuilder, RuntimeReport};
use wdm_workload::{DynamicTraffic, TimedEvent, TraceEvent};

/// Append the departures `generate` truncated at the horizon so no
/// endpoint stays occupied forever (which would turn the benchmark into
/// a deadline-expiry measurement).
fn closed_trace(net: NetworkConfig, model: MulticastModel, seed: u64) -> Vec<TimedEvent> {
    let horizon = 30.0;
    let mut events = DynamicTraffic::new(net, model, 6.0, 1.0, 2, seed).generate(horizon);
    let mut live = std::collections::BTreeSet::new();
    for e in &events {
        match &e.event {
            TraceEvent::Connect(c) => live.insert(c.source()),
            TraceEvent::Disconnect(s) => live.remove(s),
        };
    }
    events.extend(live.into_iter().map(|src| TimedEvent {
        time: horizon + 1.0,
        event: TraceEvent::Disconnect(src),
    }));
    events
}

fn drive<B: Backend>(backend: B, events: &[TimedEvent], workers: usize) -> RuntimeReport<B> {
    let engine = EngineBuilder::new().shards(workers).start(backend);
    engine.run_events(events.iter().cloned());
    let report = engine.drain();
    let s = &report.summary;
    assert_eq!(
        s.offered,
        s.admitted + s.blocked + s.expired,
        "lost a request"
    );
    assert_eq!(
        s.fatal, 0,
        "structural error under concurrency: {:?}",
        report.errors
    );
    assert!(report.consistency.is_empty(), "{:?}", report.consistency);
    report
}

fn bench_crossbar_scaling(c: &mut Criterion) {
    let net = NetworkConfig::new(16, 2);
    let events = closed_trace(net, MulticastModel::Msw, 42);
    let mut g = c.benchmark_group("runtime/crossbar_admissions");
    g.sample_size(10);
    for workers in [1usize, 2, 4, 8] {
        g.bench_with_input(BenchmarkId::from_parameter(workers), &workers, |b, &w| {
            b.iter(|| drive(CrossbarSession::new(net, MulticastModel::Msw), &events, w));
        });
    }
    g.finish();
}

fn bench_three_stage_scaling(c: &mut Criterion) {
    let (n, r, k) = (4u32, 4u32, 2u32);
    let m = bounds::theorem1_min_m(n, r).m;
    let p = ThreeStageParams::new(n, m, r, k);
    let events = closed_trace(p.network(), MulticastModel::Msw, 7);
    let mut g = c.benchmark_group("runtime/three_stage_admissions");
    g.sample_size(10);
    for workers in [1usize, 2, 4, 8] {
        g.bench_with_input(BenchmarkId::from_parameter(workers), &workers, |b, &w| {
            b.iter(|| {
                let report = drive(
                    ThreeStageNetwork::new(p, Construction::MswDominant, MulticastModel::Msw),
                    &events,
                    w,
                );
                assert_eq!(report.summary.blocked, 0, "blocked at m = bound");
                report
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_crossbar_scaling, bench_three_stage_scaling);
criterion_main!(benches);
