//! **Table 2 benchmark**: evaluation cost of the crossbar and multistage
//! cost models over the Table 2 sweep, including the parallel-sweep path
//! used by the `table2` generator.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use wdm_analysis::parallel_map;
use wdm_core::MulticastModel;
use wdm_multistage::{cost, Construction, ThreeStageParams};

fn bench_single_point(c: &mut Criterion) {
    let p = ThreeStageParams::square(4096, 8);
    c.bench_function("cost/three_stage_single_point", |b| {
        b.iter(|| {
            cost::three_stage_cost(black_box(p), Construction::MswDominant, MulticastModel::Maw)
        })
    });
}

fn bench_table2_sweep_serial(c: &mut Criterion) {
    let points: Vec<(u32, u32)> = [16u32, 64, 256, 1024, 4096]
        .iter()
        .flat_map(|&n| [2u32, 4, 8].iter().map(move |&k| (n, k)))
        .collect();
    c.bench_function("cost/table2_sweep_serial", |b| {
        b.iter(|| {
            points
                .iter()
                .map(|&(n, k)| {
                    let p = ThreeStageParams::square(n, k);
                    MulticastModel::ALL
                        .iter()
                        .map(|&m| {
                            cost::three_stage_cost(p, Construction::MswDominant, m).crosspoints
                        })
                        .sum::<u64>()
                })
                .sum::<u64>()
        })
    });
}

fn bench_table2_sweep_parallel(c: &mut Criterion) {
    let points: Vec<(u32, u32)> = [16u32, 64, 256, 1024, 4096]
        .iter()
        .flat_map(|&n| [2u32, 4, 8].iter().map(move |&k| (n, k)))
        .collect();
    c.bench_function("cost/table2_sweep_parallel", |b| {
        b.iter(|| {
            parallel_map(points.clone(), |(n, k)| {
                let p = ThreeStageParams::square(n, k);
                MulticastModel::ALL
                    .iter()
                    .map(|&m| cost::three_stage_cost(p, Construction::MswDominant, m).crosspoints)
                    .sum::<u64>()
            })
            .into_iter()
            .sum::<u64>()
        })
    });
}

criterion_group!(
    benches,
    bench_single_point,
    bench_table2_sweep_serial,
    bench_table2_sweep_parallel
);
criterion_main!(benches);
