//! **§3.4 benchmark**: evaluation cost of the nonblocking bounds and the
//! recursive cost model across large parameter ranges (used by the
//! asymptotics sweep).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use wdm_core::MulticastModel;
use wdm_multistage::{bounds, cost};

fn bench_theorem_minimization(c: &mut Criterion) {
    c.bench_function("bounds/theorem1_n1024_r1024", |b| {
        b.iter(|| bounds::theorem1_min_m(black_box(1024), black_box(1024)))
    });
    c.bench_function("bounds/theorem2_n1024_r1024_k16", |b| {
        b.iter(|| bounds::theorem2_min_m(black_box(1024), black_box(1024), black_box(16)))
    });
}

fn bench_bound_sweep(c: &mut Criterion) {
    c.bench_function("bounds/sweep_1024_geometries", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for n in (2u32..=64).step_by(2) {
                for r in (2u32..=64).step_by(2) {
                    acc += bounds::theorem1_min_m(n, r).m as u64;
                }
            }
            acc
        })
    });
}

fn bench_recursive_cost(c: &mut Criterion) {
    c.bench_function("cost/recursive_depth3_N2^20", |b| {
        b.iter(|| cost::recursive_crosspoints(black_box(1 << 20), 4, MulticastModel::Msw, 3))
    });
}

criterion_group!(
    benches,
    bench_theorem_minimization,
    bench_bound_sweep,
    bench_recursive_cost
);
criterion_main!(benches);
