//! Property-based tests for the workload generators.

use proptest::prelude::*;
use wdm_core::{MulticastAssignment, MulticastModel, NetworkConfig};
use wdm_workload::scenario::Scenario;
use wdm_workload::{AssignmentGen, DynamicTraffic, RequestTrace, TraceEvent};

fn arb_net() -> impl Strategy<Value = NetworkConfig> {
    (2u32..=8, 1u32..=4).prop_map(|(n, k)| NetworkConfig::new(n, k))
}

fn arb_model() -> impl Strategy<Value = MulticastModel> {
    prop::sample::select(&MulticastModel::ALL)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn full_assignments_are_always_full((net, model, seed) in (arb_net(), arb_model(), any::<u64>())) {
        let mut gen = AssignmentGen::new(net, model, seed);
        let asg = gen.full_assignment();
        prop_assert!(asg.is_full());
        for c in asg.connections() {
            prop_assert!(model.allows(c), "{model}: {c}");
        }
    }

    #[test]
    fn any_assignments_are_model_legal((net, model, seed) in (arb_net(), arb_model(), any::<u64>())) {
        let mut gen = AssignmentGen::new(net, model, seed);
        for _ in 0..3 {
            let asg = gen.any_assignment();
            for c in asg.connections() {
                prop_assert!(model.allows(c));
            }
        }
    }

    #[test]
    fn churn_traces_replay_cleanly((net, model, seed) in (arb_net(), arb_model(), any::<u64>()), pct in 0u32..=60) {
        let trace = RequestTrace::churn(net, model, 120, pct, seed);
        let mut asg = MulticastAssignment::new(net, model);
        let ok = trace.replay(|event| match event {
            TraceEvent::Connect(c) => asg.add(c.clone()).map_err(|e| e.to_string()),
            TraceEvent::Disconnect(src) => asg.remove(*src).map(|_| ()).map_err(|e| e.to_string()),
        });
        prop_assert!(ok.is_ok(), "{:?}", ok.err());
    }

    #[test]
    fn trace_json_roundtrips((net, model, seed) in (arb_net(), arb_model(), any::<u64>())) {
        let trace = RequestTrace::churn(net, model, 60, 30, seed);
        let back = RequestTrace::from_json(&trace.to_json()).unwrap();
        prop_assert_eq!(back, trace);
    }

    #[test]
    fn dynamic_traffic_events_are_causal(
        (net, model, seed) in (arb_net(), arb_model(), any::<u64>()),
        load in 1u32..=10,
    ) {
        let mut src = DynamicTraffic::new(net, model, load as f64, 1.0, 0, seed);
        let events = src.generate(50.0);
        let mut live = std::collections::BTreeSet::new();
        let mut last_t = 0.0f64;
        for e in &events {
            prop_assert!(e.time >= last_t, "time went backwards");
            last_t = e.time;
            match &e.event {
                TraceEvent::Connect(c) => prop_assert!(live.insert(c.source())),
                TraceEvent::Disconnect(s) => prop_assert!(live.remove(s)),
            }
        }
    }

    #[test]
    fn scenarios_generate_model_legal_loads(
        (net, model, seed) in (arb_net(), arb_model(), any::<u64>()),
        which in 0usize..3,
    ) {
        let scenario = [
            Scenario::VideoConference { group_size: 3 },
            Scenario::VideoOnDemand { servers: 2 },
            Scenario::ECommerce { multicast_pct: 25 },
        ][which];
        let asg = scenario.generate(net, model, seed);
        for c in asg.connections() {
            prop_assert!(model.allows(c), "{} under {model}: {c}", scenario.label());
        }
    }
}
