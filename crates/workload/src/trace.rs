//! Connect/disconnect event traces: generation, persistence, replay.

use crate::AssignmentGen;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use wdm_core::{Endpoint, MulticastAssignment, MulticastConnection, MulticastModel, NetworkConfig};

/// One event of a dynamic workload.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum TraceEvent {
    /// Establish a connection.
    Connect(MulticastConnection),
    /// Tear down the connection sourced at the endpoint.
    Disconnect(Endpoint),
}

/// A replayable sequence of connection events, legal by construction:
/// generated traces never connect a busy endpoint nor disconnect an idle
/// one.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RequestTrace {
    /// Frame the trace was generated for.
    pub net: NetworkConfig,
    /// Model every connection obeys.
    pub model: MulticastModel,
    /// The events, in order.
    pub events: Vec<TraceEvent>,
}

impl RequestTrace {
    /// Generate a churn trace of `steps` events: each step disconnects a
    /// live connection with probability `disconnect_pct`/100, otherwise
    /// connects a fresh random legal request.
    pub fn churn(
        net: NetworkConfig,
        model: MulticastModel,
        steps: usize,
        disconnect_pct: u32,
        seed: u64,
    ) -> Self {
        assert!(disconnect_pct <= 100);
        let mut gen = AssignmentGen::new(net, model, seed);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x9E37_79B9_7F4A_7C15);
        let mut asg = MulticastAssignment::new(net, model);
        let mut live: Vec<Endpoint> = Vec::new();
        let mut events = Vec::with_capacity(steps);
        for _ in 0..steps {
            let disconnect = !live.is_empty() && rng.gen_range(0..100) < disconnect_pct;
            if disconnect {
                let i = rng.gen_range(0..live.len());
                let src = live.swap_remove(i);
                asg.remove(src).expect("live connection");
                events.push(TraceEvent::Disconnect(src));
            } else if let Some(req) = gen.next_request(&asg, 0) {
                let src = req.source();
                asg.add(req.clone())
                    .expect("generator emits legal requests");
                live.push(src);
                events.push(TraceEvent::Connect(req));
            }
        }
        RequestTrace { net, model, events }
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` iff the trace has no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of connect events.
    pub fn connect_count(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e, TraceEvent::Connect(_)))
            .count()
    }

    /// Peak number of simultaneously live connections.
    pub fn peak_load(&self) -> usize {
        let mut live = 0usize;
        let mut peak = 0usize;
        for e in &self.events {
            match e {
                TraceEvent::Connect(_) => {
                    live += 1;
                    peak = peak.max(live);
                }
                TraceEvent::Disconnect(_) => live -= 1,
            }
        }
        peak
    }

    /// Replay against an arbitrary event handler, stopping at the first
    /// handler error and returning how many events succeeded. A single
    /// handler (rather than separate connect/disconnect callbacks) lets
    /// the caller close over one mutable network.
    pub fn replay<E>(
        &self,
        mut handler: impl FnMut(&TraceEvent) -> Result<(), E>,
    ) -> Result<usize, (usize, E)> {
        for (i, event) in self.events.iter().enumerate() {
            if let Err(e) = handler(event) {
                return Err((i, e));
            }
        }
        Ok(self.events.len())
    }

    /// Serialize to a JSON string.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("trace serializes")
    }

    /// Parse from the [`to_json`](Self::to_json) format.
    pub fn from_json(s: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn churn_traces_are_legal() {
        let net = NetworkConfig::new(6, 2);
        for model in MulticastModel::ALL {
            let trace = RequestTrace::churn(net, model, 300, 30, 7);
            // Replaying against a fresh assignment must never error.
            let mut asg = MulticastAssignment::new(net, model);
            let replayed = trace
                .replay(|event| match event {
                    TraceEvent::Connect(c) => asg.add(c.clone()).map_err(|e| e.to_string()),
                    TraceEvent::Disconnect(src) => {
                        asg.remove(*src).map(|_| ()).map_err(|e| e.to_string())
                    }
                })
                .expect("trace is legal");
            assert_eq!(replayed, trace.len());
        }
    }

    #[test]
    fn trace_statistics() {
        let net = NetworkConfig::new(4, 2);
        let trace = RequestTrace::churn(net, MulticastModel::Msw, 200, 40, 3);
        assert!(trace.connect_count() > 0);
        assert!(trace.peak_load() <= net.endpoints_per_side() as usize);
        assert!(trace.peak_load() >= 1);
        assert!(!trace.is_empty());
    }

    #[test]
    fn json_roundtrip() {
        let net = NetworkConfig::new(3, 2);
        let trace = RequestTrace::churn(net, MulticastModel::Maw, 50, 25, 11);
        let json = trace.to_json();
        let back = RequestTrace::from_json(&json).unwrap();
        assert_eq!(back, trace);
    }

    #[test]
    fn replay_reports_failure_position() {
        let net = NetworkConfig::new(6, 2);
        let trace = RequestTrace::churn(net, MulticastModel::Msw, 40, 30, 5);
        assert!(
            trace.len() >= 3,
            "need at least 3 events, got {}",
            trace.len()
        );
        // Fail on the third event.
        let mut n = 0;
        let result: Result<usize, (usize, &str)> = trace.replay(|_| {
            n += 1;
            if n == 3 {
                Err("boom")
            } else {
                Ok(())
            }
        });
        assert_eq!(result.unwrap_err(), (2, "boom"));
    }

    #[test]
    fn zero_disconnect_pct_is_connect_only() {
        let net = NetworkConfig::new(4, 2);
        let trace = RequestTrace::churn(net, MulticastModel::Msw, 100, 0, 9);
        assert_eq!(trace.connect_count(), trace.len());
    }
}
