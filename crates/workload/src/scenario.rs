//! Application-shaped workloads.
//!
//! The paper motivates WDM multicast with "video conferencing, E-commerce,
//! and video-on-demand services". Each scenario here produces a multicast
//! assignment whose fan-out distribution matches the application's shape:
//!
//! * **video conferencing** — medium symmetric groups: every participant
//!   of a conference multicasts to all the others;
//! * **video on demand** — a few server ports with very large fan-out,
//!   most ports pure receivers;
//! * **e-commerce** — unicast-dominated request/response traffic with the
//!   occasional small multicast (inventory pushes).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use wdm_core::{Endpoint, MulticastAssignment, MulticastConnection, MulticastModel, NetworkConfig};

/// The application mix to synthesize.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Scenario {
    /// Conferences of `group_size` participants each.
    VideoConference {
        /// Participants per conference (≥ 2).
        group_size: u32,
    },
    /// `servers` source ports streaming to everyone else.
    VideoOnDemand {
        /// Number of server ports.
        servers: u32,
    },
    /// Unicast request/response with `multicast_pct`% small multicasts.
    ECommerce {
        /// Percentage of connections that are (small) multicasts.
        multicast_pct: u32,
    },
}

impl Scenario {
    /// Human-readable label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            Scenario::VideoConference { .. } => "video-conference",
            Scenario::VideoOnDemand { .. } => "video-on-demand",
            Scenario::ECommerce { .. } => "e-commerce",
        }
    }

    /// Build a multicast assignment with this scenario's shape on `net`
    /// under `model`. Always succeeds; contended endpoints are skipped, so
    /// the result is the feasible portion of the offered load.
    pub fn generate(
        &self,
        net: NetworkConfig,
        model: MulticastModel,
        seed: u64,
    ) -> MulticastAssignment {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut asg = MulticastAssignment::new(net, model);
        match *self {
            Scenario::VideoConference { group_size } => {
                let g = group_size.max(2).min(net.ports);
                // Partition ports into conferences. Each receiver port has
                // only k wavelengths, so at most k members of a group can
                // speak simultaneously — speaker j of a group uses
                // wavelength j and multicasts to all other members, which
                // keeps the group's streams wavelength-disjoint.
                let mut ports: Vec<u32> = (0..net.ports).collect();
                shuffle(&mut ports, &mut rng);
                for chunk in ports.chunks(g as usize) {
                    if chunk.len() < 2 {
                        continue;
                    }
                    let speakers = (chunk.len() as u32 - 1).min(net.wavelengths);
                    for (j, &speaker) in chunk.iter().take(speakers as usize).enumerate() {
                        let wl = j as u32;
                        let src = Endpoint::new(speaker, wl);
                        let dests: Vec<Endpoint> = chunk
                            .iter()
                            .filter(|&&p| p != speaker)
                            .map(|&p| Endpoint::new(p, dest_wl(model, wl, &mut rng, net)))
                            .collect();
                        try_add(&mut asg, src, dests);
                    }
                }
            }
            Scenario::VideoOnDemand { servers } => {
                let s = servers.clamp(1, net.ports);
                // Each server wavelength streams a different "channel" to
                // a disjoint slice of the audience.
                for server in 0..s {
                    for w in 0..net.wavelengths {
                        let src = Endpoint::new(server, w);
                        let dests: Vec<Endpoint> = (s..net.ports)
                            .filter(|p| {
                                (p + server + w) % net.wavelengths == 0 || net.wavelengths == 1
                            })
                            .map(|p| Endpoint::new(p, dest_wl(model, w, &mut rng, net)))
                            .collect();
                        if !dests.is_empty() {
                            try_add(&mut asg, src, dests);
                        }
                    }
                }
            }
            Scenario::ECommerce { multicast_pct } => {
                let pct = multicast_pct.min(100);
                for p in 0..net.ports {
                    for w in 0..net.wavelengths {
                        let src = Endpoint::new(p, w);
                        let fanout = if rng.gen_range(0..100) < pct {
                            rng.gen_range(2..=4.min(net.ports))
                        } else {
                            1
                        };
                        let mut targets: Vec<u32> = (0..net.ports).collect();
                        shuffle(&mut targets, &mut rng);
                        let dests: Vec<Endpoint> = targets
                            .into_iter()
                            .take(fanout as usize)
                            .map(|t| Endpoint::new(t, dest_wl(model, w, &mut rng, net)))
                            .collect();
                        try_add(&mut asg, src, dests);
                    }
                }
            }
        }
        asg
    }
}

/// Destination wavelength compatible with `model` for source wavelength
/// `src_wl`. MSDW picks one group wavelength per call site (the caller
/// passes the same `src_wl`-derived value for all destinations of a
/// connection); here MSW pins to the source and the other models sample.
fn dest_wl(model: MulticastModel, src_wl: u32, rng: &mut StdRng, net: NetworkConfig) -> u32 {
    match model {
        MulticastModel::Msw => src_wl,
        // Same wavelength for all destinations keeps the connection legal
        // under MSDW while still exercising conversion (λ may differ from
        // the source's only by luck; vary it deterministically instead).
        MulticastModel::Msdw => (src_wl + 1) % net.wavelengths,
        MulticastModel::Maw => rng.gen_range(0..net.wavelengths),
    }
}

fn try_add(asg: &mut MulticastAssignment, src: Endpoint, dests: Vec<Endpoint>) {
    // Keep only free destinations; for MAW the per-port wavelength may
    // collide with an earlier pick, so filter duplicates by port first.
    let mut seen_ports = std::collections::BTreeSet::new();
    let dests: Vec<Endpoint> = dests
        .into_iter()
        .filter(|d| seen_ports.insert(d.port) && asg.output_user(*d).is_none())
        .collect();
    if dests.is_empty() || asg.input_busy(src) {
        return;
    }
    if let Ok(conn) = MulticastConnection::new(src, dests) {
        if asg.model().allows(&conn) {
            let _ = asg.add(conn);
        }
    }
}

fn shuffle<T>(v: &mut [T], rng: &mut StdRng) {
    for i in (1..v.len()).rev() {
        v.swap(i, rng.gen_range(0..=i));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn net() -> NetworkConfig {
        NetworkConfig::new(16, 2)
    }

    #[test]
    fn video_conference_has_symmetric_medium_fanout() {
        let asg =
            Scenario::VideoConference { group_size: 4 }.generate(net(), MulticastModel::Msw, 1);
        assert!(!asg.is_empty());
        // Every connection reaches exactly group_size−1 ports.
        for c in asg.connections() {
            assert_eq!(c.fanout(), 3);
        }
    }

    #[test]
    fn vod_has_few_sources_big_fanout() {
        let asg = Scenario::VideoOnDemand { servers: 2 }.generate(net(), MulticastModel::Msw, 2);
        assert!(!asg.is_empty());
        let max_fanout = asg.connections().map(|c| c.fanout()).max().unwrap();
        assert!(
            max_fanout >= 4,
            "VoD should have large fan-out, got {max_fanout}"
        );
        // All sources are server ports.
        for c in asg.connections() {
            assert!(c.source().port.0 < 2);
        }
    }

    #[test]
    fn ecommerce_is_unicast_dominated() {
        let asg = Scenario::ECommerce { multicast_pct: 10 }.generate(net(), MulticastModel::Maw, 3);
        let unicasts = asg.connections().filter(|c| c.fanout() == 1).count();
        let total = asg.len();
        assert!(total > 0);
        assert!(unicasts * 2 > total, "{unicasts}/{total} unicasts");
    }

    #[test]
    fn scenarios_respect_every_model() {
        for model in MulticastModel::ALL {
            for scenario in [
                Scenario::VideoConference { group_size: 4 },
                Scenario::VideoOnDemand { servers: 3 },
                Scenario::ECommerce { multicast_pct: 25 },
            ] {
                let asg = scenario.generate(net(), model, 7);
                for c in asg.connections() {
                    assert!(
                        model.allows(c),
                        "{} violates {model}: {c}",
                        scenario.label()
                    );
                }
            }
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let s = Scenario::ECommerce { multicast_pct: 30 };
        let a = s.generate(net(), MulticastModel::Maw, 9).to_string();
        let b = s.generate(net(), MulticastModel::Maw, 9).to_string();
        assert_eq!(a, b);
    }

    #[test]
    fn labels() {
        assert_eq!(
            Scenario::VideoOnDemand { servers: 1 }.label(),
            "video-on-demand"
        );
    }
}
