//! Trace partitioning for multi-client replay.
//!
//! Streaming one trace through several network clients only preserves
//! correctness if each connection's `Connect` still precedes its
//! `Disconnect` at the server. Sharding events by **source port** gives
//! that guarantee for free: both events of a connection name the same
//! source, so they land in the same lane, and each lane is replayed
//! in order by a single client.

use crate::dynamic::TimedEvent;
use crate::trace::TraceEvent;

/// The source port an event is keyed by.
fn source_port(event: &TraceEvent) -> u32 {
    match event {
        TraceEvent::Connect(conn) => conn.source().port.0,
        TraceEvent::Disconnect(src) => src.port.0,
    }
}

/// Append the departures [`DynamicTraffic::generate`] truncated at the
/// horizon, so every connection in the trace eventually releases its
/// endpoints. Replaying an *unclosed* trace leaves the tail of
/// connections holding endpoints forever, which turns rival requests
/// into deadline expiries.
///
/// [`DynamicTraffic::generate`]: crate::DynamicTraffic::generate
pub fn close_trace(events: &mut Vec<TimedEvent>, time: f64) {
    let mut live = std::collections::BTreeSet::new();
    for e in events.iter() {
        match &e.event {
            TraceEvent::Connect(c) => live.insert(c.source()),
            TraceEvent::Disconnect(s) => live.remove(s),
        };
    }
    events.extend(live.into_iter().map(|src| TimedEvent {
        time,
        event: TraceEvent::Disconnect(src),
    }));
}

/// Split a trace into `lanes` per-client sub-traces, sharded by source
/// port (`port % lanes`). Event order within each lane matches the
/// input order, so per-connection connect-before-disconnect is
/// preserved. `lanes` of 0 is treated as 1.
pub fn partition_by_source(
    events: impl IntoIterator<Item = TimedEvent>,
    lanes: usize,
) -> Vec<Vec<TimedEvent>> {
    let lanes = lanes.max(1);
    let mut out: Vec<Vec<TimedEvent>> = (0..lanes).map(|_| Vec::new()).collect();
    for ev in events {
        let lane = source_port(&ev.event) as usize % lanes;
        out[lane].push(ev);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DynamicTraffic;
    use std::collections::HashMap;
    use wdm_core::{MulticastModel, NetworkConfig};

    fn sample_trace() -> Vec<TimedEvent> {
        let net = NetworkConfig::new(8, 2);
        let mut traffic = DynamicTraffic::new(net, MulticastModel::Msw, 4.0, 1.0, 3, 11);
        let mut events = traffic.generate(10.0);
        close_trace(&mut events, 11.0);
        events
    }

    #[test]
    fn lanes_cover_the_trace_without_duplication() {
        let events = sample_trace();
        let total = events.len();
        let lanes = partition_by_source(events, 3);
        assert_eq!(lanes.len(), 3);
        assert_eq!(lanes.iter().map(Vec::len).sum::<usize>(), total);
    }

    #[test]
    fn connect_precedes_disconnect_within_every_lane() {
        for lane in partition_by_source(sample_trace(), 4) {
            let mut live: HashMap<(u32, u32), u32> = HashMap::new();
            for ev in &lane {
                match &ev.event {
                    TraceEvent::Connect(conn) => {
                        let src = conn.source();
                        *live.entry((src.port.0, src.wavelength.0)).or_insert(0) += 1;
                    }
                    TraceEvent::Disconnect(src) => {
                        let n = live
                            .get_mut(&(src.port.0, src.wavelength.0))
                            .expect("disconnect after its connect, in the same lane");
                        *n -= 1;
                    }
                }
            }
        }
    }

    #[test]
    fn lane_assignment_is_by_source_port() {
        let lanes = partition_by_source(sample_trace(), 4);
        for (i, lane) in lanes.iter().enumerate() {
            for ev in lane {
                assert_eq!(super::source_port(&ev.event) as usize % 4, i);
            }
        }
    }

    #[test]
    fn close_trace_appends_one_departure_per_live_source() {
        let net = NetworkConfig::new(8, 2);
        let mut traffic = DynamicTraffic::new(net, MulticastModel::Msw, 4.0, 1.0, 3, 23);
        let mut events = traffic.generate(10.0);
        let live_before: usize = {
            let mut live = std::collections::BTreeSet::new();
            for e in &events {
                match &e.event {
                    TraceEvent::Connect(c) => live.insert(c.source()),
                    TraceEvent::Disconnect(s) => live.remove(s),
                };
            }
            live.len()
        };
        let before = events.len();
        close_trace(&mut events, 11.0);
        assert_eq!(events.len(), before + live_before);
        for e in &events[before..] {
            assert_eq!(e.time, 11.0);
            assert!(matches!(e.event, TraceEvent::Disconnect(_)));
        }
    }

    #[test]
    fn close_trace_is_idempotent_on_a_closed_trace() {
        let mut events = sample_trace(); // already closed by the helper
        let closed_len = events.len();
        close_trace(&mut events, 99.0);
        assert_eq!(
            events.len(),
            closed_len,
            "closing a closed trace must append nothing"
        );
        close_trace(&mut events, 100.0);
        assert_eq!(events.len(), closed_len);
    }

    #[test]
    fn close_trace_handles_out_of_order_and_reconnecting_sources() {
        use wdm_core::{Endpoint, MulticastConnection};
        let conn = |src: u32, dst: u32| {
            TraceEvent::Connect(MulticastConnection::unicast(
                Endpoint::new(src, 0),
                Endpoint::new(dst, 0),
            ))
        };
        let disc = |src: u32| TraceEvent::Disconnect(Endpoint::new(src, 0));
        let at = |time: f64, event: TraceEvent| TimedEvent { time, event };
        // Source 0: connect → disconnect → reconnect (ends live, one
        // closing departure). Source 1: a stray disconnect *before* its
        // connect — sequence order, not timestamps, decides liveness, so
        // the later connect leaves it live.
        let mut events = vec![
            at(0.0, conn(0, 4)),
            at(1.0, disc(0)),
            at(2.0, conn(0, 5)),
            at(0.5, disc(1)), // out of order: no prior connect
            at(3.0, conn(1, 6)),
        ];
        close_trace(&mut events, 10.0);
        let closers: Vec<u32> = events[5..]
            .iter()
            .map(|e| match &e.event {
                TraceEvent::Disconnect(s) => s.port.0,
                other => panic!("closer must be a disconnect, got {other:?}"),
            })
            .collect();
        assert_eq!(closers, vec![0, 1], "exactly the still-live sources");
    }

    #[test]
    fn zero_lanes_degenerates_to_one() {
        let events = sample_trace();
        let n = events.len();
        let lanes = partition_by_source(events, 0);
        assert_eq!(lanes.len(), 1);
        assert_eq!(lanes[0].len(), n);
    }
}
