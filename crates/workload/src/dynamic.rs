//! Dynamic (timed) traffic: Poisson arrivals with exponentially
//! distributed holding times — the classic teletraffic model, used to
//! measure blocking probability as a function of offered load on
//! middle-stage-starved networks.

use crate::{AssignmentGen, TraceEvent};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::BinaryHeap;
use wdm_core::{Endpoint, MulticastAssignment, MulticastModel, NetworkConfig};

/// One timestamped workload event.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimedEvent {
    /// Simulation time.
    pub time: f64,
    /// The connect/disconnect.
    pub event: TraceEvent,
}

/// Poisson/exponential traffic source.
///
/// Offered load in Erlangs is `arrival_rate × mean_holding`; with `Nk`
/// source endpoints the per-endpoint load is that divided by `Nk`.
#[derive(Debug)]
pub struct DynamicTraffic {
    net: NetworkConfig,
    model: MulticastModel,
    /// Connection attempts per unit time.
    pub arrival_rate: f64,
    /// Mean holding time of an accepted connection.
    pub mean_holding: f64,
    max_fanout: usize,
    rng: StdRng,
    gen: AssignmentGen,
}

/// Max-heap entry ordered by earliest departure.
#[derive(Debug, PartialEq)]
struct Departure {
    time: f64,
    src: Endpoint,
}

impl Eq for Departure {}
impl Ord for Departure {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest first.
        other.time.total_cmp(&self.time)
    }
}
impl PartialOrd for Departure {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl DynamicTraffic {
    /// Create a source. `max_fanout = 0` means unbounded.
    pub fn new(
        net: NetworkConfig,
        model: MulticastModel,
        arrival_rate: f64,
        mean_holding: f64,
        max_fanout: usize,
        seed: u64,
    ) -> Self {
        assert!(
            arrival_rate > 0.0 && mean_holding > 0.0,
            "rates must be positive"
        );
        DynamicTraffic {
            net,
            model,
            arrival_rate,
            mean_holding,
            max_fanout,
            rng: StdRng::seed_from_u64(seed),
            gen: AssignmentGen::new(net, model, seed ^ 0x5EED),
        }
    }

    /// Offered load in Erlangs (`λ·h`).
    pub fn offered_load(&self) -> f64 {
        self.arrival_rate * self.mean_holding
    }

    /// Exponential variate with the given rate (inverse transform).
    fn exp_sample(rng: &mut StdRng, rate: f64) -> f64 {
        let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        -u.ln() / rate
    }

    /// Generate events up to `horizon` simulated time units.
    ///
    /// Requests are legal against the trace's own endpoint bookkeeping:
    /// an arrival finding no legal request (all sources or compatible
    /// outputs busy) is simply dropped, mimicking admission control.
    pub fn generate(&mut self, horizon: f64) -> Vec<TimedEvent> {
        let mut events = Vec::new();
        let mut asg = MulticastAssignment::new(self.net, self.model);
        let mut departures: BinaryHeap<Departure> = BinaryHeap::new();
        let mut t = 0.0;
        loop {
            t += Self::exp_sample(&mut self.rng, self.arrival_rate);
            if t > horizon {
                break;
            }
            // Release everything that departed before this arrival.
            while let Some(d) = departures.peek() {
                if d.time > t {
                    break;
                }
                let d = departures.pop().unwrap();
                asg.remove(d.src).expect("departing connection is live");
                events.push(TimedEvent {
                    time: d.time,
                    event: TraceEvent::Disconnect(d.src),
                });
            }
            if let Some(req) = self.gen.next_request(&asg, self.max_fanout) {
                let src = req.source();
                asg.add(req.clone())
                    .expect("generator emits legal requests");
                events.push(TimedEvent {
                    time: t,
                    event: TraceEvent::Connect(req),
                });
                let hold = Self::exp_sample(&mut self.rng, 1.0 / self.mean_holding);
                departures.push(Departure {
                    time: t + hold,
                    src,
                });
            }
        }
        // Drain remaining departures inside the horizon.
        while let Some(d) = departures.pop() {
            if d.time > horizon {
                break;
            }
            asg.remove(d.src).expect("departing connection is live");
            events.push(TimedEvent {
                time: d.time,
                event: TraceEvent::Disconnect(d.src),
            });
        }
        events
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn source(load: f64) -> DynamicTraffic {
        DynamicTraffic::new(
            NetworkConfig::new(8, 2),
            MulticastModel::Msw,
            load,
            1.0,
            2,
            42,
        )
    }

    #[test]
    fn events_are_time_ordered_and_paired() {
        let events = source(3.0).generate(200.0);
        assert!(!events.is_empty());
        for w in events.windows(2) {
            assert!(w[0].time <= w[1].time, "{} > {}", w[0].time, w[1].time);
        }
        // Every disconnect refers to an earlier connect of the same source.
        let mut live = std::collections::BTreeSet::new();
        for e in &events {
            match &e.event {
                TraceEvent::Connect(c) => assert!(live.insert(c.source())),
                TraceEvent::Disconnect(src) => assert!(live.remove(src)),
            }
        }
    }

    #[test]
    fn replay_is_endpoint_legal() {
        let events = source(5.0).generate(100.0);
        let mut asg = MulticastAssignment::new(NetworkConfig::new(8, 2), MulticastModel::Msw);
        for e in events {
            match e.event {
                TraceEvent::Connect(c) => asg.add(c).expect("legal"),
                TraceEvent::Disconnect(src) => {
                    asg.remove(src).expect("legal");
                }
            }
        }
    }

    #[test]
    fn higher_load_means_more_concurrency() {
        let peak = |load: f64| {
            let events = DynamicTraffic::new(
                NetworkConfig::new(8, 2),
                MulticastModel::Msw,
                load,
                1.0,
                1,
                7,
            )
            .generate(300.0);
            let (mut live, mut peak) = (0i64, 0i64);
            for e in &events {
                match e.event {
                    TraceEvent::Connect(_) => {
                        live += 1;
                        peak = peak.max(live);
                    }
                    TraceEvent::Disconnect(_) => live -= 1,
                }
            }
            peak
        };
        assert!(peak(8.0) > peak(0.5));
    }

    #[test]
    fn determinism() {
        let a = source(2.0).generate(50.0);
        let b = source(2.0).generate(50.0);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_rate_rejected() {
        DynamicTraffic::new(
            NetworkConfig::new(2, 1),
            MulticastModel::Msw,
            0.0,
            1.0,
            0,
            1,
        );
    }
}
