//! Adversarial generators for three-stage networks.
//!
//! The worst cases in the proofs of Theorems 1–2 have a shape: many
//! connections from the *same input module*, each fanned out to *many
//! output modules*, all pinned to the *same wavelength* (for the
//! MSW-dominant construction). These generators produce exactly that
//! pressure, so the empirical nonblocking checks probe the theorems near
//! their tight spot rather than in the friendly average case.

use crate::dynamic::TimedEvent;
use crate::trace::TraceEvent;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use wdm_core::{Endpoint, MulticastAssignment, MulticastConnection, MulticastModel, NetworkConfig};

/// Three-stage geometry as seen by a workload generator (kept as plain
/// numbers so this crate does not depend on `wdm-multistage`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Geometry {
    /// External ports per input/output module.
    pub n: u32,
    /// Modules per side.
    pub r: u32,
    /// Wavelengths per fiber.
    pub k: u32,
}

impl Geometry {
    /// External ports per side, `N = n·r`.
    pub fn ports(&self) -> u32 {
        self.n * self.r
    }

    /// Global port range of input module `a`.
    pub fn module_ports(&self, a: u32) -> std::ops::Range<u32> {
        (a * self.n)..((a + 1) * self.n)
    }
}

/// Generator of middle-stage-hostile request sequences.
#[derive(Debug)]
pub struct AdversarialGen {
    geo: Geometry,
    model: MulticastModel,
    rng: StdRng,
}

impl AdversarialGen {
    /// Create a generator for `geo` producing requests legal under
    /// `model`.
    pub fn new(geo: Geometry, model: MulticastModel, seed: u64) -> Self {
        AdversarialGen {
            geo,
            model,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// The next hostile request against `asg`: sourced in the most
    /// heavily used input module (to maximize link contention), on the
    /// most-used wavelength the module still has free, spread over as
    /// many *distinct output modules* as possible (one destination port
    /// per module, maximizing the middle-switch fan-out pressure).
    pub fn next_request(&mut self, asg: &MulticastAssignment) -> Option<MulticastConnection> {
        let net = asg.network();
        debug_assert_eq!(net.ports, self.geo.ports());

        // Pick the input module with the most busy sources that still has
        // a free source endpoint.
        let mut best: Option<(usize, Endpoint)> = None;
        for a in 0..self.geo.r {
            let ports = self.geo.module_ports(a);
            let busy = ports
                .clone()
                .flat_map(|p| (0..self.geo.k).map(move |w| Endpoint::new(p, w)))
                .filter(|&e| asg.input_busy(e))
                .count();
            let free = ports
                .clone()
                .flat_map(|p| (0..self.geo.k).map(move |w| Endpoint::new(p, w)))
                .find(|&e| !asg.input_busy(e));
            if let Some(src) = free {
                if best.is_none_or(|(b, _)| busy > b) {
                    best = Some((busy, src));
                }
            }
        }
        let (_, src) = best?;

        // One destination in every output module that still has a free
        // endpoint on a compatible wavelength.
        let dest_wl = match self.model {
            MulticastModel::Msw => src.wavelength.0,
            _ => self.rng.gen_range(0..self.geo.k),
        };
        let mut dests = Vec::new();
        for b in 0..self.geo.r {
            'module: for p in self.geo.module_ports(b) {
                let wl_order: Vec<u32> = match self.model {
                    MulticastModel::Msw => vec![src.wavelength.0],
                    MulticastModel::Msdw => vec![dest_wl],
                    MulticastModel::Maw => (0..self.geo.k).collect(),
                };
                for w in wl_order {
                    let ep = Endpoint::new(p, w);
                    if asg.output_user(ep).is_none() {
                        dests.push(ep);
                        break 'module;
                    }
                }
            }
        }
        if dests.is_empty() {
            return None;
        }
        Some(MulticastConnection::new(src, dests).expect("one port per module"))
    }

    /// A seeded *churn* trace: hostile connects interleaved with random
    /// departures, `steps` events long, fully determined by the
    /// generator's seed.
    ///
    /// Each step either admits the next hostile request (tracked in a
    /// local assignment mirror, so every request is endpoint-legal) or
    /// tears down a uniformly chosen live connection. The mix keeps the
    /// fabric near its contention peak — connections from the busiest
    /// input module appear, vanish, and reappear, which is exactly the
    /// traffic the middle-stage bounds must absorb. The trace is *not*
    /// closed; callers wanting every connection released append the
    /// missing departures with [`crate::close_trace`].
    pub fn churn_trace(&mut self, steps: usize) -> Vec<TimedEvent> {
        let net = NetworkConfig::new(self.geo.ports(), self.geo.k);
        let mut asg = MulticastAssignment::new(net, self.model);
        let mut live: Vec<Endpoint> = Vec::new();
        let mut events = Vec::with_capacity(steps);
        let mut t = 0.0;
        while events.len() < steps {
            t += 1.0;
            let depart = !live.is_empty() && self.rng.gen_bool(0.4);
            if !depart {
                if let Some(req) = self.next_request(&asg) {
                    let src = req.source();
                    asg.add(req.clone()).expect("mirror admits legal request");
                    live.push(src);
                    events.push(TimedEvent {
                        time: t,
                        event: TraceEvent::Connect(req),
                    });
                    continue;
                }
                if live.is_empty() {
                    break; // saturated a degenerate geometry with nothing live
                }
            }
            let idx = self.rng.gen_range(0..live.len());
            let src = live.swap_remove(idx);
            asg.remove(src).expect("mirror tracked this source");
            events.push(TimedEvent {
                time: t,
                event: TraceEvent::Disconnect(src),
            });
        }
        events
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wdm_core::NetworkConfig;

    fn geo() -> Geometry {
        Geometry { n: 3, r: 4, k: 2 }
    }

    #[test]
    fn geometry_addressing() {
        let g = geo();
        assert_eq!(g.ports(), 12);
        assert_eq!(g.module_ports(0), 0..3);
        assert_eq!(g.module_ports(3), 9..12);
    }

    #[test]
    fn requests_spread_across_modules() {
        let g = geo();
        let net = NetworkConfig::new(g.ports(), g.k);
        let asg = MulticastAssignment::new(net, MulticastModel::Msw);
        let mut gen = AdversarialGen::new(g, MulticastModel::Msw, 1);
        let req = gen.next_request(&asg).unwrap();
        // One destination in each of the r output modules.
        assert_eq!(req.fanout(), g.r as usize);
        let modules: std::collections::BTreeSet<u32> =
            req.destinations().iter().map(|d| d.port.0 / g.n).collect();
        assert_eq!(modules.len(), g.r as usize);
    }

    #[test]
    fn prefers_contended_input_module() {
        let g = geo();
        let net = NetworkConfig::new(g.ports(), g.k);
        let mut asg = MulticastAssignment::new(net, MulticastModel::Msw);
        let mut gen = AdversarialGen::new(g, MulticastModel::Msw, 2);
        // Route the first request, add it, then the second must come from
        // the same input module (it is now the busiest with free slots).
        let r1 = gen.next_request(&asg).unwrap();
        let m1 = r1.source().port.0 / g.n;
        asg.add(r1).unwrap();
        let r2 = gen.next_request(&asg).unwrap();
        let m2 = r2.source().port.0 / g.n;
        assert_eq!(m1, m2);
    }

    #[test]
    fn msw_requests_are_wavelength_homogeneous() {
        let g = geo();
        let net = NetworkConfig::new(g.ports(), g.k);
        let asg = MulticastAssignment::new(net, MulticastModel::Msw);
        let mut gen = AdversarialGen::new(g, MulticastModel::Msw, 3);
        let req = gen.next_request(&asg).unwrap();
        assert!(req
            .destinations()
            .iter()
            .all(|d| d.wavelength == req.source().wavelength));
    }

    #[test]
    fn churn_trace_is_seeded_and_legal() {
        let g = geo();
        let a = AdversarialGen::new(g, MulticastModel::Msw, 9).churn_trace(40);
        let b = AdversarialGen::new(g, MulticastModel::Msw, 9).churn_trace(40);
        assert_eq!(a.len(), 40);
        assert_eq!(
            a.iter()
                .map(|e| format!("{:?}", e.event))
                .collect::<Vec<_>>(),
            b.iter()
                .map(|e| format!("{:?}", e.event))
                .collect::<Vec<_>>(),
            "same seed, same trace"
        );
        let c = AdversarialGen::new(g, MulticastModel::Msw, 10).churn_trace(40);
        assert_ne!(
            a.iter()
                .map(|e| format!("{:?}", e.event))
                .collect::<Vec<_>>(),
            c.iter()
                .map(|e| format!("{:?}", e.event))
                .collect::<Vec<_>>(),
            "different seed, different trace"
        );
        // Per-endpoint legality: no connect while live, no stray departs.
        let mut live = std::collections::HashSet::new();
        for e in &a {
            match &e.event {
                TraceEvent::Connect(c) => assert!(live.insert(c.source())),
                TraceEvent::Disconnect(s) => assert!(live.remove(s)),
            }
        }
    }

    #[test]
    fn generator_exhausts_gracefully() {
        let g = Geometry { n: 1, r: 2, k: 1 };
        let net = NetworkConfig::new(2, 1);
        let mut asg = MulticastAssignment::new(net, MulticastModel::Msw);
        let mut gen = AdversarialGen::new(g, MulticastModel::Msw, 4);
        while let Some(req) = gen.next_request(&asg) {
            asg.add(req).unwrap();
        }
        // All sources or all destinations used.
        let no_src = net.endpoints().all(|e| asg.input_busy(e));
        let no_dst = net.endpoints().all(|e| asg.output_user(e).is_some());
        assert!(no_src || no_dst);
    }
}
