//! # wdm-workload — multicast traffic generation
//!
//! Workload generators for exercising WDM multicast switches:
//!
//! * [`AssignmentGen`] — seeded random multicast assignments (full or
//!   partial) under any model, and random *legal next requests* against a
//!   live assignment (the building block of churn experiments);
//! * [`trace`] — connect/disconnect event traces: generation, serde
//!   round-tripping, replay;
//! * [`adversarial`] — generators that deliberately pressure a three-stage
//!   middle stage (same-input-module sources, maximum module spread,
//!   wavelength-homogeneous traffic);
//! * [`hotspot`] — skewed traffic where one module draws a configurable
//!   fraction of destination picks (the popular-server regime the
//!   graph-topology blocking curves sweep);
//! * [`scenario`] — the application mixes the paper's introduction
//!   motivates: video conferencing, video-on-demand, and unicast-heavy
//!   e-commerce traffic;
//! * [`chaos`] — timed component failures and repairs (fault traffic for
//!   the degraded-regime experiments);
//! * [`partition`] — closing a trace and sharding it by source port into
//!   per-client lanes for multi-connection network replay.
//!
//! Everything is deterministic given a seed (`StdRng`), so experiments are
//! reproducible.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adversarial;
pub mod chaos;
pub mod dynamic;
mod generators;
pub mod hotspot;
pub mod partition;
pub mod scenario;
pub mod trace;

pub use chaos::{ChaosSchedule, FaultAction, TimedFault};
pub use dynamic::{DynamicTraffic, TimedEvent};
pub use generators::AssignmentGen;
pub use hotspot::HotspotGen;
pub use partition::{close_trace, partition_by_source};
pub use trace::{RequestTrace, TraceEvent};
