//! Hotspot traffic: one module draws a configurable fraction of all
//! destination picks.
//!
//! Where [`crate::adversarial`] manufactures the *worst case* the
//! nonblocking proofs must absorb, this generator models the *skewed
//! average case* the graph-topology experiments need: a popular content
//! server or egress gateway whose node receives most of the traffic.
//! On sparse-splitter rings this concentration is exactly what turns
//! mild load into blocking — every structure fights for the few
//! wavelengths on the fibers converging on the hot node.

use crate::adversarial::Geometry;
use crate::dynamic::TimedEvent;
use crate::trace::TraceEvent;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeSet;
use wdm_core::{Endpoint, MulticastAssignment, MulticastConnection, MulticastModel, NetworkConfig};

/// Generator of hotspot-skewed request sequences.
///
/// Sources are drawn uniformly over free input endpoints. Each request
/// fans out to a few modules; every destination-module pick lands on the
/// `hot` module with probability `skew_pct`% and uniformly otherwise, so
/// `skew_pct = 0` is uniform traffic and `skew_pct = 100` aims every
/// destination at the hotspot (overflowing to other modules only when
/// the hot module has no free endpoint left).
#[derive(Debug)]
pub struct HotspotGen {
    geo: Geometry,
    model: MulticastModel,
    hot: u32,
    skew_pct: u32,
    fanout: Option<u32>,
    rng: StdRng,
}

impl HotspotGen {
    /// Create a generator for `geo` under `model`, with module `hot`
    /// drawing `skew_pct`% (clamped to 100) of destination picks.
    ///
    /// # Panics
    ///
    /// Panics when `hot` is not a module of `geo`.
    pub fn new(geo: Geometry, model: MulticastModel, hot: u32, skew_pct: u32, seed: u64) -> Self {
        assert!(hot < geo.r, "hot module {hot} out of range (r = {})", geo.r);
        HotspotGen {
            geo,
            model,
            hot,
            skew_pct: skew_pct.min(100),
            fanout: None,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Pin every request to exactly `fanout` distinct destination
    /// modules (capped at `r`). With the default variable fanout,
    /// skewed picks merge and the offered load *shrinks* as skew grows;
    /// pinning the fanout holds load fixed so experiments measure
    /// concentration alone. The hot module then joins the set with
    /// probability `skew_pct`% and the remaining slots fill uniformly.
    pub fn with_fanout(mut self, fanout: u32) -> Self {
        assert!(fanout >= 1, "fanout must be at least 1");
        self.fanout = Some(fanout.min(self.geo.r));
        self
    }

    /// The hot module.
    pub fn hot_module(&self) -> u32 {
        self.hot
    }

    /// The skew, in percent.
    pub fn skew_pct(&self) -> u32 {
        self.skew_pct
    }

    /// The next skewed request against `asg`, or `None` when no legal
    /// request exists (no free source, or no free destination in any
    /// picked module).
    pub fn next_request(&mut self, asg: &MulticastAssignment) -> Option<MulticastConnection> {
        let net = asg.network();
        debug_assert_eq!(net.ports, self.geo.ports());

        // Uniform source over the free input endpoints.
        let free: Vec<Endpoint> = (0..self.geo.ports())
            .flat_map(|p| (0..self.geo.k).map(move |w| Endpoint::new(p, w)))
            .filter(|&e| !asg.input_busy(e))
            .collect();
        if free.is_empty() {
            return None;
        }
        let src = free[self.rng.gen_range(0..free.len())];

        let mut modules = BTreeSet::new();
        match self.fanout {
            // Pinned fanout: the hot module joins with probability
            // `skew_pct`%, the rest fill uniformly — request size (and
            // thus offered load) is independent of the skew.
            Some(fanout) => {
                if self.rng.gen_bool(f64::from(self.skew_pct) / 100.0) {
                    modules.insert(self.hot);
                }
                while (modules.len() as u32) < fanout {
                    modules.insert(self.rng.gen_range(0..self.geo.r));
                }
            }
            // Variable fanout: a few destination-module picks, each
            // skewed toward the hot module; duplicates merge, so
            // effective fanout shrinks as skew grows — concentration,
            // not extra load.
            None => {
                let picks = self.rng.gen_range(1..=self.geo.r.min(4));
                for _ in 0..picks {
                    let m = if self.rng.gen_bool(f64::from(self.skew_pct) / 100.0) {
                        self.hot
                    } else {
                        self.rng.gen_range(0..self.geo.r)
                    };
                    modules.insert(m);
                }
            }
        }

        let dest_wl = match self.model {
            MulticastModel::Msw => src.wavelength.0,
            _ => self.rng.gen_range(0..self.geo.k),
        };
        let mut dests = Vec::new();
        for b in modules {
            'module: for p in self.geo.module_ports(b) {
                let wl_order: Vec<u32> = match self.model {
                    MulticastModel::Msw => vec![src.wavelength.0],
                    MulticastModel::Msdw => vec![dest_wl],
                    MulticastModel::Maw => (0..self.geo.k).collect(),
                };
                for w in wl_order {
                    let ep = Endpoint::new(p, w);
                    if asg.output_user(ep).is_none() {
                        dests.push(ep);
                        break 'module;
                    }
                }
            }
        }
        if dests.is_empty() {
            return None;
        }
        Some(MulticastConnection::new(src, dests).expect("one port per module"))
    }

    /// A seeded churn trace with the same connect/depart mix as
    /// [`crate::adversarial::AdversarialGen::churn_trace`] (40% departure
    /// pressure, endpoint-legal by construction, not closed), but with
    /// hotspot-skewed requests.
    pub fn churn_trace(&mut self, steps: usize) -> Vec<TimedEvent> {
        let net = NetworkConfig::new(self.geo.ports(), self.geo.k);
        let mut asg = MulticastAssignment::new(net, self.model);
        let mut live: Vec<Endpoint> = Vec::new();
        let mut events = Vec::with_capacity(steps);
        let mut t = 0.0;
        while events.len() < steps {
            t += 1.0;
            let depart = !live.is_empty() && self.rng.gen_bool(0.4);
            if !depart {
                if let Some(req) = self.next_request(&asg) {
                    let src = req.source();
                    asg.add(req.clone()).expect("mirror admits legal request");
                    live.push(src);
                    events.push(TimedEvent {
                        time: t,
                        event: TraceEvent::Connect(req),
                    });
                    continue;
                }
                if live.is_empty() {
                    break; // saturated a degenerate geometry with nothing live
                }
            }
            let idx = self.rng.gen_range(0..live.len());
            let src = live.swap_remove(idx);
            asg.remove(src).expect("mirror tracked this source");
            events.push(TimedEvent {
                time: t,
                event: TraceEvent::Disconnect(src),
            });
        }
        events
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geo() -> Geometry {
        Geometry { n: 2, r: 5, k: 2 }
    }

    #[test]
    fn full_skew_aims_every_destination_at_the_hotspot() {
        let g = geo();
        let net = NetworkConfig::new(g.ports(), g.k);
        let asg = MulticastAssignment::new(net, MulticastModel::Msw);
        let mut gen = HotspotGen::new(g, MulticastModel::Msw, 3, 100, 7);
        for _ in 0..10 {
            let req = gen.next_request(&asg).unwrap();
            assert!(req.destinations().iter().all(|d| d.port.0 / g.n == 3));
        }
    }

    #[test]
    fn zero_skew_spreads_over_modules() {
        let g = geo();
        let net = NetworkConfig::new(g.ports(), g.k);
        let asg = MulticastAssignment::new(net, MulticastModel::Msw);
        let mut gen = HotspotGen::new(g, MulticastModel::Msw, 0, 0, 11);
        let mut seen = BTreeSet::new();
        for _ in 0..60 {
            let req = gen.next_request(&asg).unwrap();
            for d in req.destinations() {
                seen.insert(d.port.0 / g.n);
            }
        }
        assert!(seen.len() >= 4, "uniform picks cover modules, saw {seen:?}");
    }

    #[test]
    fn msw_requests_stay_wavelength_homogeneous() {
        let g = geo();
        let net = NetworkConfig::new(g.ports(), g.k);
        let asg = MulticastAssignment::new(net, MulticastModel::Msw);
        let mut gen = HotspotGen::new(g, MulticastModel::Msw, 1, 60, 5);
        let req = gen.next_request(&asg).unwrap();
        assert!(req
            .destinations()
            .iter()
            .all(|d| d.wavelength == req.source().wavelength));
    }

    #[test]
    fn churn_trace_is_seeded_and_legal() {
        let g = geo();
        let a = HotspotGen::new(g, MulticastModel::Msw, 2, 80, 9).churn_trace(50);
        let b = HotspotGen::new(g, MulticastModel::Msw, 2, 80, 9).churn_trace(50);
        assert_eq!(a.len(), 50);
        assert_eq!(
            a.iter()
                .map(|e| format!("{:?}", e.event))
                .collect::<Vec<_>>(),
            b.iter()
                .map(|e| format!("{:?}", e.event))
                .collect::<Vec<_>>(),
            "same seed, same trace"
        );
        let mut live = std::collections::HashSet::new();
        for e in &a {
            match &e.event {
                TraceEvent::Connect(c) => assert!(live.insert(c.source())),
                TraceEvent::Disconnect(s) => assert!(live.remove(s)),
            }
        }
    }

    #[test]
    fn skew_shifts_destination_mass() {
        // At 90% skew, the hot module must receive a strict majority of
        // destination picks over a long trace; at 0% it must not.
        let g = geo();
        let share = |skew: u32| -> f64 {
            let trace = HotspotGen::new(g, MulticastModel::Msw, 4, skew, 13).churn_trace(200);
            let (mut hot, mut total) = (0usize, 0usize);
            for e in &trace {
                if let TraceEvent::Connect(c) = &e.event {
                    for d in c.destinations() {
                        total += 1;
                        hot += usize::from(d.port.0 / g.n == 4);
                    }
                }
            }
            hot as f64 / total as f64
        };
        assert!(share(90) > 0.6, "90% skew concentrates mass");
        assert!(share(0) < 0.5, "uniform traffic does not");
    }

    #[test]
    fn pinned_fanout_is_skew_independent() {
        let g = geo();
        let net = NetworkConfig::new(g.ports(), g.k);
        let asg = MulticastAssignment::new(net, MulticastModel::Msw);
        for skew in [0, 50, 100] {
            let mut gen = HotspotGen::new(g, MulticastModel::Msw, 2, skew, 3).with_fanout(3);
            for _ in 0..20 {
                let req = gen.next_request(&asg).unwrap();
                let modules: BTreeSet<u32> =
                    req.destinations().iter().map(|d| d.port.0 / g.n).collect();
                assert_eq!(modules.len(), 3, "skew {skew} changed the fanout");
            }
        }
    }

    #[test]
    fn hot_module_must_exist() {
        let g = geo();
        let r = std::panic::catch_unwind(|| HotspotGen::new(g, MulticastModel::Msw, 5, 50, 1));
        assert!(r.is_err());
    }
}
