//! Chaos schedules: timed component failures and repairs for exercising
//! the degraded regime of a three-stage network.
//!
//! The paper's Theorems 1–2 size the middle stage so blocking is
//! impossible; the classic Clos sparing corollary says provisioning
//! `m ≥ bound + f` keeps that true with up to `f` failed middles. A
//! [`ChaosSchedule`] generates the traffic of *failures* — exponential
//! fault arrivals over weighted component classes with exponential
//! mean-time-to-repair — the same way [`crate::DynamicTraffic`] generates
//! the traffic of connections, so a fault-tolerance run is reproducible
//! from two seeds.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use wdm_core::Fault;

/// Fail or repair one component.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultAction {
    /// The component dies.
    Fail(Fault),
    /// The component comes back.
    Repair(Fault),
}

impl FaultAction {
    /// The component this action touches.
    pub fn fault(&self) -> Fault {
        match *self {
            FaultAction::Fail(f) | FaultAction::Repair(f) => f,
        }
    }
}

/// One timestamped fault event.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TimedFault {
    /// Simulation time.
    pub time: f64,
    /// What happens.
    pub action: FaultAction,
}

/// Randomized failure/repair generator for a three-stage geometry.
#[derive(Debug, Clone)]
pub struct ChaosSchedule {
    /// Middle switches.
    pub m: u32,
    /// Input/output modules.
    pub r: u32,
    /// Component failures per unit time (whole network).
    pub fault_rate: f64,
    /// Mean time to repair one failed component.
    pub mttr: f64,
}

impl ChaosSchedule {
    /// A schedule for an `m`-middle, `r`-module network.
    pub fn new(m: u32, r: u32, fault_rate: f64, mttr: f64) -> Self {
        assert!(m >= 1 && r >= 1, "geometry must be non-degenerate");
        assert!(
            fault_rate > 0.0 && mttr > 0.0,
            "fault rate and MTTR must be positive"
        );
        ChaosSchedule {
            m,
            r,
            fault_rate,
            mttr,
        }
    }

    /// Generate failures over `[0, horizon)` with their paired repairs
    /// (repairs may land past the horizon). Deterministic per seed.
    ///
    /// Component classes are weighted towards the paper's central actor:
    /// middle switches ~50 %, each inter-stage link class ~20 %,
    /// converter banks ~10 %. A component that is currently down is not
    /// failed again, and the last live middle switch is never killed —
    /// chaos should degrade the fabric, not sever it.
    pub fn generate(&self, horizon: f64, seed: u64) -> Vec<TimedFault> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut events = Vec::new();
        let mut down: BTreeSet<Fault> = BTreeSet::new();
        let mut dead_middles = 0u32;
        let mut t = 0.0;
        loop {
            t += exp_sample(&mut rng, self.fault_rate);
            if t >= horizon {
                break;
            }
            // Expire repairs scheduled before this failure so the
            // "currently down" view is accurate.
            down.retain(|f| {
                let still = events.iter().any(|e: &TimedFault| {
                    matches!(e.action, FaultAction::Repair(rf) if rf == *f) && e.time > t
                });
                if !still && matches!(f, Fault::MiddleSwitch(_)) {
                    dead_middles -= 1;
                }
                still
            });
            let Some(fault) = self.pick_component(&mut rng, &down, dead_middles) else {
                continue;
            };
            down.insert(fault);
            if matches!(fault, Fault::MiddleSwitch(_)) {
                dead_middles += 1;
            }
            events.push(TimedFault {
                time: t,
                action: FaultAction::Fail(fault),
            });
            let repair_at = t + exp_sample(&mut rng, 1.0 / self.mttr);
            events.push(TimedFault {
                time: repair_at,
                action: FaultAction::Repair(fault),
            });
        }
        events.sort_by(|a, b| a.time.total_cmp(&b.time));
        events
    }

    fn pick_component(
        &self,
        rng: &mut StdRng,
        down: &BTreeSet<Fault>,
        dead_middles: u32,
    ) -> Option<Fault> {
        for _ in 0..16 {
            let roll: f64 = rng.gen();
            let fault = if roll < 0.5 {
                if dead_middles + 1 >= self.m {
                    continue; // never kill the last live middle
                }
                Fault::MiddleSwitch(rng.gen_range(0..self.m))
            } else if roll < 0.7 {
                Fault::InputLink {
                    module: rng.gen_range(0..self.r),
                    middle: rng.gen_range(0..self.m),
                }
            } else if roll < 0.9 {
                Fault::MiddleLink {
                    middle: rng.gen_range(0..self.m),
                    module: rng.gen_range(0..self.r),
                }
            } else {
                Fault::MiddleConverters(rng.gen_range(0..self.m))
            };
            if !down.contains(&fault) {
                return Some(fault);
            }
        }
        None
    }
}

/// Exponential sample with the given rate (mean `1/rate`).
fn exp_sample(rng: &mut StdRng, rate: f64) -> f64 {
    let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    -u.ln() / rate
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_is_deterministic_per_seed() {
        let s = ChaosSchedule::new(13, 4, 0.5, 2.0);
        let a = s.generate(40.0, 9);
        let b = s.generate(40.0, 9);
        assert_eq!(a, b);
        let c = s.generate(40.0, 10);
        assert_ne!(a, c, "different seed, different chaos");
        assert!(!a.is_empty(), "rate 0.5 over 40 time units fires");
    }

    #[test]
    fn every_failure_gets_a_repair() {
        let s = ChaosSchedule::new(8, 4, 1.0, 1.5);
        let events = s.generate(30.0, 3);
        let fails: Vec<Fault> = events
            .iter()
            .filter_map(|e| match e.action {
                FaultAction::Fail(f) => Some(f),
                FaultAction::Repair(_) => None,
            })
            .collect();
        let repairs: Vec<Fault> = events
            .iter()
            .filter_map(|e| match e.action {
                FaultAction::Repair(f) => Some(f),
                FaultAction::Fail(_) => None,
            })
            .collect();
        assert_eq!(fails.len(), repairs.len());
        for f in &fails {
            assert!(repairs.contains(f), "{f} failed but never repaired");
        }
        // Sorted by time.
        for w in events.windows(2) {
            assert!(w[0].time <= w[1].time);
        }
    }

    #[test]
    fn never_kills_every_middle() {
        // m=2 with a furious fault rate: at most one middle may be down
        // at any instant.
        let s = ChaosSchedule::new(2, 2, 50.0, 100.0);
        let events = s.generate(10.0, 5);
        let mut dead = 0i32;
        for e in &events {
            if let FaultAction::Fail(Fault::MiddleSwitch(_)) = e.action {
                dead += 1;
            }
            if let FaultAction::Repair(Fault::MiddleSwitch(_)) = e.action {
                dead -= 1;
            }
            assert!(dead < 2, "both middles dead at t={}", e.time);
        }
    }

    #[test]
    fn serde_roundtrip() {
        let s = ChaosSchedule::new(4, 2, 1.0, 1.0);
        let events = s.generate(5.0, 1);
        let json = serde_json::to_string(&events).unwrap();
        let back: Vec<TimedFault> = serde_json::from_str(&json).unwrap();
        assert_eq!(back, events);
    }
}
