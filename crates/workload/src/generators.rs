//! Random assignment and request generation.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use wdm_core::{
    Endpoint, MulticastAssignment, MulticastConnection, MulticastModel, NetworkConfig, OutputMap,
};

/// Seeded generator of random multicast assignments and requests.
///
/// ```
/// use wdm_core::{NetworkConfig, MulticastModel};
/// use wdm_workload::AssignmentGen;
///
/// let mut gen = AssignmentGen::new(NetworkConfig::new(8, 2), MulticastModel::Maw, 42);
/// let asg = gen.full_assignment();
/// assert!(asg.is_full());
/// let same = AssignmentGen::new(asg.network(), asg.model(), 42).full_assignment();
/// assert_eq!(asg.to_string(), same.to_string()); // deterministic
/// ```
#[derive(Debug)]
pub struct AssignmentGen {
    net: NetworkConfig,
    model: MulticastModel,
    rng: StdRng,
}

impl AssignmentGen {
    /// Create a generator for `net` under `model` with the given seed.
    pub fn new(net: NetworkConfig, model: MulticastModel, seed: u64) -> Self {
        AssignmentGen {
            net,
            model,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// The network frame.
    pub fn network(&self) -> NetworkConfig {
        self.net
    }

    /// Sample a uniformly random *full* assignment by sampling the output
    /// map the way the paper counts them: every output endpoint picks a
    /// source subject to the model's constraints, resampling per output
    /// port until the port's choices are valid (ports are independent, so
    /// this is exact per-port rejection sampling, not global retry).
    pub fn full_assignment(&mut self) -> MulticastAssignment {
        let map = self.sample_map(false);
        map.to_assignment(self.model).expect("sampled map is valid")
    }

    /// Sample a random *any*-assignment (each output endpoint may also
    /// stay idle).
    pub fn any_assignment(&mut self) -> MulticastAssignment {
        let map = self.sample_map(true);
        map.to_assignment(self.model).expect("sampled map is valid")
    }

    fn sample_map(&mut self, allow_idle: bool) -> OutputMap {
        // MSDW couples ports globally (all destinations of one source
        // share a wavelength), so it gets a constructive sampler; MSW and
        // MAW decompose per port and use cheap per-port rejection.
        if self.model == MulticastModel::Msdw {
            return self.sample_msdw_map(allow_idle);
        }
        let k = self.net.wavelengths;
        let nk = self.net.endpoints_per_side() as usize;
        let mut map = OutputMap::empty(self.net);
        for p in 0..self.net.ports {
            // Resample this port until its k choices are jointly valid.
            loop {
                let mut choices: Vec<Option<Endpoint>> = Vec::with_capacity(k as usize);
                for w in 0..k {
                    let idle = allow_idle && self.rng.gen_ratio(1, (nk + 1) as u32);
                    let choice = if idle {
                        None
                    } else {
                        Some(match self.model {
                            MulticastModel::Msw => {
                                Endpoint::new(self.rng.gen_range(0..self.net.ports), w)
                            }
                            _ => Endpoint::new(
                                self.rng.gen_range(0..self.net.ports),
                                self.rng.gen_range(0..k),
                            ),
                        })
                    };
                    choices.push(choice);
                }
                // Within-port injectivity.
                let used: Vec<Endpoint> = choices.iter().flatten().copied().collect();
                let mut sorted = used.clone();
                sorted.sort_unstable();
                sorted.dedup();
                if sorted.len() != used.len() {
                    continue;
                }
                for (w, c) in choices.into_iter().enumerate() {
                    map.set(Endpoint::new(p, w as u32), c);
                }
                break;
            }
        }
        debug_assert!(map.is_valid(self.model));
        map
    }

    /// Constructive MSDW sampler: walk the output endpoints; each either
    /// stays idle, joins an existing connection *on its own wavelength*,
    /// or starts a new connection with a fresh source. Valid by
    /// construction (one pass, no rejection), random but not exactly
    /// uniform over the Lemma 3 count — plenty for workload purposes.
    fn sample_msdw_map(&mut self, allow_idle: bool) -> OutputMap {
        let k = self.net.wavelengths;
        let nk = self.net.endpoints_per_side() as usize;
        let mut map = OutputMap::empty(self.net);
        // Per destination wavelength, sources of the open connections.
        let mut groups: Vec<Vec<Endpoint>> = vec![Vec::new(); k as usize];
        let mut used_source = vec![false; nk];
        for out in self.net.endpoints() {
            if allow_idle && self.rng.gen_ratio(1, (nk + 1) as u32) {
                continue;
            }
            let w = out.wavelength.0 as usize;
            // Join an existing group with probability proportional to the
            // group count, else open a new one (if a source is free).
            let join_existing = !groups[w].is_empty()
                && self
                    .rng
                    .gen_ratio(groups[w].len() as u32, (groups[w].len() + 2) as u32);
            if join_existing {
                let src = groups[w][self.rng.gen_range(0..groups[w].len())];
                map.set(out, Some(src));
                continue;
            }
            let free: Vec<usize> = (0..nk).filter(|&i| !used_source[i]).collect();
            match free.as_slice() {
                [] => {
                    // No fresh source left: join if possible, else idle.
                    if let Some(&src) = groups[w].first() {
                        map.set(out, Some(src));
                    }
                }
                choices => {
                    let idx = choices[self.rng.gen_range(0..choices.len())];
                    let src = Endpoint::from_flat_index(idx, k);
                    used_source[idx] = true;
                    groups[w].push(src);
                    map.set(out, Some(src));
                }
            }
        }
        debug_assert!(map.is_valid(MulticastModel::Msdw));
        map
    }

    /// Sample a random legal *next request* against `asg` — a connection
    /// that can be added without endpoint conflicts and that respects the
    /// model. Returns `None` when no free source or destination exists.
    ///
    /// `max_fanout` caps the destination count (0 = no cap).
    pub fn next_request(
        &mut self,
        asg: &MulticastAssignment,
        max_fanout: usize,
    ) -> Option<MulticastConnection> {
        let net = asg.network();
        let mut free_sources: Vec<Endpoint> =
            net.endpoints().filter(|&e| !asg.input_busy(e)).collect();
        if free_sources.is_empty() {
            return None;
        }
        shuffle(&mut free_sources, &mut self.rng);
        let cap = if max_fanout == 0 {
            net.ports as usize
        } else {
            max_fanout
        };
        let want = self.rng.gen_range(1..=cap.min(net.ports as usize));
        // MSDW: candidate group wavelengths, in random preference order —
        // the first with any free endpoint wins (a fixed choice could
        // miss requests that another wavelength still admits).
        let mut wl_prefs: Vec<u32> = (0..net.wavelengths).collect();
        shuffle(&mut wl_prefs, &mut self.rng);

        // A source may have no compatible free destinations (e.g. MSW with
        // its wavelength saturated at the output side) — try every free
        // source before declaring exhaustion.
        for &src in &free_sources {
            let group_wls: Vec<u32> = match asg.model() {
                MulticastModel::Msw => vec![src.wavelength.0],
                MulticastModel::Msdw => wl_prefs.clone(),
                // MAW has no group wavelength; one pass with free choice.
                MulticastModel::Maw => vec![0],
            };
            for &gw in &group_wls {
                let mut ports: Vec<u32> = (0..net.ports).collect();
                shuffle(&mut ports, &mut self.rng);
                let mut dests = Vec::new();
                for &p in &ports {
                    if dests.len() >= want {
                        break;
                    }
                    let wl_order: Vec<u32> = match asg.model() {
                        MulticastModel::Msw | MulticastModel::Msdw => vec![gw],
                        MulticastModel::Maw => {
                            let mut w: Vec<u32> = (0..net.wavelengths).collect();
                            shuffle(&mut w, &mut self.rng);
                            w
                        }
                    };
                    for w in wl_order {
                        let ep = Endpoint::new(p, w);
                        if asg.output_user(ep).is_none() {
                            dests.push(ep);
                            break;
                        }
                    }
                }
                if !dests.is_empty() {
                    return Some(MulticastConnection::new(src, dests).expect("distinct ports"));
                }
            }
        }
        None
    }
}

fn shuffle<T>(v: &mut [T], rng: &mut StdRng) {
    for i in (1..v.len()).rev() {
        v.swap(i, rng.gen_range(0..=i));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_assignments_are_full_and_valid() {
        for model in MulticastModel::ALL {
            let net = NetworkConfig::new(6, 3);
            let mut gen = AssignmentGen::new(net, model, 1);
            for _ in 0..5 {
                let asg = gen.full_assignment();
                assert!(asg.is_full(), "{model}");
                for c in asg.connections() {
                    assert!(model.allows(c));
                }
            }
        }
    }

    #[test]
    fn any_assignments_are_valid_and_vary_in_load() {
        let net = NetworkConfig::new(5, 2);
        let mut gen = AssignmentGen::new(net, MulticastModel::Maw, 3);
        let loads: Vec<usize> = (0..10)
            .map(|_| gen.any_assignment().used_output_endpoints())
            .collect();
        assert!(
            loads.iter().any(|&l| l < 10),
            "some load below full: {loads:?}"
        );
    }

    #[test]
    fn determinism_by_seed() {
        let net = NetworkConfig::new(4, 2);
        let a = AssignmentGen::new(net, MulticastModel::Msw, 99).full_assignment();
        let b = AssignmentGen::new(net, MulticastModel::Msw, 99).full_assignment();
        assert_eq!(a.to_string(), b.to_string());
        let c = AssignmentGen::new(net, MulticastModel::Msw, 100).full_assignment();
        assert_ne!(a.to_string(), c.to_string());
    }

    #[test]
    fn next_request_is_always_addable() {
        for model in MulticastModel::ALL {
            let net = NetworkConfig::new(5, 2);
            let mut gen = AssignmentGen::new(net, model, 17);
            let mut asg = MulticastAssignment::new(net, model);
            let mut added = 0;
            while let Some(req) = gen.next_request(&asg, 0) {
                asg.add(req).expect("generated request must be legal");
                added += 1;
                if added > 200 {
                    panic!("generator never exhausts");
                }
            }
            // Exhaustion means: no free source has any compatible free
            // destination left.
            for src in net.endpoints().filter(|&e| !asg.input_busy(e)) {
                let compatible_free = net.endpoints().any(|d| {
                    asg.output_user(d).is_none()
                        && (model != MulticastModel::Msw || d.wavelength == src.wavelength)
                });
                assert!(!compatible_free, "{model}: generator quit early for {src}");
            }
        }
    }

    #[test]
    fn fanout_cap_respected() {
        let net = NetworkConfig::new(8, 2);
        let mut gen = AssignmentGen::new(net, MulticastModel::Maw, 5);
        let asg = MulticastAssignment::new(net, MulticastModel::Maw);
        for _ in 0..50 {
            let req = gen.next_request(&asg, 2).unwrap();
            assert!(req.fanout() <= 2);
        }
    }
}
