//! Offline shim for the `rand` crate.
//!
//! Implements the subset of `rand` 0.8 this workspace uses: the
//! [`RngCore`] / [`Rng`] / [`SeedableRng`] traits, uniform range sampling
//! over the primitive integer and float types, and a deterministic
//! [`rngs::StdRng`] backed by **xoshiro256++** seeded through
//! **SplitMix64** (both public-domain algorithms by Blackman & Vigna).
//!
//! Streams are *not* bit-compatible with the real `rand` crate, but every
//! generator in this workspace is seeded explicitly, so determinism holds
//! within a build — which is all the tests and experiments rely on.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use core::ops::{Range, RangeInclusive};

/// Low-level uniform bit source.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fill a byte slice with random data.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// Seedable deterministic generators.
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Construct from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Construct from a `u64` (expanded via SplitMix64, like real rand).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64 { state };
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }
}

/// High-level sampling methods, implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from a range (`low..high` or `low..=high`).
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    ///
    /// Panics unless `0 ≤ p ≤ 1`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability out of range: {p}"
        );
        // 53 uniform mantissa bits, exactly like sampling a f64 in [0,1).
        let u = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        u < p
    }

    /// `true` with probability `numerator / denominator`.
    fn gen_ratio(&mut self, numerator: u32, denominator: u32) -> bool {
        assert!(denominator > 0, "gen_ratio denominator must be positive");
        assert!(
            numerator <= denominator,
            "gen_ratio numerator exceeds denominator"
        );
        if numerator == denominator {
            return true;
        }
        self.gen_range(0..denominator) < numerator
    }

    /// A uniformly random value of a primitive type.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types with a canonical "uniform over the whole domain" distribution
/// (the shim's stand-in for `rand::distributions::Standard`).
pub trait Standard: Sized {
    /// Draw a value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Standard for i128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        u128::sample(rng) as i128
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Types uniformly sampleable over a sub-range.
pub trait SampleUniform: Sized {
    /// Uniform sample from `[low, high)`. Panics if `low >= high`.
    fn sample_uniform<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;

    /// Uniform sample from `[low, high]`. Panics if `low > high`.
    fn sample_uniform_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform_uint {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(rng: &mut R, low: $t, high: $t) -> $t {
                assert!(low < high, "gen_range: empty range");
                low + uniform_below(rng, (high - low) as u64) as $t
            }
            fn sample_uniform_inclusive<R: RngCore + ?Sized>(
                rng: &mut R, low: $t, high: $t,
            ) -> $t {
                assert!(low <= high, "gen_range: empty range");
                let span = (high - low) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                low + uniform_below(rng, span + 1) as $t
            }
        }
    )*};
}
impl_sample_uniform_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_uniform_int {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(rng: &mut R, low: $t, high: $t) -> $t {
                assert!(low < high, "gen_range: empty range");
                let span = (high as $u).wrapping_sub(low as $u);
                low.wrapping_add(uniform_below(rng, span as u64) as $t)
            }
            fn sample_uniform_inclusive<R: RngCore + ?Sized>(
                rng: &mut R, low: $t, high: $t,
            ) -> $t {
                assert!(low <= high, "gen_range: empty range");
                let span = (high as $u).wrapping_sub(low as $u) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                low.wrapping_add(uniform_below(rng, span + 1) as $t)
            }
        }
    )*};
}
impl_sample_uniform_int!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

impl SampleUniform for u128 {
    fn sample_uniform<R: RngCore + ?Sized>(rng: &mut R, low: u128, high: u128) -> u128 {
        assert!(low < high, "gen_range: empty range");
        low + uniform_below_u128(rng, high - low)
    }
    fn sample_uniform_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: u128, high: u128) -> u128 {
        assert!(low <= high, "gen_range: empty range");
        let span = high - low;
        if span == u128::MAX {
            return ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
        }
        low + uniform_below_u128(rng, span + 1)
    }
}

impl SampleUniform for i128 {
    fn sample_uniform<R: RngCore + ?Sized>(rng: &mut R, low: i128, high: i128) -> i128 {
        assert!(low < high, "gen_range: empty range");
        let span = (high as u128).wrapping_sub(low as u128);
        low.wrapping_add(uniform_below_u128(rng, span) as i128)
    }
    fn sample_uniform_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: i128, high: i128) -> i128 {
        assert!(low <= high, "gen_range: empty range");
        let span = (high as u128).wrapping_sub(low as u128);
        if span == u128::MAX {
            return (((rng.next_u64() as u128) << 64) | rng.next_u64() as u128) as i128;
        }
        low.wrapping_add(uniform_below_u128(rng, span + 1) as i128)
    }
}

impl SampleUniform for f64 {
    fn sample_uniform<R: RngCore + ?Sized>(rng: &mut R, low: f64, high: f64) -> f64 {
        assert!(low < high, "gen_range: empty range");
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        let v = low + u * (high - low);
        // Floating rounding can land exactly on `high`; clamp back inside.
        if v >= high {
            high - (high - low) * f64::EPSILON
        } else {
            v
        }
    }
    fn sample_uniform_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: f64, high: f64) -> f64 {
        assert!(low <= high, "gen_range: empty range");
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        low + u * (high - low)
    }
}

impl SampleUniform for f32 {
    fn sample_uniform<R: RngCore + ?Sized>(rng: &mut R, low: f32, high: f32) -> f32 {
        f64::sample_uniform(rng, low as f64, high as f64) as f32
    }
    fn sample_uniform_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: f32, high: f32) -> f32 {
        f64::sample_uniform_inclusive(rng, low as f64, high as f64) as f32
    }
}

/// Unbiased uniform integer in `[0, bound)` via Lemire-style rejection.
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    if bound.is_power_of_two() {
        return rng.next_u64() & (bound - 1);
    }
    let threshold = bound.wrapping_neg() % bound;
    loop {
        let x = rng.next_u64();
        let m = (x as u128).wrapping_mul(bound as u128);
        if (m as u64) >= threshold {
            return (m >> 64) as u64;
        }
    }
}

/// Unbiased uniform integer in `[0, bound)` for 128-bit spans: mask to
/// the bound's bit width and reject overshoots (expected < 2 draws).
fn uniform_below_u128<R: RngCore + ?Sized>(rng: &mut R, bound: u128) -> u128 {
    debug_assert!(bound > 0);
    if bound <= u64::MAX as u128 {
        return uniform_below(rng, bound as u64) as u128;
    }
    let bits = 128 - bound.leading_zeros();
    let mask = if bits >= 128 {
        u128::MAX
    } else {
        (1u128 << bits) - 1
    };
    loop {
        let x = (((rng.next_u64() as u128) << 64) | rng.next_u64() as u128) & mask;
        if x < bound {
            return x;
        }
    }
}

/// Range forms accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw one value.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_uniform(rng, self.start, self.end)
    }
}

impl<T: SampleUniform + Copy> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_uniform_inclusive(rng, *self.start(), *self.end())
    }
}

/// The concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng, SplitMix64};

    /// The workspace's standard deterministic RNG: **xoshiro256++**.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: [u8; 32]) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks(8).enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(chunk);
                s[i] = u64::from_le_bytes(b);
            }
            // An all-zero state would be a fixed point; perturb it.
            if s.iter().all(|&w| w == 0) {
                let mut sm = SplitMix64 { state: 0xDEADBEEF };
                for w in s.iter_mut() {
                    *w = sm.next();
                }
            }
            StdRng { s }
        }
    }

    /// Alias: this shim's `SmallRng` is the same xoshiro256++ engine.
    pub type SmallRng = StdRng;
}

/// A non-deterministically seeded [`rngs::StdRng`] (entropy comes from the
/// system clock and a thread-local counter; good enough for benches).
pub fn thread_rng() -> rngs::StdRng {
    use std::time::{SystemTime, UNIX_EPOCH};
    let nanos = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.subsec_nanos() as u64 ^ d.as_secs())
        .unwrap_or(0x1234_5678);
    let tid = std::thread::current().id();
    let mix = format!("{tid:?}")
        .bytes()
        .fold(nanos, |acc, b| acc.rotate_left(8) ^ b as u64);
    rngs::StdRng::seed_from_u64(mix)
}

/// Prelude matching `rand::prelude`.
pub mod prelude {
    pub use super::rngs::{SmallRng, StdRng};
    pub use super::{thread_rng, Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn gen_range_bounds_hold() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(3u32..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(0usize..=5);
            assert!(w <= 5);
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_range_covers_domain() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..10)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all 10 values seen in 1000 draws");
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(3);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
        let heads = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4500..5500).contains(&heads), "p=0.5 gave {heads}/10000");
    }

    #[test]
    fn gen_ratio_matches_probability() {
        let mut rng = StdRng::seed_from_u64(5);
        let hits = (0..10_000).filter(|_| rng.gen_ratio(1, 4)).count();
        assert!((2000..3000).contains(&hits), "p=1/4 gave {hits}/10000");
    }

    #[test]
    fn min_positive_float_range() {
        // The workload generator samples gen_range(f64::MIN_POSITIVE..1.0)
        // and takes a log — must never return 0 or 1.
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
            assert!(u > 0.0 && u < 1.0);
            assert!(u.ln().is_finite());
        }
    }
}
