//! Offline shim for the `serde_json` crate.
//!
//! Renders the serde shim's [`serde::Value`] tree to JSON text and
//! parses it back — [`to_string`] / [`from_str`] with the real crate's
//! signatures. The JSON dialect is standard: UTF-8, `\uXXXX` escapes,
//! integer/float distinction preserved well enough for round-trips
//! (floats print via Rust's shortest-round-trip formatting).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use core::fmt;
use serde::{DeserializeOwned, Serialize, Value};

/// Serialization/parse error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::ValueError> for Error {
    fn from(e: serde::ValueError) -> Self {
        Error(e.0)
    }
}

/// Serialize a value to compact JSON text.
pub fn to_string<T: ?Sized + Serialize>(value: &T) -> Result<String, Error> {
    let v = serde::to_value(value)?;
    let mut out = String::new();
    render(&v, &mut out);
    Ok(out)
}

/// Serialize a value to indented JSON text.
pub fn to_string_pretty<T: ?Sized + Serialize>(value: &T) -> Result<String, Error> {
    let v = serde::to_value(value)?;
    let mut out = String::new();
    render_pretty(&v, &mut out, 0);
    Ok(out)
}

/// Parse JSON text into any deserializable type.
pub fn from_str<T: DeserializeOwned>(s: &str) -> Result<T, Error> {
    let v = parse_value(s)?;
    serde::from_value(v).map_err(Error::from)
}

/// Serialize into the [`Value`] tree (re-exported from the serde shim).
pub fn to_value<T: ?Sized + Serialize>(value: &T) -> Result<Value, Error> {
    serde::to_value(value).map_err(Error::from)
}

/// Deserialize out of a [`Value`] tree.
pub fn from_value<T: DeserializeOwned>(value: Value) -> Result<T, Error> {
    serde::from_value(value).map_err(Error::from)
}

// ---------------------------------------------------------------------
// Rendering
// ---------------------------------------------------------------------

fn render(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::F64(f) => render_f64(*f, out),
        Value::Str(s) => render_string(s, out),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                render(item, out);
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                render_string(k, out);
                out.push(':');
                render(item, out);
            }
            out.push('}');
        }
    }
}

fn render_pretty(v: &Value, out: &mut String, indent: usize) {
    match v {
        Value::Seq(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                push_indent(out, indent + 1);
                render_pretty(item, out, indent + 1);
            }
            out.push('\n');
            push_indent(out, indent);
            out.push(']');
        }
        Value::Map(entries) if !entries.is_empty() => {
            out.push_str("{\n");
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                push_indent(out, indent + 1);
                render_string(k, out);
                out.push_str(": ");
                render_pretty(item, out, indent + 1);
            }
            out.push('\n');
            push_indent(out, indent);
            out.push('}');
        }
        other => render(other, out),
    }
}

fn push_indent(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn render_f64(f: f64, out: &mut String) {
    if f.is_finite() {
        let s = format!("{f}");
        out.push_str(&s);
        // Keep the float/integer distinction visible in the text.
        if !s.contains('.') && !s.contains('e') && !s.contains('E') {
            out.push_str(".0");
        }
    } else {
        // Real serde_json refuses non-finite floats; emitting null keeps
        // telemetry dumps usable.
        out.push_str("null");
    }
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            None => Err(Error::new("unexpected end of input")),
            Some(b'n') => {
                if self.eat_keyword("null") {
                    Ok(Value::Null)
                } else {
                    Err(Error::new(format!("invalid literal at byte {}", self.pos)))
                }
            }
            Some(b't') => {
                if self.eat_keyword("true") {
                    Ok(Value::Bool(true))
                } else {
                    Err(Error::new(format!("invalid literal at byte {}", self.pos)))
                }
            }
            Some(b'f') => {
                if self.eat_keyword("false") {
                    Ok(Value::Bool(false))
                } else {
                    Err(Error::new(format!("invalid literal at byte {}", self.pos)))
                }
            }
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            Some(b) => Err(Error::new(format!(
                "unexpected character `{}` at byte {}",
                b as char, self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                other => {
                    return Err(Error::new(format!(
                        "expected `,` or `]` at byte {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                other => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}` at byte {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::new("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000C}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.hex4()?;
                            // Surrogate pairs.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                if !(self.eat_keyword("\\u")) {
                                    return Err(Error::new("lone high surrogate"));
                                }
                                let lo = self.hex4()?;
                                let combined = 0x10000
                                    + ((cp - 0xD800) << 10)
                                    + (lo
                                        .checked_sub(0xDC00)
                                        .ok_or_else(|| Error::new("invalid low surrogate"))?);
                                char::from_u32(combined)
                                    .ok_or_else(|| Error::new("invalid surrogate pair"))?
                            } else {
                                char::from_u32(cp)
                                    .ok_or_else(|| Error::new("invalid \\u escape"))?
                            };
                            out.push(c);
                            continue;
                        }
                        other => {
                            return Err(Error::new(format!(
                                "invalid escape {:?}",
                                other.map(|c| c as char)
                            )))
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so the
                    // bytes are valid UTF-8).
                    let rest = &self.bytes[self.pos..];
                    let s = core::str::from_utf8(rest).map_err(|_| Error::new("bad utf-8"))?;
                    let c = s.chars().next().expect("nonempty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(Error::new("truncated \\u escape"));
        }
        let hex = core::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| Error::new("bad \\u escape"))?;
        let cp = u32::from_str_radix(hex, 16).map_err(|_| Error::new("bad \\u escape digits"))?;
        self.pos = end;
        Ok(cp)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = core::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("bad number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::F64)
                .map_err(|_| Error::new(format!("invalid number {text:?}")))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::I64)
                .map_err(|_| Error::new(format!("invalid number {text:?}")))
        } else {
            text.parse::<u64>()
                .map(Value::U64)
                .map_err(|_| Error::new(format!("invalid number {text:?}")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_roundtrip() {
        assert_eq!(to_string(&42u32).unwrap(), "42");
        assert_eq!(from_str::<u32>("42").unwrap(), 42);
        assert_eq!(to_string(&-3i64).unwrap(), "-3");
        assert_eq!(from_str::<i64>("-3").unwrap(), -3);
        assert_eq!(to_string(&true).unwrap(), "true");
        assert!(!from_str::<bool>("false").unwrap());
        assert_eq!(to_string("hi\nthere").unwrap(), "\"hi\\nthere\"");
        assert_eq!(from_str::<String>("\"hi\\nthere\"").unwrap(), "hi\nthere");
    }

    #[test]
    fn floats_keep_precision() {
        for f in [0.1, 1.0, 2.5e-7, 123456.789, -0.25, 1e300] {
            let s = to_string(&f).unwrap();
            let back: f64 = from_str(&s).unwrap();
            assert_eq!(back, f, "{s}");
        }
    }

    #[test]
    fn float_integers_stay_floats_in_text() {
        assert_eq!(to_string(&1.0f64).unwrap(), "1.0");
    }

    #[test]
    fn collections_roundtrip() {
        let v = vec![vec![1u32], vec![2, 3]];
        let s = to_string(&v).unwrap();
        assert_eq!(s, "[[1],[2,3]]");
        assert_eq!(from_str::<Vec<Vec<u32>>>(&s).unwrap(), v);
    }

    #[test]
    fn whitespace_tolerated() {
        let v: Vec<u32> = from_str(" [ 1 , 2 ,\n3 ] ").unwrap();
        assert_eq!(v, vec![1, 2, 3]);
    }

    #[test]
    fn unicode_escapes() {
        let s: String = from_str("\"\\u00e9\\u20ac\"").unwrap();
        assert_eq!(s, "é€");
        let s: String = from_str("\"\\ud83d\\ude00\"").unwrap();
        assert_eq!(s, "😀");
    }

    #[test]
    fn errors_are_reported() {
        assert!(from_str::<u32>("[1").is_err());
        assert!(from_str::<u32>("xyz").is_err());
        assert!(from_str::<u32>("1 2").is_err());
        assert!(from_str::<Vec<u32>>("{\"a\":1}").is_err());
    }
}
