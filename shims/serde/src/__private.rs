//! Helpers the derive macro expands to. Not public API.

use crate::{DeserializeOwned, Value, ValueError};

/// Pull a named field out of a struct's entry list and deserialize it.
pub fn field<T: DeserializeOwned>(
    entries: &[(String, Value)],
    name: &str,
) -> Result<T, ValueError> {
    let value = entries
        .iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v.clone())
        .ok_or_else(|| ValueError(format!("missing field `{name}`")))?;
    T::deserialize(value).map_err(|e| ValueError(format!("field `{name}`: {e}")))
}

/// Like [`field`], but a missing key yields `T::default()` — the
/// implementation of the shim's `#[serde(default)]` field attribute.
pub fn field_or_default<T: DeserializeOwned + Default>(
    entries: &[(String, Value)],
    name: &str,
) -> Result<T, ValueError> {
    match entries.iter().find(|(k, _)| k == name) {
        None => Ok(T::default()),
        Some((_, v)) => {
            T::deserialize(v.clone()).map_err(|e| ValueError(format!("field `{name}`: {e}")))
        }
    }
}

/// Deserialize a whole value (newtype structs / newtype variants).
pub fn from_value_de<T: DeserializeOwned>(value: Value) -> Result<T, ValueError> {
    T::deserialize(value)
}

/// A unit variant must have no payload.
pub fn expect_no_payload(payload: &Option<Value>) -> Result<(), ValueError> {
    match payload {
        None => Ok(()),
        Some(Value::Null) => Ok(()),
        Some(v) => Err(ValueError(format!(
            "unexpected payload for unit variant: {}",
            v.kind()
        ))),
    }
}

/// The payload of a newtype variant.
pub fn newtype_payload<T: DeserializeOwned>(payload: Option<Value>) -> Result<T, ValueError> {
    let v = payload.ok_or_else(|| ValueError("missing payload for newtype variant".into()))?;
    T::deserialize(v)
}

/// The payload of a tuple variant or tuple struct: a sequence of
/// exactly `len` elements.
pub fn tuple_payload(payload: Option<Value>, len: usize) -> Result<Vec<Value>, ValueError> {
    let v = payload.ok_or_else(|| ValueError("missing payload for tuple variant".into()))?;
    match v {
        Value::Seq(items) if items.len() == len => Ok(items),
        Value::Seq(items) => Err(ValueError(format!(
            "expected {len} tuple fields, found {}",
            items.len()
        ))),
        other => Err(ValueError(format!(
            "expected sequence payload, found {}",
            other.kind()
        ))),
    }
}

/// The payload of a struct variant: a map body.
pub fn struct_payload(payload: Option<Value>) -> Result<Vec<(String, Value)>, ValueError> {
    let v = payload.ok_or_else(|| ValueError("missing payload for struct variant".into()))?;
    v.into_struct_map("variant")
}

/// Next element of an already-length-checked tuple payload.
pub fn next_elem<T: DeserializeOwned>(it: &mut std::vec::IntoIter<Value>) -> Result<T, ValueError> {
    let v = it
        .next()
        .ok_or_else(|| ValueError("tuple payload exhausted".into()))?;
    T::deserialize(v)
}
