//! Offline shim for the `serde` crate.
//!
//! The build environment cannot reach crates.io, so this crate
//! reimplements the slice of serde's architecture that the workspace
//! uses: the [`Serialize`] / [`Serializer`] / [`Deserialize`] /
//! [`Deserializer`] traits with their real method names and shapes
//! (hand-written impls in `wdm-core` compile unchanged), a derive macro
//! behind the `derive` feature, and a self-describing [`Value`] tree as
//! the single interchange format.
//!
//! Unlike real serde there is no zero-copy visitor machinery: a
//! [`Serializer`] builds a [`Value`], and a [`Deserializer`] surrenders
//! one via [`Deserializer::take_value`]. The companion `serde_json` shim
//! renders and parses that tree.

#![warn(missing_docs)]

use core::fmt;
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

pub mod __private;

/// A self-describing serialized value (the shim's interchange format).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null` / Rust unit.
    Null,
    /// A boolean.
    Bool(bool),
    /// A non-negative integer.
    U64(u64),
    /// A negative integer.
    I64(i64),
    /// A floating-point number.
    F64(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Seq(Vec<Value>),
    /// An ordered string-keyed map (structs, enums, maps).
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Interpret as an externally-tagged enum: a bare string is a unit
    /// variant, a single-entry map is a variant with payload.
    pub fn into_variant(self) -> Result<(String, Option<Value>), ValueError> {
        match self {
            Value::Str(tag) => Ok((tag, None)),
            Value::Map(mut entries) if entries.len() == 1 => {
                let (tag, payload) = entries.pop().expect("len checked");
                Ok((tag, Some(payload)))
            }
            other => Err(ValueError(format!(
                "expected enum (string or single-entry map), found {}",
                other.kind()
            ))),
        }
    }

    /// Interpret as a struct body.
    pub fn into_struct_map(self, name: &str) -> Result<Vec<(String, Value)>, ValueError> {
        match self {
            Value::Map(entries) => Ok(entries),
            other => Err(ValueError(format!(
                "expected map for struct {name}, found {}",
                other.kind()
            ))),
        }
    }

    /// Human-readable kind tag for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::U64(_) => "unsigned integer",
            Value::I64(_) => "signed integer",
            Value::F64(_) => "float",
            Value::Str(_) => "string",
            Value::Seq(_) => "sequence",
            Value::Map(_) => "map",
        }
    }
}

/// The single error type of the shim's data model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ValueError(pub String);

impl fmt::Display for ValueError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for ValueError {}

impl ser::Error for ValueError {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        ValueError(msg.to_string())
    }
}

impl de::Error for ValueError {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        ValueError(msg.to_string())
    }
}

/// A serializable type.
pub trait Serialize {
    /// Feed `self` into the serializer.
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error>;
}

/// Serialization traits and compound builders (mirrors `serde::ser`).
pub mod ser {
    use super::Serialize;
    use core::fmt;

    /// Errors produced while serializing.
    pub trait Error: Sized + std::error::Error {
        /// Build from any displayable message.
        fn custom<T: fmt::Display>(msg: T) -> Self;
    }

    /// Builder for struct bodies.
    pub trait SerializeStruct {
        /// Final output type.
        type Ok;
        /// Error type.
        type Error: Error;
        /// Append one named field.
        fn serialize_field<T: ?Sized + Serialize>(
            &mut self,
            key: &'static str,
            value: &T,
        ) -> Result<(), Self::Error>;
        /// Finish the struct.
        fn end(self) -> Result<Self::Ok, Self::Error>;
    }

    /// Builder for sequences.
    pub trait SerializeSeq {
        /// Final output type.
        type Ok;
        /// Error type.
        type Error: Error;
        /// Append one element.
        fn serialize_element<T: ?Sized + Serialize>(
            &mut self,
            value: &T,
        ) -> Result<(), Self::Error>;
        /// Finish the sequence.
        fn end(self) -> Result<Self::Ok, Self::Error>;
    }

    /// Builder for tuples (same shape as sequences here).
    pub trait SerializeTuple {
        /// Final output type.
        type Ok;
        /// Error type.
        type Error: Error;
        /// Append one element.
        fn serialize_element<T: ?Sized + Serialize>(
            &mut self,
            value: &T,
        ) -> Result<(), Self::Error>;
        /// Finish the tuple.
        fn end(self) -> Result<Self::Ok, Self::Error>;
    }

    /// Builder for tuple structs.
    pub trait SerializeTupleStruct {
        /// Final output type.
        type Ok;
        /// Error type.
        type Error: Error;
        /// Append one field.
        fn serialize_field<T: ?Sized + Serialize>(&mut self, value: &T) -> Result<(), Self::Error>;
        /// Finish.
        fn end(self) -> Result<Self::Ok, Self::Error>;
    }

    /// Builder for tuple enum variants.
    pub trait SerializeTupleVariant {
        /// Final output type.
        type Ok;
        /// Error type.
        type Error: Error;
        /// Append one field.
        fn serialize_field<T: ?Sized + Serialize>(&mut self, value: &T) -> Result<(), Self::Error>;
        /// Finish.
        fn end(self) -> Result<Self::Ok, Self::Error>;
    }

    /// Builder for struct enum variants.
    pub trait SerializeStructVariant {
        /// Final output type.
        type Ok;
        /// Error type.
        type Error: Error;
        /// Append one named field.
        fn serialize_field<T: ?Sized + Serialize>(
            &mut self,
            key: &'static str,
            value: &T,
        ) -> Result<(), Self::Error>;
        /// Finish.
        fn end(self) -> Result<Self::Ok, Self::Error>;
    }

    /// Builder for maps.
    pub trait SerializeMap {
        /// Final output type.
        type Ok;
        /// Error type.
        type Error: Error;
        /// Append one key/value entry.
        fn serialize_entry<K: ?Sized + Serialize, V: ?Sized + Serialize>(
            &mut self,
            key: &K,
            value: &V,
        ) -> Result<(), Self::Error>;
        /// Finish the map.
        fn end(self) -> Result<Self::Ok, Self::Error>;
    }
}

/// Deserialization support (mirrors `serde::de`).
pub mod de {
    use core::fmt;

    /// Errors produced while deserializing.
    pub trait Error: Sized + std::error::Error {
        /// Build from any displayable message.
        fn custom<T: fmt::Display>(msg: T) -> Self;
    }
}

/// A serialization backend.
///
/// Identical method surface to real serde's `Serializer` for everything
/// the workspace's hand-written impls and the derive macro emit.
pub trait Serializer: Sized {
    /// Output of a successful serialization.
    type Ok;
    /// Error type.
    type Error: ser::Error;
    /// Struct builder.
    type SerializeStruct: ser::SerializeStruct<Ok = Self::Ok, Error = Self::Error>;
    /// Sequence builder.
    type SerializeSeq: ser::SerializeSeq<Ok = Self::Ok, Error = Self::Error>;
    /// Tuple builder.
    type SerializeTuple: ser::SerializeTuple<Ok = Self::Ok, Error = Self::Error>;
    /// Tuple-struct builder.
    type SerializeTupleStruct: ser::SerializeTupleStruct<Ok = Self::Ok, Error = Self::Error>;
    /// Tuple-variant builder.
    type SerializeTupleVariant: ser::SerializeTupleVariant<Ok = Self::Ok, Error = Self::Error>;
    /// Struct-variant builder.
    type SerializeStructVariant: ser::SerializeStructVariant<Ok = Self::Ok, Error = Self::Error>;
    /// Map builder.
    type SerializeMap: ser::SerializeMap<Ok = Self::Ok, Error = Self::Error>;

    /// Serialize a `bool`.
    fn serialize_bool(self, v: bool) -> Result<Self::Ok, Self::Error>;
    /// Serialize an `i64` (all signed ints funnel here).
    fn serialize_i64(self, v: i64) -> Result<Self::Ok, Self::Error>;
    /// Serialize a `u64` (all unsigned ints funnel here).
    fn serialize_u64(self, v: u64) -> Result<Self::Ok, Self::Error>;
    /// Serialize an `f64` (both float widths funnel here).
    fn serialize_f64(self, v: f64) -> Result<Self::Ok, Self::Error>;
    /// Serialize a string.
    fn serialize_str(self, v: &str) -> Result<Self::Ok, Self::Error>;
    /// Serialize a unit value.
    fn serialize_unit(self) -> Result<Self::Ok, Self::Error>;
    /// Serialize `None`.
    fn serialize_none(self) -> Result<Self::Ok, Self::Error>;
    /// Serialize `Some(value)`.
    fn serialize_some<T: ?Sized + Serialize>(self, value: &T) -> Result<Self::Ok, Self::Error>;
    /// Serialize a unit struct.
    fn serialize_unit_struct(self, name: &'static str) -> Result<Self::Ok, Self::Error>;
    /// Serialize a unit enum variant.
    fn serialize_unit_variant(
        self,
        name: &'static str,
        variant_index: u32,
        variant: &'static str,
    ) -> Result<Self::Ok, Self::Error>;
    /// Serialize a newtype struct (transparent).
    fn serialize_newtype_struct<T: ?Sized + Serialize>(
        self,
        name: &'static str,
        value: &T,
    ) -> Result<Self::Ok, Self::Error>;
    /// Serialize a newtype enum variant.
    fn serialize_newtype_variant<T: ?Sized + Serialize>(
        self,
        name: &'static str,
        variant_index: u32,
        variant: &'static str,
        value: &T,
    ) -> Result<Self::Ok, Self::Error>;
    /// Begin a sequence.
    fn serialize_seq(self, len: Option<usize>) -> Result<Self::SerializeSeq, Self::Error>;
    /// Begin a tuple.
    fn serialize_tuple(self, len: usize) -> Result<Self::SerializeTuple, Self::Error>;
    /// Begin a tuple struct.
    fn serialize_tuple_struct(
        self,
        name: &'static str,
        len: usize,
    ) -> Result<Self::SerializeTupleStruct, Self::Error>;
    /// Begin a tuple enum variant.
    fn serialize_tuple_variant(
        self,
        name: &'static str,
        variant_index: u32,
        variant: &'static str,
        len: usize,
    ) -> Result<Self::SerializeTupleVariant, Self::Error>;
    /// Begin a struct.
    fn serialize_struct(
        self,
        name: &'static str,
        len: usize,
    ) -> Result<Self::SerializeStruct, Self::Error>;
    /// Begin a struct enum variant.
    fn serialize_struct_variant(
        self,
        name: &'static str,
        variant_index: u32,
        variant: &'static str,
        len: usize,
    ) -> Result<Self::SerializeStructVariant, Self::Error>;
    /// Begin a map.
    fn serialize_map(self, len: Option<usize>) -> Result<Self::SerializeMap, Self::Error>;
}

/// A deserializable type (`'de` kept for signature compatibility; the
/// shim always hands out owned [`Value`]s).
pub trait Deserialize<'de>: Sized {
    /// Pull `Self` out of the deserializer.
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error>;
}

/// Deserializable from any lifetime — what owned-value deserialization
/// requires (mirrors `serde::de::DeserializeOwned`).
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}
impl<T: for<'de> Deserialize<'de>> DeserializeOwned for T {}

/// A deserialization backend: anything that can surrender a [`Value`].
pub trait Deserializer<'de>: Sized {
    /// Error type.
    type Error: de::Error;
    /// Give up the underlying value tree.
    fn take_value(self) -> Result<Value, Self::Error>;
}

impl<'de> Deserializer<'de> for Value {
    type Error = ValueError;
    fn take_value(self) -> Result<Value, ValueError> {
        Ok(self)
    }
}

/// Serialize anything into a [`Value`] tree.
pub fn to_value<T: ?Sized + Serialize>(value: &T) -> Result<Value, ValueError> {
    value.serialize(ValueSerializer)
}

/// Deserialize anything out of a [`Value`] tree.
pub fn from_value<T: DeserializeOwned>(value: Value) -> Result<T, ValueError> {
    T::deserialize(value)
}

// ---------------------------------------------------------------------
// The Value-building serializer.
// ---------------------------------------------------------------------

/// The [`Serializer`] that builds a [`Value`] tree.
pub struct ValueSerializer;

/// Compound builder used for every sequence-like shape.
pub struct SeqBuilder {
    items: Vec<Value>,
    /// `Some(variant)` wraps the finished seq in `{variant: [...]}`.
    variant: Option<&'static str>,
}

/// Compound builder used for every map/struct-like shape.
pub struct MapBuilder {
    entries: Vec<(String, Value)>,
    /// `Some(variant)` wraps the finished map in `{variant: {...}}`.
    variant: Option<&'static str>,
}

impl SeqBuilder {
    fn finish(self) -> Value {
        let seq = Value::Seq(self.items);
        match self.variant {
            Some(v) => Value::Map(vec![(v.to_string(), seq)]),
            None => seq,
        }
    }

    fn push<T: ?Sized + Serialize>(&mut self, value: &T) -> Result<(), ValueError> {
        self.items.push(to_value(value)?);
        Ok(())
    }
}

impl MapBuilder {
    fn finish(self) -> Value {
        let map = Value::Map(self.entries);
        match self.variant {
            Some(v) => Value::Map(vec![(v.to_string(), map)]),
            None => map,
        }
    }

    fn push<T: ?Sized + Serialize>(&mut self, key: &str, value: &T) -> Result<(), ValueError> {
        self.entries.push((key.to_string(), to_value(value)?));
        Ok(())
    }
}

impl ser::SerializeStruct for MapBuilder {
    type Ok = Value;
    type Error = ValueError;
    fn serialize_field<T: ?Sized + Serialize>(
        &mut self,
        key: &'static str,
        value: &T,
    ) -> Result<(), ValueError> {
        self.push(key, value)
    }
    fn end(self) -> Result<Value, ValueError> {
        Ok(self.finish())
    }
}

impl ser::SerializeStructVariant for MapBuilder {
    type Ok = Value;
    type Error = ValueError;
    fn serialize_field<T: ?Sized + Serialize>(
        &mut self,
        key: &'static str,
        value: &T,
    ) -> Result<(), ValueError> {
        self.push(key, value)
    }
    fn end(self) -> Result<Value, ValueError> {
        Ok(self.finish())
    }
}

impl ser::SerializeMap for MapBuilder {
    type Ok = Value;
    type Error = ValueError;
    fn serialize_entry<K: ?Sized + Serialize, V: ?Sized + Serialize>(
        &mut self,
        key: &K,
        value: &V,
    ) -> Result<(), ValueError> {
        let key = match to_value(key)? {
            Value::Str(s) => s,
            Value::U64(n) => n.to_string(),
            Value::I64(n) => n.to_string(),
            Value::Bool(b) => b.to_string(),
            other => {
                return Err(ValueError(format!(
                    "map key must be scalar, found {}",
                    other.kind()
                )))
            }
        };
        self.entries.push((key, to_value(value)?));
        Ok(())
    }
    fn end(self) -> Result<Value, ValueError> {
        Ok(self.finish())
    }
}

impl ser::SerializeSeq for SeqBuilder {
    type Ok = Value;
    type Error = ValueError;
    fn serialize_element<T: ?Sized + Serialize>(&mut self, value: &T) -> Result<(), ValueError> {
        self.push(value)
    }
    fn end(self) -> Result<Value, ValueError> {
        Ok(self.finish())
    }
}

impl ser::SerializeTuple for SeqBuilder {
    type Ok = Value;
    type Error = ValueError;
    fn serialize_element<T: ?Sized + Serialize>(&mut self, value: &T) -> Result<(), ValueError> {
        self.push(value)
    }
    fn end(self) -> Result<Value, ValueError> {
        Ok(self.finish())
    }
}

impl ser::SerializeTupleStruct for SeqBuilder {
    type Ok = Value;
    type Error = ValueError;
    fn serialize_field<T: ?Sized + Serialize>(&mut self, value: &T) -> Result<(), ValueError> {
        self.push(value)
    }
    fn end(self) -> Result<Value, ValueError> {
        Ok(self.finish())
    }
}

impl ser::SerializeTupleVariant for SeqBuilder {
    type Ok = Value;
    type Error = ValueError;
    fn serialize_field<T: ?Sized + Serialize>(&mut self, value: &T) -> Result<(), ValueError> {
        self.push(value)
    }
    fn end(self) -> Result<Value, ValueError> {
        Ok(self.finish())
    }
}

impl Serializer for ValueSerializer {
    type Ok = Value;
    type Error = ValueError;
    type SerializeStruct = MapBuilder;
    type SerializeSeq = SeqBuilder;
    type SerializeTuple = SeqBuilder;
    type SerializeTupleStruct = SeqBuilder;
    type SerializeTupleVariant = SeqBuilder;
    type SerializeStructVariant = MapBuilder;
    type SerializeMap = MapBuilder;

    fn serialize_bool(self, v: bool) -> Result<Value, ValueError> {
        Ok(Value::Bool(v))
    }
    fn serialize_i64(self, v: i64) -> Result<Value, ValueError> {
        if v >= 0 {
            Ok(Value::U64(v as u64))
        } else {
            Ok(Value::I64(v))
        }
    }
    fn serialize_u64(self, v: u64) -> Result<Value, ValueError> {
        Ok(Value::U64(v))
    }
    fn serialize_f64(self, v: f64) -> Result<Value, ValueError> {
        Ok(Value::F64(v))
    }
    fn serialize_str(self, v: &str) -> Result<Value, ValueError> {
        Ok(Value::Str(v.to_string()))
    }
    fn serialize_unit(self) -> Result<Value, ValueError> {
        Ok(Value::Null)
    }
    fn serialize_none(self) -> Result<Value, ValueError> {
        Ok(Value::Null)
    }
    fn serialize_some<T: ?Sized + Serialize>(self, value: &T) -> Result<Value, ValueError> {
        to_value(value)
    }
    fn serialize_unit_struct(self, _name: &'static str) -> Result<Value, ValueError> {
        Ok(Value::Null)
    }
    fn serialize_unit_variant(
        self,
        _name: &'static str,
        _variant_index: u32,
        variant: &'static str,
    ) -> Result<Value, ValueError> {
        Ok(Value::Str(variant.to_string()))
    }
    fn serialize_newtype_struct<T: ?Sized + Serialize>(
        self,
        _name: &'static str,
        value: &T,
    ) -> Result<Value, ValueError> {
        to_value(value)
    }
    fn serialize_newtype_variant<T: ?Sized + Serialize>(
        self,
        _name: &'static str,
        _variant_index: u32,
        variant: &'static str,
        value: &T,
    ) -> Result<Value, ValueError> {
        Ok(Value::Map(vec![(variant.to_string(), to_value(value)?)]))
    }
    fn serialize_seq(self, len: Option<usize>) -> Result<SeqBuilder, ValueError> {
        Ok(SeqBuilder {
            items: Vec::with_capacity(len.unwrap_or(0)),
            variant: None,
        })
    }
    fn serialize_tuple(self, len: usize) -> Result<SeqBuilder, ValueError> {
        Ok(SeqBuilder {
            items: Vec::with_capacity(len),
            variant: None,
        })
    }
    fn serialize_tuple_struct(
        self,
        _name: &'static str,
        len: usize,
    ) -> Result<SeqBuilder, ValueError> {
        Ok(SeqBuilder {
            items: Vec::with_capacity(len),
            variant: None,
        })
    }
    fn serialize_tuple_variant(
        self,
        _name: &'static str,
        _variant_index: u32,
        variant: &'static str,
        len: usize,
    ) -> Result<SeqBuilder, ValueError> {
        Ok(SeqBuilder {
            items: Vec::with_capacity(len),
            variant: Some(variant),
        })
    }
    fn serialize_struct(self, _name: &'static str, len: usize) -> Result<MapBuilder, ValueError> {
        Ok(MapBuilder {
            entries: Vec::with_capacity(len),
            variant: None,
        })
    }
    fn serialize_struct_variant(
        self,
        _name: &'static str,
        _variant_index: u32,
        variant: &'static str,
        len: usize,
    ) -> Result<MapBuilder, ValueError> {
        Ok(MapBuilder {
            entries: Vec::with_capacity(len),
            variant: Some(variant),
        })
    }
    fn serialize_map(self, len: Option<usize>) -> Result<MapBuilder, ValueError> {
        Ok(MapBuilder {
            entries: Vec::with_capacity(len.unwrap_or(0)),
            variant: None,
        })
    }
}

// ---------------------------------------------------------------------
// Serialize impls for std types.
// ---------------------------------------------------------------------

macro_rules! impl_serialize_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
                s.serialize_u64(*self as u64)
            }
        }
    )*};
}
impl_serialize_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_serialize_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
                s.serialize_i64(*self as i64)
            }
        }
    )*};
}
impl_serialize_int!(i8, i16, i32, i64, isize);

impl Serialize for u128 {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        if let Ok(v) = u64::try_from(*self) {
            s.serialize_u64(v)
        } else {
            s.serialize_str(&self.to_string())
        }
    }
}

impl Serialize for f64 {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_f64(*self)
    }
}

impl Serialize for f32 {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_f64(*self as f64)
    }
}

impl Serialize for bool {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_bool(*self)
    }
}

impl Serialize for str {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_str(self)
    }
}

impl Serialize for String {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_str(self)
    }
}

impl Serialize for char {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_str(&self.to_string())
    }
}

impl Serialize for () {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_unit()
    }
}

impl<T: ?Sized + Serialize> Serialize for &T {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(s)
    }
}

impl<T: ?Sized + Serialize> Serialize for Box<T> {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(s)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        match self {
            Some(v) => s.serialize_some(v),
            None => s.serialize_none(),
        }
    }
}

fn serialize_iter<'a, S, T, I>(s: S, len: usize, iter: I) -> Result<S::Ok, S::Error>
where
    S: Serializer,
    T: Serialize + 'a,
    I: Iterator<Item = &'a T>,
{
    use ser::SerializeSeq as _;
    let mut seq = s.serialize_seq(Some(len))?;
    for item in iter {
        seq.serialize_element(item)?;
    }
    seq.end()
}

impl<T: Serialize> Serialize for [T] {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        serialize_iter(s, self.len(), self.iter())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        serialize_iter(s, self.len(), self.iter())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        serialize_iter(s, N, self.iter())
    }
}

impl<T: Serialize> Serialize for BTreeSet<T> {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        serialize_iter(s, self.len(), self.iter())
    }
}

impl<T: Serialize> Serialize for HashSet<T> {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        serialize_iter(s, self.len(), self.iter())
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        use ser::SerializeMap as _;
        let mut map = s.serialize_map(Some(self.len()))?;
        for (k, v) in self {
            map.serialize_entry(k, v)?;
        }
        map.end()
    }
}

impl<K: Serialize, V: Serialize> Serialize for HashMap<K, V> {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        use ser::SerializeMap as _;
        let mut map = s.serialize_map(Some(self.len()))?;
        for (k, v) in self {
            map.serialize_entry(k, v)?;
        }
        map.end()
    }
}

macro_rules! impl_serialize_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
                use ser::SerializeTuple as _;
                let mut t = s.serialize_tuple(0 $(+ { let _ = stringify!($name); 1 })+)?;
                $(t.serialize_element(&self.$idx)?;)+
                t.end()
            }
        }
    )*};
}
impl_serialize_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

// ---------------------------------------------------------------------
// Deserialize impls for std types.
// ---------------------------------------------------------------------

fn wrong_kind<E: de::Error>(expected: &str, v: &Value) -> E {
    E::custom(format!("expected {expected}, found {}", v.kind()))
}

macro_rules! impl_deserialize_uint {
    ($($t:ty),*) => {$(
        impl<'de> Deserialize<'de> for $t {
            fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
                let v = d.take_value()?;
                let n = match v {
                    Value::U64(n) => n,
                    Value::I64(n) if n >= 0 => n as u64,
                    Value::F64(f) if f >= 0.0 && f.fract() == 0.0 => f as u64,
                    ref other => return Err(wrong_kind("unsigned integer", other)),
                };
                <$t>::try_from(n).map_err(|_| {
                    de::Error::custom(format!("{n} out of range for {}", stringify!($t)))
                })
            }
        }
    )*};
}
impl_deserialize_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_deserialize_int {
    ($($t:ty),*) => {$(
        impl<'de> Deserialize<'de> for $t {
            fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
                let v = d.take_value()?;
                let n: i64 = match v {
                    Value::I64(n) => n,
                    Value::U64(n) => i64::try_from(n).map_err(|_| {
                        <D::Error as de::Error>::custom(format!("{n} overflows i64"))
                    })?,
                    Value::F64(f) if f.fract() == 0.0 => f as i64,
                    ref other => return Err(wrong_kind("integer", other)),
                };
                <$t>::try_from(n).map_err(|_| {
                    de::Error::custom(format!("{n} out of range for {}", stringify!($t)))
                })
            }
        }
    )*};
}
impl_deserialize_int!(i8, i16, i32, i64, isize);

impl<'de> Deserialize<'de> for u128 {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        let v = d.take_value()?;
        match v {
            Value::U64(n) => Ok(n as u128),
            Value::Str(s) => s
                .parse()
                .map_err(|_| de::Error::custom(format!("invalid u128 string: {s:?}"))),
            ref other => Err(wrong_kind("u128", other)),
        }
    }
}

impl<'de> Deserialize<'de> for f64 {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        let v = d.take_value()?;
        match v {
            Value::F64(f) => Ok(f),
            Value::U64(n) => Ok(n as f64),
            Value::I64(n) => Ok(n as f64),
            Value::Null => Ok(f64::NAN),
            ref other => Err(wrong_kind("float", other)),
        }
    }
}

impl<'de> Deserialize<'de> for f32 {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        f64::deserialize(d).map(|f| f as f32)
    }
}

impl<'de> Deserialize<'de> for bool {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        let v = d.take_value()?;
        match v {
            Value::Bool(b) => Ok(b),
            ref other => Err(wrong_kind("bool", other)),
        }
    }
}

impl<'de> Deserialize<'de> for String {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        let v = d.take_value()?;
        match v {
            Value::Str(s) => Ok(s),
            ref other => Err(wrong_kind("string", other)),
        }
    }
}

impl<'de> Deserialize<'de> for char {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        let v = d.take_value()?;
        match v {
            Value::Str(ref s) if s.chars().count() == 1 => Ok(s.chars().next().expect("len 1")),
            ref other => Err(wrong_kind("single-char string", other)),
        }
    }
}

impl<'de> Deserialize<'de> for () {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        let v = d.take_value()?;
        match v {
            Value::Null => Ok(()),
            ref other => Err(wrong_kind("null", other)),
        }
    }
}

impl<'de, T: DeserializeOwned> Deserialize<'de> for Option<T> {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        let v = d.take_value()?;
        match v {
            Value::Null => Ok(None),
            other => T::deserialize(other).map(Some).map_err(de::Error::custom),
        }
    }
}

impl<'de, T: DeserializeOwned> Deserialize<'de> for Vec<T> {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        let v = d.take_value()?;
        match v {
            Value::Seq(items) => items
                .into_iter()
                .map(|item| T::deserialize(item).map_err(de::Error::custom))
                .collect(),
            ref other => Err(wrong_kind("sequence", other)),
        }
    }
}

impl<'de, T: DeserializeOwned + Ord> Deserialize<'de> for BTreeSet<T> {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        Vec::<T>::deserialize(d).map(|v| v.into_iter().collect())
    }
}

impl<'de, T: DeserializeOwned + std::hash::Hash + Eq> Deserialize<'de> for HashSet<T> {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        Vec::<T>::deserialize(d).map(|v| v.into_iter().collect())
    }
}

/// Re-parse a map key that was stringified on the way out (numeric map
/// keys arrive as strings).
fn key_from_string<K: DeserializeOwned>(key: String) -> Result<K, ValueError> {
    if let Ok(k) = K::deserialize(Value::Str(key.clone())) {
        return Ok(k);
    }
    if let Ok(n) = key.parse::<u64>() {
        if let Ok(k) = K::deserialize(Value::U64(n)) {
            return Ok(k);
        }
    }
    if let Ok(n) = key.parse::<i64>() {
        if let Ok(k) = K::deserialize(Value::I64(n)) {
            return Ok(k);
        }
    }
    if let Ok(b) = key.parse::<bool>() {
        if let Ok(k) = K::deserialize(Value::Bool(b)) {
            return Ok(k);
        }
    }
    Err(ValueError(format!(
        "cannot reconstruct map key from {key:?}"
    )))
}

impl<'de, K: DeserializeOwned + Ord, V: DeserializeOwned> Deserialize<'de> for BTreeMap<K, V> {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        let v = d.take_value()?;
        match v {
            Value::Map(entries) => entries
                .into_iter()
                .map(|(k, v)| {
                    let key = key_from_string::<K>(k).map_err(de::Error::custom)?;
                    let value = V::deserialize(v).map_err(de::Error::custom)?;
                    Ok((key, value))
                })
                .collect(),
            ref other => Err(wrong_kind("map", other)),
        }
    }
}

impl<'de, K: DeserializeOwned + std::hash::Hash + Eq, V: DeserializeOwned> Deserialize<'de>
    for HashMap<K, V>
{
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        let v = d.take_value()?;
        match v {
            Value::Map(entries) => entries
                .into_iter()
                .map(|(k, v)| {
                    let key = key_from_string::<K>(k).map_err(de::Error::custom)?;
                    let value = V::deserialize(v).map_err(de::Error::custom)?;
                    Ok((key, value))
                })
                .collect(),
            ref other => Err(wrong_kind("map", other)),
        }
    }
}

macro_rules! impl_deserialize_tuple {
    ($(($($name:ident),+; $len:expr))*) => {$(
        impl<'de, $($name: DeserializeOwned),+> Deserialize<'de> for ($($name,)+) {
            fn deserialize<__D: Deserializer<'de>>(d: __D) -> Result<Self, __D::Error> {
                let v = d.take_value()?;
                let items = match v {
                    Value::Seq(items) if items.len() == $len => items,
                    Value::Seq(ref items) => {
                        return Err(de::Error::custom(format!(
                            "expected tuple of {}, found {} elements", $len, items.len()
                        )))
                    }
                    ref other => return Err(wrong_kind("sequence", other)),
                };
                let mut it = items.into_iter();
                Ok(($(
                    $name::deserialize(it.next().expect("length checked"))
                        .map_err(|e| de::Error::custom(e))?,
                )+))
            }
        }
    )*};
}
impl_deserialize_tuple! {
    (A; 1)
    (A, B; 2)
    (A, B, C; 3)
    (A, B, C, D; 4)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(to_value(&42u32).unwrap(), Value::U64(42));
        assert_eq!(from_value::<u32>(Value::U64(42)).unwrap(), 42);
        assert_eq!(from_value::<i32>(Value::I64(-5)).unwrap(), -5);
        assert_eq!(to_value(&-5i32).unwrap(), Value::I64(-5));
        assert_eq!(from_value::<f64>(Value::U64(3)).unwrap(), 3.0);
        assert_eq!(from_value::<String>(Value::Str("hi".into())).unwrap(), "hi");
    }

    #[test]
    fn collections_roundtrip() {
        let v = vec![1u32, 2, 3];
        let val = to_value(&v).unwrap();
        assert_eq!(from_value::<Vec<u32>>(val).unwrap(), v);

        let mut m = BTreeMap::new();
        m.insert(3u32, "x".to_string());
        m.insert(7, "y".to_string());
        let val = to_value(&m).unwrap();
        assert_eq!(from_value::<BTreeMap<u32, String>>(val).unwrap(), m);
    }

    #[test]
    fn option_roundtrip() {
        assert_eq!(to_value(&Option::<u8>::None).unwrap(), Value::Null);
        assert_eq!(from_value::<Option<u8>>(Value::Null).unwrap(), None);
        assert_eq!(from_value::<Option<u8>>(Value::U64(3)).unwrap(), Some(3));
    }

    #[test]
    fn out_of_range_is_an_error() {
        assert!(from_value::<u8>(Value::U64(300)).is_err());
        assert!(from_value::<u32>(Value::I64(-1)).is_err());
    }
}
