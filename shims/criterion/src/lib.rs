//! Offline shim for the `criterion` crate.
//!
//! Supports the benchmark surface this workspace uses:
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`] with
//! `sample_size` / `bench_with_input` / `finish`, [`BenchmarkId`],
//! [`black_box`], and the [`criterion_group!`] / [`criterion_main!`]
//! macros.
//!
//! Measurement is deliberately simple: per benchmark it calibrates an
//! iteration count to a target wall-clock window, then reports the mean
//! time per iteration over `sample_size` samples (median of samples for
//! the headline number). Like the real crate, running without `--bench`
//! on the command line (as `cargo test` does) executes every benchmark
//! body exactly once as a smoke test instead of timing it.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How a run was invoked.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Mode {
    /// `cargo bench`: calibrate and measure.
    Measure,
    /// `cargo test` (no `--bench` flag): run each body once.
    Smoke,
}

/// Top-level benchmark driver, one per binary.
pub struct Criterion {
    mode: Mode,
    filter: Option<String>,
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            mode: Mode::Measure,
            filter: None,
            sample_size: 20,
        }
    }
}

impl Criterion {
    /// Build from the process command line (cargo passes `--bench` for
    /// `cargo bench` and nothing for `cargo test`; a bare non-flag
    /// argument filters benchmarks by substring).
    pub fn from_args() -> Self {
        let mut mode = Mode::Smoke;
        let mut filter = None;
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--bench" => mode = Mode::Measure,
                "--test" => mode = Mode::Smoke,
                a if !a.starts_with('-') => filter = Some(a.to_string()),
                _ => {}
            }
        }
        Criterion {
            mode,
            filter,
            sample_size: 20,
        }
    }

    fn selected(&self, name: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| name.contains(f))
    }

    /// Benchmark a single closure under `name`.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, self.mode, self.sample_size, f);
        self
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            c: self,
            name: name.to_string(),
            sample_size: None,
        }
    }
}

/// A named cluster of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    c: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl<'a> BenchmarkGroup<'a> {
    /// Set the number of timing samples per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    fn effective_samples(&self) -> usize {
        self.sample_size.unwrap_or(self.c.sample_size)
    }

    /// Benchmark `f`, passing it `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let name = format!("{}/{}", self.name, id.0);
        let samples = self.effective_samples();
        if self.c.selected(&name) {
            run_one(&name, self.c.mode, samples, |b| f(b, input));
        }
        self
    }

    /// Benchmark a closure with no external input.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = format!("{}/{}", self.name, id.into().0);
        let samples = self.effective_samples();
        if self.c.selected(&name) {
            run_one(&name, self.c.mode, samples, f);
        }
        self
    }

    /// End the group. (No cross-benchmark reporting in the shim.)
    pub fn finish(self) {}
}

/// Identifies one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId(format!("{function_name}/{parameter}"))
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId(format!("{parameter}"))
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId(s.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId(s)
    }
}

/// Passed to benchmark closures; call [`Bencher::iter`] with the body.
pub struct Bencher {
    mode: Mode,
    iters_hint: u64,
    /// Mean nanoseconds per iteration for the sample just run.
    last_ns_per_iter: Option<f64>,
}

impl Bencher {
    /// Time `body`, running it enough times for a stable reading.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut body: F) {
        match self.mode {
            Mode::Smoke => {
                black_box(body());
                self.last_ns_per_iter = None;
            }
            Mode::Measure => {
                let iters = self.iters_hint.max(1);
                let start = Instant::now();
                for _ in 0..iters {
                    black_box(body());
                }
                let elapsed = start.elapsed();
                self.last_ns_per_iter = Some(elapsed.as_nanos() as f64 / iters as f64);
            }
        }
    }
}

fn run_one<F>(name: &str, mode: Mode, samples: usize, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    if mode == Mode::Smoke {
        let mut b = Bencher {
            mode,
            iters_hint: 1,
            last_ns_per_iter: None,
        };
        f(&mut b);
        println!("test {name} ... ok (smoke)");
        return;
    }

    // Calibrate: grow the iteration count until one sample takes long
    // enough to swamp timer resolution.
    let target = Duration::from_millis(20);
    let mut iters: u64 = 1;
    loop {
        let mut b = Bencher {
            mode,
            iters_hint: iters,
            last_ns_per_iter: None,
        };
        let start = Instant::now();
        f(&mut b);
        let took = start.elapsed();
        if took >= target || iters >= 1 << 24 {
            break;
        }
        let grow = (target.as_nanos() as u64 / took.as_nanos().max(1) as u64).clamp(2, 16);
        iters = iters.saturating_mul(grow);
    }

    let mut readings: Vec<f64> = Vec::with_capacity(samples);
    for _ in 0..samples.max(1) {
        let mut b = Bencher {
            mode,
            iters_hint: iters,
            last_ns_per_iter: None,
        };
        f(&mut b);
        if let Some(ns) = b.last_ns_per_iter {
            readings.push(ns);
        }
    }
    readings.sort_by(|a, b| a.partial_cmp(b).expect("timings are finite"));
    if readings.is_empty() {
        println!("bench {name:<50} (no b.iter() call)");
        return;
    }
    let median = readings[readings.len() / 2];
    let best = readings[0];
    let worst = readings[readings.len() - 1];
    println!(
        "bench {name:<50} {:>12} /iter  [{} .. {}]  ({} samples x {} iters)",
        fmt_ns(median),
        fmt_ns(best),
        fmt_ns(worst),
        readings.len(),
        iters,
    );
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} us", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Collect benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Entry point for a `harness = false` bench binary.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        c.bench_function("shim/add", |b| b.iter(|| black_box(2u64) + black_box(3u64)));
        let mut g = c.benchmark_group("shim/group");
        g.sample_size(10);
        g.bench_with_input(BenchmarkId::new("double", 21), &21u64, |b, &x| {
            b.iter(|| x * 2)
        });
        g.bench_with_input(BenchmarkId::from_parameter(7), &7u64, |b, &x| {
            b.iter(|| x + 1)
        });
        g.finish();
    }

    #[test]
    fn smoke_mode_runs_each_body_once() {
        let mut c = Criterion {
            mode: Mode::Smoke,
            filter: None,
            sample_size: 20,
        };
        sample_bench(&mut c);
    }

    #[test]
    fn measure_mode_produces_timings() {
        let mut c = Criterion {
            mode: Mode::Measure,
            filter: None,
            sample_size: 3,
        };
        c.bench_function("shim/tiny", |b| b.iter(|| black_box(1u32).wrapping_add(1)));
    }

    #[test]
    fn filter_skips_unselected() {
        let mut c = Criterion {
            mode: Mode::Measure,
            filter: Some("nomatch".into()),
            sample_size: 3,
        };
        let mut g = c.benchmark_group("other");
        // Body would spin forever if not filtered out; quick closure is fine.
        g.bench_with_input(BenchmarkId::from_parameter(1), &1u32, |b, &x| b.iter(|| x));
        g.finish();
    }

    #[test]
    fn benchmark_id_forms() {
        assert_eq!(BenchmarkId::new("f", "p").0, "f/p");
        assert_eq!(BenchmarkId::from_parameter(42).0, "42");
    }
}
