//! Clonable MPMC channels with crossbeam's API shape.
//!
//! Built on a `Mutex<VecDeque>` plus two condvars (one for consumers,
//! one for producers of a bounded channel). Sender and receiver counts
//! are tracked so the channel reports disconnection exactly like
//! crossbeam: `recv` fails once all senders are gone *and* the queue is
//! drained; `send` fails once all receivers are gone.

use std::collections::VecDeque;
use std::fmt;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

struct State<T> {
    queue: VecDeque<T>,
    senders: usize,
    receivers: usize,
}

struct Shared<T> {
    state: Mutex<State<T>>,
    /// Capacity bound; `None` = unbounded.
    cap: Option<usize>,
    /// Signalled when an item arrives or the last sender leaves.
    not_empty: Condvar,
    /// Signalled when space frees up or the last receiver leaves.
    not_full: Condvar,
}

/// Sending half; clonable.
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

/// Receiving half; clonable (multi-consumer).
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

/// Error returned by [`Sender::send`] when all receivers are gone; the
/// unsent value is returned inside.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SendError<T>(pub T);

impl<T> fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sending on a disconnected channel")
    }
}

impl<T: fmt::Debug> std::error::Error for SendError<T> {}

/// Error returned by [`Receiver::recv`] when the channel is empty and
/// all senders are gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "receiving on an empty, disconnected channel")
    }
}

impl std::error::Error for RecvError {}

/// Error returned by [`Receiver::try_recv`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    /// Channel is currently empty but senders remain.
    Empty,
    /// Channel is empty and all senders are gone.
    Disconnected,
}

impl fmt::Display for TryRecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TryRecvError::Empty => write!(f, "channel empty"),
            TryRecvError::Disconnected => write!(f, "channel disconnected"),
        }
    }
}

impl std::error::Error for TryRecvError {}

/// Error returned by [`Receiver::recv_timeout`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvTimeoutError {
    /// Nothing arrived within the timeout.
    Timeout,
    /// Channel is empty and all senders are gone.
    Disconnected,
}

impl fmt::Display for RecvTimeoutError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecvTimeoutError::Timeout => write!(f, "receive timed out"),
            RecvTimeoutError::Disconnected => write!(f, "channel disconnected"),
        }
    }
}

impl std::error::Error for RecvTimeoutError {}

/// Create an unbounded channel.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    with_cap(None)
}

/// Create a bounded channel (capacity 0 is rounded up to 1: this shim
/// has no rendezvous mode).
pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    with_cap(Some(cap.max(1)))
}

fn with_cap<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        state: Mutex::new(State {
            queue: VecDeque::new(),
            senders: 1,
            receivers: 1,
        }),
        cap,
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
    });
    (
        Sender {
            shared: shared.clone(),
        },
        Receiver { shared },
    )
}

impl<T> Sender<T> {
    /// Send, blocking while a bounded channel is full. Fails only when
    /// every receiver has been dropped.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        let mut st = self.shared.state.lock().unwrap();
        loop {
            if st.receivers == 0 {
                return Err(SendError(value));
            }
            match self.shared.cap {
                Some(cap) if st.queue.len() >= cap => {
                    st = self.shared.not_full.wait(st).unwrap();
                }
                _ => break,
            }
        }
        st.queue.push_back(value);
        drop(st);
        self.shared.not_empty.notify_one();
        Ok(())
    }

    /// Number of queued items (racy snapshot).
    pub fn len(&self) -> usize {
        self.shared.state.lock().unwrap().queue.len()
    }

    /// `true` iff no items are queued (racy snapshot).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.shared.state.lock().unwrap().senders += 1;
        Sender {
            shared: self.shared.clone(),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut st = self.shared.state.lock().unwrap();
        st.senders -= 1;
        if st.senders == 0 {
            drop(st);
            self.shared.not_empty.notify_all();
        }
    }
}

impl<T> Receiver<T> {
    /// Receive, blocking until an item arrives or all senders are gone.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut st = self.shared.state.lock().unwrap();
        loop {
            if let Some(v) = st.queue.pop_front() {
                drop(st);
                self.shared.not_full.notify_one();
                return Ok(v);
            }
            if st.senders == 0 {
                return Err(RecvError);
            }
            st = self.shared.not_empty.wait(st).unwrap();
        }
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut st = self.shared.state.lock().unwrap();
        if let Some(v) = st.queue.pop_front() {
            drop(st);
            self.shared.not_full.notify_one();
            return Ok(v);
        }
        if st.senders == 0 {
            Err(TryRecvError::Disconnected)
        } else {
            Err(TryRecvError::Empty)
        }
    }

    /// Receive with a deadline relative to now.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        let deadline = Instant::now() + timeout;
        let mut st = self.shared.state.lock().unwrap();
        loop {
            if let Some(v) = st.queue.pop_front() {
                drop(st);
                self.shared.not_full.notify_one();
                return Ok(v);
            }
            if st.senders == 0 {
                return Err(RecvTimeoutError::Disconnected);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(RecvTimeoutError::Timeout);
            }
            let (guard, _timed_out) = self
                .shared
                .not_empty
                .wait_timeout(st, deadline - now)
                .unwrap();
            st = guard;
        }
    }

    /// Blocking iterator: yields until the channel disconnects.
    pub fn iter(&self) -> Iter<'_, T> {
        Iter { receiver: self }
    }

    /// Number of queued items (racy snapshot).
    pub fn len(&self) -> usize {
        self.shared.state.lock().unwrap().queue.len()
    }

    /// `true` iff no items are queued (racy snapshot).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.shared.state.lock().unwrap().receivers += 1;
        Receiver {
            shared: self.shared.clone(),
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut st = self.shared.state.lock().unwrap();
        st.receivers -= 1;
        if st.receivers == 0 {
            drop(st);
            self.shared.not_full.notify_all();
        }
    }
}

/// Blocking iterator over received items.
pub struct Iter<'a, T> {
    receiver: &'a Receiver<T>,
}

impl<T> Iterator for Iter<'_, T> {
    type Item = T;
    fn next(&mut self) -> Option<T> {
        self.receiver.recv().ok()
    }
}

impl<'a, T> IntoIterator for &'a Receiver<T> {
    type Item = T;
    type IntoIter = Iter<'a, T>;
    fn into_iter(self) -> Iter<'a, T> {
        self.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn fifo_single_thread() {
        let (tx, rx) = unbounded();
        for i in 0..10 {
            tx.send(i).unwrap();
        }
        let got: Vec<i32> = (0..10).map(|_| rx.recv().unwrap()).collect();
        assert_eq!(got, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn disconnect_when_senders_drop() {
        let (tx, rx) = unbounded::<u8>();
        tx.send(1).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Err(RecvError));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn send_fails_without_receivers() {
        let (tx, rx) = unbounded::<u8>();
        drop(rx);
        assert_eq!(tx.send(9), Err(SendError(9)));
    }

    #[test]
    fn multi_consumer_partitions_items() {
        let (tx, rx) = unbounded();
        let rx2 = rx.clone();
        let n = 1000;
        let h1 = thread::spawn(move || rx.iter().count());
        let h2 = thread::spawn(move || rx2.iter().count());
        for i in 0..n {
            tx.send(i).unwrap();
        }
        drop(tx);
        let total = h1.join().unwrap() + h2.join().unwrap();
        assert_eq!(total, n);
    }

    #[test]
    fn bounded_applies_backpressure() {
        let (tx, rx) = bounded(4);
        let producer = thread::spawn(move || {
            for i in 0..100 {
                tx.send(i).unwrap();
            }
        });
        let mut got = Vec::new();
        while let Ok(v) = rx.recv() {
            got.push(v);
        }
        producer.join().unwrap();
        assert_eq!(got, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn recv_timeout_times_out() {
        let (tx, rx) = unbounded::<u8>();
        let r = rx.recv_timeout(Duration::from_millis(10));
        assert_eq!(r, Err(RecvTimeoutError::Timeout));
        tx.send(3).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Ok(3));
    }
}
