//! Offline shim for the `crossbeam` crate.
//!
//! Provides the two pieces this workspace uses:
//!
//! * [`scope`] — crossbeam-style scoped threads (`spawn` closures receive
//!   the scope, the result is a `thread::Result`), implemented on
//!   `std::thread::scope`;
//! * [`channel`] — clonable MPMC channels (`unbounded` / `bounded`) built
//!   from a mutex-guarded ring with condvars. Throughput is far below the
//!   real lock-free crossbeam, but semantics (multi-consumer,
//!   disconnect-on-last-drop, timeouts) match.

#![warn(missing_docs)]

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::thread as std_thread;

pub mod channel;

/// Scoped threads under crossbeam's canonical `crossbeam::thread` path.
pub mod thread {
    pub use super::{scope, Scope, ScopedJoinHandle};
}

/// A scope handle: spawn threads that may borrow from the enclosing
/// stack frame.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std_thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawn a scoped thread. The closure receives the scope itself (so
    /// it can spawn siblings), mirroring crossbeam's API.
    pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let inner = self.inner;
        ScopedJoinHandle {
            inner: inner.spawn(move || f(&Scope { inner })),
        }
    }
}

/// Handle to a scoped thread.
pub struct ScopedJoinHandle<'scope, T> {
    inner: std_thread::ScopedJoinHandle<'scope, T>,
}

impl<T> ScopedJoinHandle<'_, T> {
    /// Wait for the thread; `Err` carries the panic payload.
    pub fn join(self) -> std_thread::Result<T> {
        self.inner.join()
    }
}

/// Create a scope for spawning borrowing threads.
///
/// Returns `Err` (with the panic payload) if the closure or any
/// unjoined spawned thread panicked — crossbeam's contract — instead of
/// unwinding like `std::thread::scope`.
pub fn scope<'env, F, R>(f: F) -> std_thread::Result<R>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    catch_unwind(AssertUnwindSafe(|| {
        std_thread::scope(|s| f(&Scope { inner: s }))
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scoped_threads_borrow_stack_data() {
        let data = [1u64, 2, 3, 4];
        let sum = AtomicUsize::new(0);
        scope(|s| {
            for chunk in data.chunks(2) {
                s.spawn(|_| {
                    let part: u64 = chunk.iter().sum();
                    sum.fetch_add(part as usize, Ordering::Relaxed);
                });
            }
        })
        .unwrap();
        assert_eq!(sum.load(Ordering::Relaxed), 10);
    }

    #[test]
    fn child_panic_is_reported_as_err() {
        let r = scope(|s| {
            s.spawn(|_| panic!("child dies"));
        });
        assert!(r.is_err());
    }

    #[test]
    fn nested_spawn_from_scope_arg() {
        let hits = AtomicUsize::new(0);
        scope(|s| {
            s.spawn(|s2| {
                s2.spawn(|_| {
                    hits.fetch_add(1, Ordering::Relaxed);
                });
            });
        })
        .unwrap();
        assert_eq!(hits.load(Ordering::Relaxed), 1);
    }
}
