//! Offline shim for the `bytes` crate.
//!
//! The build environment cannot reach crates.io, so this crate provides
//! the tiny subset of the real `bytes` API that the workspace uses:
//! [`Bytes`], [`BytesMut`], and the [`BufMut`] writer trait. Both buffer
//! types are thin wrappers over `Vec<u8>` — this workspace never relies
//! on the real crate's zero-copy slicing.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use core::fmt;
use core::ops::{Deref, DerefMut};

/// An immutable byte buffer (frozen form of [`BytesMut`]).
#[derive(Clone, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Bytes {
    data: Vec<u8>,
}

impl Bytes {
    /// An empty buffer.
    pub const fn new() -> Self {
        Bytes { data: Vec::new() }
    }

    /// Copy a slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes {
            data: data.to_vec(),
        }
    }

    /// Number of bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` iff the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Extract the underlying vector.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.clone()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Bytes { data }
    }
}

impl From<&[u8]> for Bytes {
    fn from(data: &[u8]) -> Self {
        Bytes {
            data: data.to_vec(),
        }
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in &self.data {
            write!(f, "\\x{b:02x}")?;
        }
        write!(f, "\"")
    }
}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.data.as_slice() == other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        &self.data == other
    }
}

/// A growable byte buffer that can be frozen into [`Bytes`].
#[derive(Clone, Default, PartialEq, Eq, Debug)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub const fn new() -> Self {
        BytesMut { data: Vec::new() }
    }

    /// An empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` iff nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Convert into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes { data: self.data }
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

/// Append-style writer trait (the subset of `bytes::BufMut` this
/// workspace uses: big-endian integer and slice appends).
pub trait BufMut {
    /// Append a slice.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Append a `u32` big-endian.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Append a `u64` big-endian.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_and_freeze_roundtrip() {
        let mut b = BytesMut::with_capacity(16);
        b.put_u64(0x0102030405060708);
        b.put_slice(&[0xAA]);
        let frozen = b.freeze();
        assert_eq!(frozen.len(), 9);
        assert_eq!(frozen[0], 1);
        assert_eq!(frozen[7], 8);
        assert_eq!(frozen[8], 0xAA);
    }
}
