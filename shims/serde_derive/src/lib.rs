//! Offline shim for `serde_derive`.
//!
//! `#[derive(Serialize)]` / `#[derive(Deserialize)]` without syn/quote:
//! the input token stream is walked by hand (attributes skipped,
//! visibility skipped, angle-bracket depth tracked so generic types with
//! embedded commas parse correctly) and the impl is emitted as a string.
//!
//! Supported shapes — everything this workspace derives on:
//! plain structs with named fields, tuple structs (newtype and wider),
//! unit structs, and enums whose variants are unit, tuple, or
//! struct-like. The only field attribute understood is
//! `#[serde(default)]` on named fields: a missing key deserializes to
//! `Default::default()` instead of erroring, which is how snapshots
//! stay readable across schema growth. Generic types are *not*
//! supported and produce a compile error naming the type.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Parsed shape of the deriving type.
enum TypeDef {
    Struct {
        name: String,
        fields: Fields,
    },
    Enum {
        name: String,
        variants: Vec<(String, Fields)>,
    },
}

enum Fields {
    Unit,
    /// Field names with their `#[serde(default)]` flag.
    Named(Vec<(String, bool)>),
    Tuple(usize),
}

/// Derive `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match parse_type(input) {
        Ok(def) => gen_serialize(&def).parse().expect("generated impl parses"),
        Err(msg) => compile_error(&msg),
    }
}

/// Derive `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match parse_type(input) {
        Ok(def) => gen_deserialize(&def)
            .parse()
            .expect("generated impl parses"),
        Err(msg) => compile_error(&msg),
    }
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});")
        .parse()
        .expect("error token parses")
}

// ---------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------

fn parse_type(input: TokenStream) -> Result<TypeDef, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    skip_attrs_and_vis(&tokens, &mut i);

    let keyword = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected `struct` or `enum`, found {other:?}")),
    };
    i += 1;

    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected type name, found {other:?}")),
    };
    i += 1;

    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "serde shim derive does not support generic types (deriving on `{name}`)"
        ));
    }

    match keyword.as_str() {
        "struct" => {
            let fields = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Fields::Named(parse_named_fields(g.stream())?)
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Fields::Tuple(count_tuple_fields(g.stream()))
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ';' => Fields::Unit,
                other => return Err(format!("unexpected struct body: {other:?}")),
            };
            Ok(TypeDef::Struct { name, fields })
        }
        "enum" => {
            let body = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
                other => return Err(format!("expected enum body, found {other:?}")),
            };
            Ok(TypeDef::Enum {
                name,
                variants: parse_variants(body)?,
            })
        }
        other => Err(format!("cannot derive for `{other}` items")),
    }
}

/// Advance past leading `#[...]` attributes and a `pub(...)` visibility.
/// Returns `true` if one of the skipped attributes was
/// `#[serde(default)]`.
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) -> bool {
    let mut serde_default = false;
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 1; // '#'
                if matches!(tokens.get(*i), Some(TokenTree::Punct(p)) if p.as_char() == '!') {
                    *i += 1;
                }
                if let Some(tok) = tokens.get(*i) {
                    serde_default |= attr_is_serde_default(tok);
                }
                *i += 1; // the [...] group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(
                    tokens.get(*i),
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
                ) {
                    *i += 1;
                }
            }
            _ => return serde_default,
        }
    }
}

/// `true` iff the bracketed attribute group is exactly `serde(default)`.
fn attr_is_serde_default(tok: &TokenTree) -> bool {
    let TokenTree::Group(g) = tok else {
        return false;
    };
    if g.delimiter() != Delimiter::Bracket {
        return false;
    }
    let toks: Vec<TokenTree> = g.stream().into_iter().collect();
    match toks.as_slice() {
        [TokenTree::Ident(id), TokenTree::Group(args)]
            if id.to_string() == "serde" && args.delimiter() == Delimiter::Parenthesis =>
        {
            let inner: Vec<String> = args.stream().into_iter().map(|t| t.to_string()).collect();
            inner == ["default"]
        }
        _ => false,
    }
}

/// Split a token slice at top-level commas, tracking `<`/`>` depth so
/// commas inside generic arguments don't split.
fn split_top_level(stream: TokenStream) -> Vec<Vec<TokenTree>> {
    let mut chunks: Vec<Vec<TokenTree>> = Vec::new();
    let mut current: Vec<TokenTree> = Vec::new();
    let mut angle_depth: i32 = 0;
    for tok in stream {
        if let TokenTree::Punct(p) = &tok {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    chunks.push(std::mem::take(&mut current));
                    continue;
                }
                _ => {}
            }
        }
        current.push(tok);
    }
    if !current.is_empty() {
        chunks.push(current);
    }
    chunks
}

fn parse_named_fields(stream: TokenStream) -> Result<Vec<(String, bool)>, String> {
    let mut names = Vec::new();
    for chunk in split_top_level(stream) {
        let mut i = 0;
        let has_default = skip_attrs_and_vis(&chunk, &mut i);
        match chunk.get(i) {
            Some(TokenTree::Ident(id)) => names.push((id.to_string(), has_default)),
            None => continue, // trailing comma
            other => return Err(format!("expected field name, found {other:?}")),
        }
    }
    Ok(names)
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    split_top_level(stream)
        .into_iter()
        .filter(|chunk| {
            let mut i = 0;
            skip_attrs_and_vis(chunk, &mut i);
            i < chunk.len()
        })
        .count()
}

fn parse_variants(stream: TokenStream) -> Result<Vec<(String, Fields)>, String> {
    let mut variants = Vec::new();
    for chunk in split_top_level(stream) {
        let mut i = 0;
        skip_attrs_and_vis(&chunk, &mut i);
        let name = match chunk.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => continue, // trailing comma
            other => return Err(format!("expected variant name, found {other:?}")),
        };
        i += 1;
        let fields = match chunk.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Fields::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Fields::Named(parse_named_fields(g.stream())?)
            }
            // `Variant = 3` discriminants and bare variants are both unit.
            _ => Fields::Unit,
        };
        variants.push((name, fields));
    }
    Ok(variants)
}

// ---------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------

fn gen_serialize(def: &TypeDef) -> String {
    match def {
        TypeDef::Struct { name, fields } => {
            let body = match fields {
                Fields::Unit => format!("__s.serialize_unit_struct({name:?})"),
                Fields::Tuple(1) => {
                    format!("__s.serialize_newtype_struct({name:?}, &self.0)")
                }
                Fields::Tuple(n) => {
                    let mut b = String::new();
                    b.push_str("{ use ::serde::ser::SerializeTupleStruct as _; ");
                    b.push_str(&format!(
                        "let mut __st = __s.serialize_tuple_struct({name:?}, {n})?; "
                    ));
                    for idx in 0..*n {
                        b.push_str(&format!("__st.serialize_field(&self.{idx})?; "));
                    }
                    b.push_str("__st.end() }");
                    b
                }
                Fields::Named(names) => {
                    let mut b = String::new();
                    b.push_str("{ use ::serde::ser::SerializeStruct as _; ");
                    b.push_str(&format!(
                        "let mut __st = __s.serialize_struct({name:?}, {})?; ",
                        names.len()
                    ));
                    for (f, _) in names {
                        b.push_str(&format!("__st.serialize_field({f:?}, &self.{f})?; "));
                    }
                    b.push_str("__st.end() }");
                    b
                }
            };
            wrap_serialize_impl(name, &body)
        }
        TypeDef::Enum { name, variants } => {
            let mut arms = String::new();
            for (vi, (vname, fields)) in variants.iter().enumerate() {
                match fields {
                    Fields::Unit => arms.push_str(&format!(
                        "{name}::{vname} => __s.serialize_unit_variant({name:?}, {vi}u32, {vname:?}),\n"
                    )),
                    Fields::Tuple(1) => arms.push_str(&format!(
                        "{name}::{vname}(__f0) => \
                         __s.serialize_newtype_variant({name:?}, {vi}u32, {vname:?}, __f0),\n"
                    )),
                    Fields::Tuple(n) => {
                        let binders: Vec<String> = (0..*n).map(|k| format!("__f{k}")).collect();
                        let mut arm = format!("{name}::{vname}({}) => {{ ", binders.join(", "));
                        arm.push_str("use ::serde::ser::SerializeTupleVariant as _; ");
                        arm.push_str(&format!(
                            "let mut __st = \
                             __s.serialize_tuple_variant({name:?}, {vi}u32, {vname:?}, {n})?; "
                        ));
                        for b in &binders {
                            arm.push_str(&format!("__st.serialize_field({b})?; "));
                        }
                        arm.push_str("__st.end() },\n");
                        arms.push_str(&arm);
                    }
                    Fields::Named(fnames) => {
                        let binders: Vec<&str> =
                            fnames.iter().map(|(f, _)| f.as_str()).collect();
                        let mut arm =
                            format!("{name}::{vname} {{ {} }} => {{ ", binders.join(", "));
                        arm.push_str("use ::serde::ser::SerializeStructVariant as _; ");
                        arm.push_str(&format!(
                            "let mut __st = __s.serialize_struct_variant(\
                             {name:?}, {vi}u32, {vname:?}, {})?; ",
                            fnames.len()
                        ));
                        for (f, _) in fnames {
                            arm.push_str(&format!("__st.serialize_field({f:?}, {f})?; "));
                        }
                        arm.push_str("__st.end() },\n");
                        arms.push_str(&arm);
                    }
                }
            }
            wrap_serialize_impl(name, &format!("match self {{ {arms} }}"))
        }
    }
}

fn wrap_serialize_impl(name: &str, body: &str) -> String {
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn serialize<__S: ::serde::Serializer>(&self, __s: __S)\n\
         -> ::core::result::Result<__S::Ok, __S::Error> {{ {body} }}\n\
         }}"
    )
}

fn gen_deserialize(def: &TypeDef) -> String {
    let body = match def {
        TypeDef::Struct { name, fields } => match fields {
            Fields::Unit => format!(
                "match __v {{ ::serde::Value::Null => ::core::result::Result::Ok({name}), \
                 __other => ::core::result::Result::Err(::serde::de::Error::custom(\
                 format!(\"expected null for unit struct {name}, found {{}}\", __other.kind()))) }}"
            ),
            Fields::Tuple(1) => format!(
                "::core::result::Result::Ok({name}(\
                 ::serde::__private::from_value_de(__v)\
                 .map_err(::serde::de::Error::custom)?))"
            ),
            Fields::Tuple(n) => {
                let mut b = format!(
                    "let __seq = ::serde::__private::tuple_payload(\
                     ::core::option::Option::Some(__v), {n})\
                     .map_err(::serde::de::Error::custom)?; \
                     let mut __it = __seq.into_iter(); \
                     ::core::result::Result::Ok({name}("
                );
                for _ in 0..*n {
                    b.push_str(
                        "::serde::__private::next_elem(&mut __it)\
                         .map_err(::serde::de::Error::custom)?, ",
                    );
                }
                b.push_str("))");
                b
            }
            Fields::Named(names) => {
                let mut b = format!(
                    "let __m = __v.into_struct_map({name:?})\
                     .map_err(::serde::de::Error::custom)?; \
                     ::core::result::Result::Ok({name} {{ "
                );
                for (f, has_default) in names {
                    let getter = if *has_default {
                        "field_or_default"
                    } else {
                        "field"
                    };
                    b.push_str(&format!(
                        "{f}: ::serde::__private::{getter}(&__m, {f:?})\
                         .map_err(::serde::de::Error::custom)?, "
                    ));
                }
                b.push_str("})");
                b
            }
        },
        TypeDef::Enum { name, variants } => {
            let mut arms = String::new();
            for (vname, fields) in variants {
                match fields {
                    Fields::Unit => arms.push_str(&format!(
                        "{vname:?} => {{ \
                         ::serde::__private::expect_no_payload(&__payload)\
                         .map_err(::serde::de::Error::custom)?; \
                         ::core::result::Result::Ok({name}::{vname}) }},\n"
                    )),
                    Fields::Tuple(1) => arms.push_str(&format!(
                        "{vname:?} => ::core::result::Result::Ok({name}::{vname}(\
                         ::serde::__private::newtype_payload(__payload)\
                         .map_err(::serde::de::Error::custom)?)),\n"
                    )),
                    Fields::Tuple(n) => {
                        let mut arm = format!(
                            "{vname:?} => {{ \
                             let __seq = ::serde::__private::tuple_payload(__payload, {n})\
                             .map_err(::serde::de::Error::custom)?; \
                             let mut __it = __seq.into_iter(); \
                             ::core::result::Result::Ok({name}::{vname}("
                        );
                        for _ in 0..*n {
                            arm.push_str(
                                "::serde::__private::next_elem(&mut __it)\
                                 .map_err(::serde::de::Error::custom)?, ",
                            );
                        }
                        arm.push_str(")) },\n");
                        arms.push_str(&arm);
                    }
                    Fields::Named(fnames) => {
                        let mut arm = format!(
                            "{vname:?} => {{ \
                             let __m = ::serde::__private::struct_payload(__payload)\
                             .map_err(::serde::de::Error::custom)?; \
                             ::core::result::Result::Ok({name}::{vname} {{ "
                        );
                        for (f, has_default) in fnames {
                            let getter = if *has_default {
                                "field_or_default"
                            } else {
                                "field"
                            };
                            arm.push_str(&format!(
                                "{f}: ::serde::__private::{getter}(&__m, {f:?})\
                                 .map_err(::serde::de::Error::custom)?, "
                            ));
                        }
                        arm.push_str("}) },\n");
                        arms.push_str(&arm);
                    }
                }
            }
            format!(
                "let (__tag, __payload) = __v.into_variant()\
                 .map_err(::serde::de::Error::custom)?; \
                 match __tag.as_str() {{ {arms} \
                 __other => ::core::result::Result::Err(::serde::de::Error::custom(\
                 format!(\"unknown variant `{{__other}}` for enum {name}\"))) }}"
            )
        }
    };
    let name = match def {
        TypeDef::Struct { name, .. } | TypeDef::Enum { name, .. } => name,
    };
    format!(
        "impl<'de> ::serde::Deserialize<'de> for {name} {{\n\
         fn deserialize<__D: ::serde::Deserializer<'de>>(__d: __D)\n\
         -> ::core::result::Result<Self, __D::Error> {{\n\
         let __v = __d.take_value()?;\n\
         {body}\n\
         }}\n\
         }}"
    )
}
