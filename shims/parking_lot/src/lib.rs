//! Offline shim for the `parking_lot` crate.
//!
//! Wraps `std::sync` primitives behind `parking_lot`'s API shape: `lock()`
//! / `read()` / `write()` return guards directly instead of `Result`s.
//! Poisoning is transparently ignored (`parking_lot` has no poisoning):
//! if a thread panicked while holding a lock, the next locker simply
//! recovers the inner guard.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::{self, PoisonError};

/// Guard type returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;
/// Guard type returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Guard type returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

/// A mutual-exclusion lock with `parking_lot`'s panic-free API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Wrap a value.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A reader-writer lock with `parking_lot`'s panic-free API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Wrap a value.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Try to acquire a read guard without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.0.try_read() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Try to acquire a write guard without blocking.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.0.try_write() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
        assert_eq!(m.into_inner(), 6);
    }

    #[test]
    fn rwlock_many_readers() {
        let l = RwLock::new(vec![1, 2, 3]);
        let a = l.read();
        let b = l.read();
        assert_eq!(a.len() + b.len(), 6);
        drop((a, b));
        l.write().push(4);
        assert_eq!(l.read().len(), 4);
    }

    #[test]
    fn poisoned_lock_recovers() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        // parking_lot semantics: next lock succeeds.
        assert_eq!(*m.lock(), 0);
    }
}
