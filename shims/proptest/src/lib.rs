//! Offline shim for the `proptest` crate.
//!
//! Implements the subset of proptest used by this workspace's property
//! tests: the [`Strategy`](strategy::Strategy) trait with `prop_map` /
//! `prop_flat_map`, range and tuple strategies, [`Just`](strategy::Just),
//! `collection::{vec, btree_set, btree_map}`, `sample::select`,
//! `any::<T>()`, and the `proptest!` / `prop_assert*` / `prop_assume!`
//! macros.
//!
//! Differences from the real crate, chosen for an offline environment:
//! cases are generated from a deterministic per-test seed (no
//! `PROPTEST_*` env handling, no persisted failure files), and failing
//! cases are reported verbatim without shrinking.

#![forbid(unsafe_code)]

pub mod strategy {
    //! Value-generation strategies.

    use crate::test_runner::TestRng;
    use rand::Rng;

    /// A source of random values of type [`Strategy::Value`].
    ///
    /// Unlike real proptest there is no value tree: a strategy simply
    /// produces a fresh value per test case and failures are not shrunk.
    pub trait Strategy {
        /// The type of values this strategy generates.
        type Value;

        /// Generate one value.
        fn new_value(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values with `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }

        /// Feed generated values into `f` to pick a dependent strategy.
        fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S2: Strategy,
            F: Fn(Self::Value) -> S2,
        {
            FlatMap { inner: self, f }
        }
    }

    /// Always produces a clone of the wrapped value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn new_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Clone, Debug)]
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S, F, U> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;
        fn new_value(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.new_value(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    #[derive(Clone, Debug)]
    pub struct FlatMap<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S, S2, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;
        fn new_value(&self, rng: &mut TestRng) -> Self::Value {
            (self.f)(self.inner.new_value(rng)).new_value(rng)
        }
    }

    macro_rules! range_strategy {
        ($($ty:ty),*) => {$(
            impl Strategy for core::ops::Range<$ty> {
                type Value = $ty;
                fn new_value(&self, rng: &mut TestRng) -> $ty {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for core::ops::RangeInclusive<$ty> {
                type Value = $ty;
                fn new_value(&self, rng: &mut TestRng) -> $ty {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    range_strategy!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize, f32, f64);

    macro_rules! tuple_strategy {
        ($(($($name:ident),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.new_value(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, G)
    }
}

pub mod arbitrary {
    //! The `any::<T>()` entry point for type-default strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use core::marker::PhantomData;
    use rand::RngCore;

    /// Types with a canonical full-range strategy.
    pub trait Arbitrary: Sized {
        /// Generate an unconstrained value.
        fn arbitrary_value(rng: &mut TestRng) -> Self;
    }

    macro_rules! arbitrary_int {
        ($($ty:ty),*) => {$(
            impl Arbitrary for $ty {
                fn arbitrary_value(rng: &mut TestRng) -> $ty {
                    // Full-width bits, no rejection needed.
                    rng.next_u64() as $ty
                }
            }
        )*};
    }

    arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for u128 {
        fn arbitrary_value(rng: &mut TestRng) -> u128 {
            ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
        }
    }

    impl Arbitrary for i128 {
        fn arbitrary_value(rng: &mut TestRng) -> i128 {
            u128::arbitrary_value(rng) as i128
        }
    }

    impl Arbitrary for bool {
        fn arbitrary_value(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// Strategy returned by [`any`].
    #[derive(Clone, Copy, Debug)]
    pub struct Any<T>(PhantomData<fn() -> T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn new_value(&self, rng: &mut TestRng) -> T {
            T::arbitrary_value(rng)
        }
    }

    /// The canonical strategy for `T` (full value range for integers).
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    //! Strategies for collections with a size range.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::collections::{BTreeMap, BTreeSet};

    /// Inclusive bounds on a generated collection's size.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl SizeRange {
        fn pick(&self, rng: &mut TestRng) -> usize {
            rng.gen_range(self.min..=self.max)
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.end > r.start, "empty collection size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    /// Strategy for `Vec<S::Value>`.
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    /// Generate vectors whose length falls in `size`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.pick(rng);
            (0..len).map(|_| self.elem.new_value(rng)).collect()
        }
    }

    /// Strategy for `BTreeSet<S::Value>`.
    #[derive(Clone, Debug)]
    pub struct BTreeSetStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    /// Generate ordered sets whose cardinality falls in `size` (best
    /// effort: if the element strategy cannot produce enough distinct
    /// values the set is as large as repeated sampling reached).
    pub fn btree_set<S>(elem: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy {
            elem,
            size: size.into(),
        }
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let target = self.size.pick(rng);
            let mut out = BTreeSet::new();
            let mut attempts = 0usize;
            while out.len() < target && attempts < target * 20 + 50 {
                out.insert(self.elem.new_value(rng));
                attempts += 1;
            }
            out
        }
    }

    /// Strategy for `BTreeMap<K::Value, V::Value>`.
    #[derive(Clone, Debug)]
    pub struct BTreeMapStrategy<K, V> {
        key: K,
        value: V,
        size: SizeRange,
    }

    /// Generate ordered maps whose entry count falls in `size` (same
    /// best-effort distinctness as [`btree_set`]).
    pub fn btree_map<K, V>(key: K, value: V, size: impl Into<SizeRange>) -> BTreeMapStrategy<K, V>
    where
        K: Strategy,
        K::Value: Ord,
        V: Strategy,
    {
        BTreeMapStrategy {
            key,
            value,
            size: size.into(),
        }
    }

    impl<K, V> Strategy for BTreeMapStrategy<K, V>
    where
        K: Strategy,
        K::Value: Ord,
        V: Strategy,
    {
        type Value = BTreeMap<K::Value, V::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Self::Value {
            let target = self.size.pick(rng);
            let mut out = BTreeMap::new();
            let mut attempts = 0usize;
            while out.len() < target && attempts < target * 20 + 50 {
                let k = self.key.new_value(rng);
                let v = self.value.new_value(rng);
                out.insert(k, v);
                attempts += 1;
            }
            out
        }
    }
}

pub mod sample {
    //! Strategies that pick from explicit value lists.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// Strategy returned by [`select`].
    #[derive(Clone, Debug)]
    pub struct Select<T> {
        values: Vec<T>,
    }

    /// Pick uniformly from `values` (cloned up front, so promoted
    /// temporaries and consts both work).
    pub fn select<T: Clone>(values: &[T]) -> Select<T> {
        assert!(!values.is_empty(), "select() needs at least one value");
        Select {
            values: values.to_vec(),
        }
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn new_value(&self, rng: &mut TestRng) -> T {
            let i = rng.gen_range(0..self.values.len());
            self.values[i].clone()
        }
    }
}

pub mod test_runner {
    //! Deterministic case loop behind the `proptest!` macro.

    use rand::SeedableRng;

    /// RNG handed to strategies. Deterministic per test name.
    pub type TestRng = rand::rngs::StdRng;

    /// Per-block configuration (`#![proptest_config(...)]`).
    #[derive(Clone, Copy, Debug)]
    pub struct ProptestConfig {
        /// Number of successful cases required.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // Real proptest defaults to 256; 64 keeps un-configured shim
            // runs fast while still exercising plenty of inputs.
            ProptestConfig { cases: 64 }
        }
    }

    /// Why a single case did not pass.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// `prop_assume!` rejected the inputs; retry without counting.
        Reject(String),
        /// `prop_assert*` failed; abort the whole test.
        Fail(String),
    }

    /// Result type of one generated case.
    pub type TestCaseResult = Result<(), TestCaseError>;

    fn seed_for(name: &str) -> u64 {
        // FNV-1a over the test name: stable across runs and platforms.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        h
    }

    /// Drive one property: generate cases until `config.cases` pass.
    ///
    /// `f` returns the Debug rendering of the generated inputs plus the
    /// case outcome; the rendering is used verbatim in failure messages
    /// (this shim does not shrink).
    pub fn run_proptest<F>(config: ProptestConfig, name: &str, mut f: F)
    where
        F: FnMut(&mut TestRng) -> (String, TestCaseResult),
    {
        let mut rng = TestRng::seed_from_u64(seed_for(name));
        let mut passed = 0u32;
        let mut rejected = 0u64;
        while passed < config.cases {
            let (desc, outcome) = f(&mut rng);
            match outcome {
                Ok(()) => passed += 1,
                Err(TestCaseError::Reject(why)) => {
                    rejected += 1;
                    let limit = config.cases as u64 * 20 + 100;
                    if rejected > limit {
                        panic!(
                            "proptest `{name}`: {rejected} rejections \
                             (limit {limit}); last prop_assume!: {why}"
                        );
                    }
                }
                Err(TestCaseError::Fail(msg)) => {
                    panic!(
                        "proptest `{name}` failed after {passed} passing case(s): {msg}\n\
                         input (unshrunk): {desc}"
                    );
                }
            }
        }
    }
}

/// Define property tests: `proptest! { fn name(pat in strategy, ...) { body } }`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (
        ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        // Callers write `#[test]` themselves (real-proptest convention),
        // so it arrives via $meta — adding another here would register
        // the test twice with libtest.
        $(#[$meta])*
        fn $name() {
            $crate::test_runner::run_proptest($cfg, stringify!($name), |__rng| {
                let __vals = (
                    $($crate::strategy::Strategy::new_value(&($strat), __rng),)+
                );
                let __desc = format!("{:?}", __vals);
                let ($($pat,)+) = __vals;
                let __outcome: $crate::test_runner::TestCaseResult = (|| {
                    let _ = $body;
                    ::std::result::Result::Ok(())
                })();
                (__desc, __outcome)
            });
        }
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    (($cfg:expr)) => {};
}

/// Assert inside a `proptest!` body; failure aborts the test with the input.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(__l == __r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!("assertion failed: `{:?}` == `{:?}`", __l, __r),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(__l == __r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!(
                    "assertion failed: `{:?}` == `{:?}`: {}",
                    __l,
                    __r,
                    format!($($fmt)+),
                ),
            ));
        }
    }};
}

/// Assert inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if __l == __r {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(format!(
                "assertion failed: `{:?}` != `{:?}`",
                __l, __r
            )));
        }
    }};
}

/// Reject the current inputs; the case is retried with fresh ones.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}

pub mod prelude {
    //! Everything a property test file needs: `use proptest::prelude::*;`.

    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};

    /// Alias so `prop::sample::select` / `prop::collection::vec` resolve.
    pub use crate as prop;
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::SeedableRng;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::seed_from_u64(7);
        for _ in 0..200 {
            let v = (3u32..10).new_value(&mut rng);
            assert!((3..10).contains(&v));
            let w = (5usize..=5).new_value(&mut rng);
            assert_eq!(w, 5);
        }
    }

    #[test]
    fn collections_hit_size_targets() {
        let mut rng = TestRng::seed_from_u64(8);
        for _ in 0..50 {
            let v = crate::collection::vec(0u32..100, 2..5).new_value(&mut rng);
            assert!((2..5).contains(&v.len()));
            let s = crate::collection::btree_set(0u32..100, 3..=6).new_value(&mut rng);
            assert!((3..=6).contains(&s.len()));
            let m = crate::collection::btree_map(0u32..100, 0u32..4, 1..=4).new_value(&mut rng);
            assert!((1..=4).contains(&m.len()));
        }
    }

    #[test]
    fn select_and_combinators() {
        let mut rng = TestRng::seed_from_u64(9);
        let s = crate::sample::select(&[10u32, 20, 30]).prop_map(|x| x + 1);
        for _ in 0..50 {
            let v = s.new_value(&mut rng);
            assert!([11, 21, 31].contains(&v));
        }
        let nested = (1u32..4).prop_flat_map(|n| crate::collection::vec(0u32..n, 1..3));
        for _ in 0..50 {
            let v = nested.new_value(&mut rng);
            assert!(!v.is_empty());
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_end_to_end(
            a in 0u64..1000,
            (lo, hi) in (0u32..50, 50u32..100),
            xs in prop::collection::vec(any::<u8>(), 0..4),
        ) {
            prop_assume!(a != 999);
            prop_assert!(lo < hi, "{lo} !< {hi}");
            prop_assert_eq!(a + 1, 1 + a);
            prop_assert!(xs.len() < 4);
        }
    }

    #[test]
    #[should_panic(expected = "proptest `failing_property` failed")]
    fn failures_report_input() {
        crate::test_runner::run_proptest(
            ProptestConfig::with_cases(4),
            "failing_property",
            |rng| {
                let v = (0u32..10).new_value(rng);
                let desc = format!("{v:?}");
                (
                    desc,
                    Err(crate::test_runner::TestCaseError::Fail("boom".into())),
                )
            },
        );
    }
}
