//! Video-on-demand on a WDM multicast crossbar — the workload the paper's
//! introduction motivates.
//!
//! A few head-end servers stream channels to a large audience. Each
//! server wavelength is one channel; the switch's light splitters
//! multicast it to every subscriber without O/E/O conversion. We build
//! the fabric, offer the VoD load under each multicast model, route it,
//! and compare delivered streams and hardware cost.
//!
//! Run with: `cargo run --example video_on_demand`

use wdm_multicast::core::{capacity, MulticastModel, NetworkConfig};
use wdm_multicast::fabric::WdmCrossbar;
use wdm_multicast::workload::scenario::Scenario;

fn main() {
    let net = NetworkConfig::new(16, 4); // 16 ports, 4 channels per fiber
    let scenario = Scenario::VideoOnDemand { servers: 3 };
    println!("{} on {net}\n", scenario.label());

    println!(
        "{:<6} {:>9} {:>10} {:>12} {:>12} {:>11}",
        "model", "streams", "viewers", "max fanout", "crosspoints", "converters"
    );
    for model in MulticastModel::ALL {
        let offered = scenario.generate(net, model, 2024);
        let viewers: usize = offered.connections().map(|c| c.fanout()).sum();
        let max_fanout = offered.connections().map(|c| c.fanout()).max().unwrap_or(0);

        // Route the entire offered load through the crossbar at once.
        let mut xbar = WdmCrossbar::build(net, model);
        let outcome = xbar
            .route_verified(&offered)
            .expect("crossbar is nonblocking");
        assert!(outcome.delivered_exactly(&offered));

        println!(
            "{:<6} {:>9} {:>10} {:>12} {:>12} {:>11}",
            model.to_string(),
            offered.len(),
            viewers,
            max_fanout,
            capacity::crossbar_crosspoints(net, model),
            capacity::crossbar_converters(net, model),
        );
    }

    println!(
        "\nEvery offered stream was delivered optically (no O/E/O) — the MSW switch\n\
         does it with {}× fewer crosspoints and zero converters, at the price of\n\
         pinning each channel to one wavelength end to end.",
        net.wavelengths
    );
}
