//! Concurrent switch-controller demo: run the sharded admission engine
//! against a three-stage network sized at the Theorem 1 bound, with a
//! periodic metrics observer emitting snapshots while traffic is live.
//!
//! This is the library-level equivalent of `wdmcast serve` — it shows
//! the full runtime lifecycle: start, feed a timed trace, watch the
//! snapshot stream, then drain and inspect the final report.
//!
//! Run with: `cargo run --example runtime_server`

use std::time::Duration;

use wdm_multicast::core::MulticastModel;
use wdm_multicast::multistage::{bounds, Construction, ThreeStageNetwork, ThreeStageParams};
use wdm_multicast::runtime::EngineBuilder;
use wdm_multicast::workload::{DynamicTraffic, TimedEvent, TraceEvent};

fn main() {
    let (n, r, k) = (4u32, 4u32, 2u32);
    let bound = bounds::theorem1_min_m(n, r);
    let params = ThreeStageParams::new(n, bound.m, r, k);
    println!(
        "serving a {}×{} three-stage network: n={n}, r={r}, k={k}, m={} (Theorem 1 bound)\n",
        n * r,
        n * r,
        bound.m
    );

    // A churn trace with every connection eventually departing, so the
    // run ends with an empty network.
    let horizon = 25.0;
    let mut events =
        DynamicTraffic::new(params.network(), MulticastModel::Msw, 5.0, 1.0, 3, 0xCAFE)
            .generate(horizon);
    let mut live = std::collections::BTreeSet::new();
    for e in &events {
        match &e.event {
            TraceEvent::Connect(c) => live.insert(c.source()),
            TraceEvent::Disconnect(s) => live.remove(s),
        };
    }
    events.extend(live.into_iter().map(|src| TimedEvent {
        time: horizon + 1.0,
        event: TraceEvent::Disconnect(src),
    }));
    println!("offered trace: {} timed events\n", events.len());

    // Four shard workers plus a 5 ms snapshot observer.
    let engine = EngineBuilder::new()
        .shards(4)
        .observe_every(Duration::from_millis(5))
        .start(ThreeStageNetwork::new(
            params,
            Construction::MswDominant,
            MulticastModel::Msw,
        ));

    // Feed the trace while the engine is live; metrics are readable
    // concurrently from this thread.
    for chunk in events.chunks(64) {
        for ev in chunk {
            let _ = engine.submit(ev.clone());
        }
        let snap = engine.snapshot_now();
        println!(
            "  live: offered {:>4}  admitted {:>4}  active {:>3}  blocked {}",
            snap.offered, snap.admitted, snap.active, snap.blocked
        );
    }

    let report = engine.drain();
    let s = &report.summary;
    println!(
        "\nfinal report ({} observer snapshots collected):",
        report.snapshots.len()
    );
    println!("  offered        {}", s.offered);
    println!("  admitted       {}", s.admitted);
    println!(
        "  blocked        {}  (m is at the bound: must be 0)",
        s.blocked
    );
    println!("  retried        {}", s.retried);
    println!("  expired        {}", s.expired);
    println!("  departed       {}", s.departed);
    println!("  P(block)       {:.4}", s.blocking_probability);
    println!(
        "  admit p50/p99  {} ns / {} ns",
        s.p50_admit_ns, s.p99_admit_ns
    );
    println!("  middle loads   {:?}", s.middle_loads);

    assert!(report.is_clean(), "runtime errors: {:?}", report.errors);
    assert_eq!(
        s.blocked, 0,
        "Theorem 1 violated under concurrent admission!"
    );
    assert_eq!(s.active, 0, "trace is closed, network must drain empty");
    println!("\nclean drain: zero blocking at the Theorem 1 bound, empty network at exit.");
}
