//! Serve a three-stage network over TCP and drive it from client
//! threads — the wire-protocol equivalent of `examples/runtime_server`.
//!
//! A `NetServer` fronts the sharded admission engine on a loopback
//! socket; a closed churn trace is partitioned by source port into one
//! lane per client, each streamed fully pipelined through its own
//! `NetClient`. At the Theorem 1 bound the network stays nonblocking
//! across the socket boundary: the drained report shows zero blocks,
//! and the server's admission count equals the clients' acks.
//!
//! Run with: `cargo run --example net_loopback`

use std::thread;

use wdm_multicast::core::MulticastModel;
use wdm_multicast::multistage::{bounds, Construction, ThreeStageNetwork, ThreeStageParams};
use wdm_multicast::net::{NetClient, NetServer, NetServerConfig, Request, Response};
use wdm_multicast::runtime::EngineBuilder;
use wdm_multicast::workload::{close_trace, partition_by_source, DynamicTraffic};

fn main() {
    let (n, r, k) = (4u32, 4u32, 2u32);
    let bound = bounds::theorem1_min_m(n, r);
    let params = ThreeStageParams::new(n, bound.m, r, k);
    let backend = ThreeStageNetwork::new(params, Construction::MswDominant, MulticastModel::Msw);
    let engine = EngineBuilder::new().start(backend);
    let server = NetServer::serve(engine, "127.0.0.1:0", NetServerConfig::default()).expect("bind");
    let addr = server.local_addr();
    println!(
        "serving {params} at the Theorem 1 bound (m={}) on {addr}\n",
        bound.m
    );

    // A closed churn trace, sharded by source port into one lane per
    // client so each connection's connect precedes its disconnect.
    let horizon = 20.0;
    let mut events = DynamicTraffic::new(params.network(), MulticastModel::Msw, 5.0, 1.0, 3, 7)
        .generate(horizon);
    close_trace(&mut events, horizon + 1.0);
    let clients = 4;
    let lanes = partition_by_source(events, clients);

    let handles: Vec<_> = lanes
        .into_iter()
        .enumerate()
        .map(|(i, lane)| {
            thread::spawn(move || {
                let mut client = NetClient::connect(addr).expect("connect");
                let reqs: Vec<Request> = lane.iter().map(|ev| Request::from(&ev.event)).collect();
                let resps = client.pipeline(&reqs).expect("replay");
                let acks = reqs
                    .iter()
                    .zip(&resps)
                    .filter(|(q, s)| matches!(q, Request::Connect(_)) && s.is_ok())
                    .count();
                println!(
                    "client {i}: {} requests, {acks} connects admitted",
                    reqs.len()
                );
                acks as u64
            })
        })
        .collect();
    let client_acks: u64 = handles.into_iter().map(|h| h.join().expect("client")).sum();

    // Graceful drain over the wire, then collect the engine's report.
    let mut control = NetClient::connect(addr).expect("connect");
    match control.drain().expect("drain") {
        Response::DrainReport { clean, summary } => {
            println!(
                "\ndrain: clean={clean}, offered {} admitted {} blocked {}",
                summary.offered, summary.admitted, summary.blocked
            );
        }
        other => panic!("expected DrainReport, got {other:?}"),
    }
    let report = server.wait();
    assert!(report.is_clean());
    assert_eq!(report.summary.blocked, 0, "nonblocking at the bound");
    assert_eq!(report.summary.admitted, client_acks);
    println!(
        "server admissions == client acks == {client_acks}; zero blocks — Theorem 1 holds over TCP"
    );
}
