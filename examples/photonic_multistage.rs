//! Photonic end-to-end: build the Fig. 8 three-stage network as one large
//! netlist of real modules, drive it from the logical router's decisions,
//! and trace the light.
//!
//! This is the whole paper in one run: the Theorem 1 bound sizes the
//! middle stage, the §3.4 formulas predict the hardware, the router picks
//! middle switches and wavelengths, and the photonic simulator confirms
//! that every destination endpoint receives exactly its signal.
//!
//! Run with: `cargo run --example photonic_multistage`

use wdm_multicast::core::{Endpoint, MulticastConnection, MulticastModel};
use wdm_multicast::fabric::PowerParams;
use wdm_multicast::multistage::{
    bounds, cost, Construction, PhotonicThreeStage, ThreeStageNetwork, ThreeStageParams,
};

fn main() {
    let (n, r, k) = (3u32, 3u32, 2u32);
    let bound = bounds::theorem1_min_m(n, r);
    let p = ThreeStageParams::new(n, bound.m, r, k);
    println!("{p}  (Theorem 1: m ≥ {}, x = {})\n", bound.m, bound.x);

    // The hardware, predicted and then measured.
    let predicted = cost::three_stage_cost(p, Construction::MswDominant, MulticastModel::Msw);
    let mut photonic = PhotonicThreeStage::build(p, Construction::MswDominant, MulticastModel::Msw);
    let census = photonic.census();
    println!(
        "predicted crosspoints (kmr(2n+r)): {}",
        predicted.crosspoints
    );
    println!("measured SOA gates in the netlist: {}", census.gates);
    assert_eq!(census.gates, predicted.crosspoints);
    let budget = photonic.power_budget(&PowerParams::default());
    println!(
        "netlist: {} components, worst path {:.1} dB over {} hops\n",
        photonic.netlist().node_count(),
        budget.worst_path_loss_db,
        budget.worst_path_hops
    );

    // Route a handful of multicasts logically…
    let mut logical = ThreeStageNetwork::new(p, Construction::MswDominant, MulticastModel::Msw);
    let requests = [
        ((0u32, 0u32), vec![(2u32, 0u32), (5, 0), (8, 0)]),
        ((1, 1), vec![(0, 1), (4, 1)]),
        ((4, 0), vec![(1, 0), (7, 0)]),
        ((8, 1), vec![(2, 1), (3, 1), (6, 1), (8, 1)]),
    ];
    for (src, dests) in requests {
        let conn = MulticastConnection::new(
            Endpoint::new(src.0, src.1),
            dests.iter().map(|&(p, w)| Endpoint::new(p, w)),
        )
        .unwrap();
        let routed = logical.connect(&conn).expect("nonblocking at the bound");
        let middles: Vec<u32> = routed.branches.iter().map(|b| b.middle).collect();
        println!("{conn}\n    → via middle switches {middles:?}");
    }

    // …then realize them photonically and verify the light.
    let outcome = photonic.realize(&logical).expect("light follows the route");
    assert!(outcome.delivered_exactly(logical.assignment()));
    println!(
        "\nall {} connections realized in hardware: every destination endpoint lit by\nexactly its source, zero combiner conflicts.",
        logical.active_connections()
    );
}
