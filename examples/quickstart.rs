//! Quickstart: the 60-second tour of the library.
//!
//! Builds an `N×N` `k`-wavelength WDM multicast switch under each model,
//! computes its exact multicast capacity (Lemmas 1–3), constructs the
//! photonic crossbar (Figs. 4–7), routes a multicast assignment through
//! it, and verifies delivery gate by gate.
//!
//! Run with: `cargo run --example quickstart`

use wdm_multicast::core::{
    capacity, Endpoint, MulticastAssignment, MulticastConnection, MulticastModel, NetworkConfig,
};
use wdm_multicast::fabric::{PowerParams, WdmCrossbar};

fn main() {
    // A 4×4 switch with 2 wavelengths per fiber.
    let net = NetworkConfig::new(4, 2);
    println!("network: {net}\n");

    // 1. Exact multicast capacities (the paper's Table 1 rows).
    println!("multicast capacity (full / any assignments):");
    for model in MulticastModel::ALL {
        println!(
            "  {model:<5} {:>12} / {:>12}",
            capacity::full_assignments(net, model).to_string(),
            capacity::any_assignments(net, model).to_string(),
        );
    }
    println!(
        "  (electronic {0}×{0} crossbar: {1} / {2})\n",
        net.endpoints_per_side(),
        capacity::electronic_full(net),
        capacity::electronic_any(net)
    );

    // 2. Build the MAW crossbar and inspect its hardware.
    let mut xbar = WdmCrossbar::build(net, MulticastModel::Maw);
    let census = xbar.census();
    println!("MAW crossbar hardware: {census}");
    let power = xbar.power_budget(&PowerParams::default());
    println!(
        "worst-case optical path: {:.1} dB over {} components\n",
        power.worst_path_loss_db, power.worst_path_hops
    );

    // 3. Route a multicast assignment: two connections that share ports
    //    but not wavelengths — the WDM trick an electronic switch can't do.
    let mut asg = MulticastAssignment::new(net, MulticastModel::Maw);
    asg.add(
        MulticastConnection::new(
            Endpoint::new(0, 0), // port 0, λ1
            [
                Endpoint::new(1, 1),
                Endpoint::new(2, 0),
                Endpoint::new(3, 0),
            ],
        )
        .unwrap(),
    )
    .unwrap();
    asg.add(
        MulticastConnection::new(
            Endpoint::new(0, 1), // same port, λ2 — concurrent second multicast
            [Endpoint::new(1, 0), Endpoint::new(2, 1)],
        )
        .unwrap(),
    )
    .unwrap();
    println!("{asg}");

    let outcome = xbar
        .route_verified(&asg)
        .expect("crossbars are nonblocking");
    println!("routed: every destination received exactly its signal.");
    for conn in asg.connections() {
        for &d in conn.destinations() {
            let got = outcome.received_at(d);
            println!("  {d} ← origin {}", got[0].origin);
        }
    }
}
