//! Design-space exploration: given a target port count and wavelength
//! count, compare every design the paper analyzes — three multicast
//! models × (crossbar | three-stage MSW-dominant | three-stage
//! MAW-dominant) — on capacity, crosspoints, converters, and the
//! middle-stage requirement, then point at the paper's recommendation.
//!
//! Run with: `cargo run --example design_explorer -- [ports] [wavelengths]`

use wdm_multicast::core::{capacity, MulticastModel, NetworkConfig};
use wdm_multicast::multistage::{bounds, cost, Construction, ThreeStageParams};

fn main() {
    let mut args = std::env::args().skip(1);
    let ports: u32 = args.next().and_then(|s| s.parse().ok()).unwrap_or(256);
    let k: u32 = args.next().and_then(|s| s.parse().ok()).unwrap_or(4);
    let net = NetworkConfig::new(ports, k);
    let side = (ports as f64).sqrt().round() as u32;
    assert_eq!(
        side * side,
        ports,
        "this explorer wants a perfect-square port count"
    );

    println!("design space for {net}\n");
    println!(
        "{:<22} {:>14} {:>12} {:>9} {:>18}",
        "design", "crosspoints", "converters", "m", "capacity (log10)"
    );

    for model in MulticastModel::ALL {
        let cap = capacity::full_assignments(net, model).log10();

        // Crossbar.
        let cb = cost::crossbar_cost(ports as u64, k as u64, model);
        println!(
            "{:<22} {:>14} {:>12} {:>9} {:>18.1}",
            format!("{model}/crossbar"),
            cb.crosspoints,
            cb.converters,
            "-",
            cap
        );

        // Three-stage, both constructions (same capacity as the crossbar).
        for construction in [Construction::MswDominant, Construction::MawDominant] {
            let b = match construction {
                Construction::MswDominant => bounds::theorem1_min_m(side, side),
                Construction::MawDominant => bounds::theorem2_min_m(side, side, k),
            };
            let p = ThreeStageParams::new(side, b.m, side, k);
            let ms = cost::three_stage_cost(p, construction, model);
            println!(
                "{:<22} {:>14} {:>12} {:>9} {:>18.1}",
                format!("{model}/{construction}"),
                ms.crosspoints,
                ms.converters,
                b.m,
                cap
            );
        }
        println!();
    }

    // Five-stage recursion when the size allows it (N = side⁴).
    let quarter = (ports as f64).powf(0.25).round() as u32;
    if quarter.pow(4) == ports {
        use wdm_multicast::multistage::FiveStageNetwork;
        let five =
            FiveStageNetwork::square(ports, k, Construction::MswDominant, MulticastModel::Msw);
        println!(
            "{:<22} {:>14} {:>12} {:>9}",
            "MSW/5-stage",
            five.crosspoints(MulticastModel::Msw),
            0,
            format!("{}·{}", five.outer_params().m, five.inner_params().m),
        );
        println!();
    }

    // The paper's bottom line (§4): MSW-dominant multistage, model chosen
    // by the capacity/cost trade-off the application needs.
    let (p, rec) = cost::recommended_design(ports, k, MulticastModel::Msw);
    println!(
        "paper's recommendation (§3.4): MSW-dominant {p} — {} crosspoints, {} converters.\n\
         MSDW is dominated (MAW costs the same and has strictly larger capacity).",
        rec.crosspoints, rec.converters
    );
}
