//! Fault injection and observability: break gates and converters in a
//! crossbar, watch the gate-level verification catch each fault, and
//! inspect crosstalk exposure and per-destination optical budgets.
//!
//! Run with: `cargo run --example fault_injection`

use wdm_multicast::core::{Endpoint, MulticastModel, NetworkConfig};
use wdm_multicast::fabric::{trace_signal, FabricError, PowerParams, WdmCrossbar};
use wdm_multicast::workload::AssignmentGen;

fn main() {
    let net = NetworkConfig::new(6, 2);
    let model = MulticastModel::Maw;
    let mut xbar = WdmCrossbar::build(net, model);
    let asg = AssignmentGen::new(net, model, 7).full_assignment();
    println!("fabric: {} crossbar on {net} — {}", model, xbar.census());
    println!("offered: full assignment with {} connections\n", asg.len());

    // Healthy run: exact delivery, with per-destination optical budgets.
    let outcome = xbar
        .route_verified(&asg)
        .expect("healthy fabric is nonblocking");
    let params = PowerParams::default();
    let mut worst: Option<(Endpoint, f64)> = None;
    for conn in asg.connections() {
        for &d in conn.destinations() {
            let path = trace_signal(xbar.netlist(), &outcome, d, &params).unwrap();
            if worst.is_none_or(|(_, l)| path.loss_db > l) {
                worst = Some((d, path.loss_db));
            }
        }
    }
    let (worst_ep, worst_loss) = worst.unwrap();
    println!("healthy: every endpoint lit; worst per-destination budget {worst_loss:.1} dB at {worst_ep}");
    println!(
        "crosstalk exposure: {} leakage paths across {} output ports\n",
        outcome.total_crosstalk_exposure(),
        net.ports
    );

    // Fault 1: a dead SOA gate on a used crosspoint.
    let victim = asg.connections().next().unwrap();
    let (src, dst) = (victim.source(), victim.destinations()[0]);
    xbar.break_gate(src, dst);
    match xbar.route_verified(&asg) {
        Err(FabricError::DeliveryFailure { endpoint }) => {
            println!("broken gate {src}→{dst}: verification flags missing light at {endpoint}");
        }
        other => panic!("fault not detected: {other:?}"),
    }

    // Fault 2: a stuck-transparent converter.
    let mut xbar = WdmCrossbar::build(net, model);
    // Find a destination whose wavelength differs from its source — its
    // output converter is load-bearing.
    let cross = asg
        .connections()
        .flat_map(|c| c.destinations().iter().map(move |&d| (c.source(), d)))
        .find(|(s, d)| s.wavelength != d.wavelength)
        .expect("a full MAW assignment converts somewhere");
    xbar.break_converter(cross.1);
    match xbar.route_verified(&asg) {
        Err(FabricError::DeliveryFailure { endpoint }) => {
            println!(
                "broken converter at {}: wrong-wavelength light detected at {endpoint}",
                cross.1
            );
        }
        Err(FabricError::Propagation(errors)) => {
            // The unconverted signal can collide with a legitimate one on
            // its original wavelength — also caught, as a physical
            // conflict.
            println!(
                "broken converter at {}: {} physical conflicts detected ({})",
                cross.1,
                errors.len(),
                errors[0]
            );
        }
        other => panic!("fault not detected: {other:?}"),
    }

    println!("\nboth faults caught by gate-level verification — no silent data loss.");
}
