//! Dynamic traffic on a three-stage network: replay a churn trace of
//! connects/disconnects against networks sized at, above, and below the
//! Theorem 1 bound, and watch where blocking starts.
//!
//! Run with: `cargo run --example dynamic_traffic`

use wdm_multicast::core::MulticastModel;
use wdm_multicast::multistage::{
    bounds, Construction, RouteError, ThreeStageNetwork, ThreeStageParams,
};
use wdm_multicast::workload::{RequestTrace, TraceEvent};

fn main() {
    let (n, r, k) = (4u32, 4u32, 2u32);
    let bound = bounds::theorem1_min_m(n, r);
    println!(
        "three-stage n={n}, r={r}, k={k} (N={}) — Theorem 1 bound: m ≥ {} (x = {})\n",
        n * r,
        bound.m,
        bound.x
    );

    // One shared trace so every m sees identical offered load.
    let params_for_frame = ThreeStageParams::new(n, bound.m, r, k);
    let trace = RequestTrace::churn(params_for_frame.network(), MulticastModel::Msw, 2000, 35, 7);
    println!(
        "offered load: {} events ({} connects, peak {} concurrent)\n",
        trace.len(),
        trace.connect_count(),
        trace.peak_load()
    );

    println!(
        "{:>4} {:>10} {:>9} {:>9}  note",
        "m", "routed", "blocked", "rate"
    );
    for m in [2, 4, 8, bound.m - 1, bound.m, bound.m + 4] {
        let p = ThreeStageParams::new(n, m, r, k);
        let mut net = ThreeStageNetwork::new(p, Construction::MswDominant, MulticastModel::Msw);
        let (mut routed, mut blocked) = (0usize, 0usize);
        trace
            .replay(|event| -> Result<(), String> {
                match event {
                    TraceEvent::Connect(conn) => match net.connect(conn) {
                        Ok(_) => routed += 1,
                        Err(RouteError::Blocked { .. }) => blocked += 1,
                        Err(e) => return Err(e.to_string()),
                    },
                    TraceEvent::Disconnect(src) => {
                        // A blocked connect leaves nothing to disconnect.
                        let _ = net.disconnect(*src);
                    }
                }
                Ok(())
            })
            .expect("trace replay");
        let note = if m >= bound.m {
            "at/above bound — Theorem 1 promises zero blocking"
        } else if blocked == 0 {
            "below bound but lucky (bound is worst-case)"
        } else {
            "below bound — blocking observed"
        };
        println!(
            "{m:>4} {routed:>10} {blocked:>9} {:>8.1}%  {note}",
            100.0 * blocked as f64 / (routed + blocked).max(1) as f64
        );
        if m >= bound.m {
            assert_eq!(blocked, 0, "Theorem 1 violated!");
        }
    }

    println!("\nblocking vanishes at the Theorem 1 bound and never reappears above it.");
}
